"""The paper's running example: exploring an environmental database (Figs. 3-5).

Reproduces the full scenario of the paper's sections 3-4:

1. the Fig. 3 query -- three OR-connected weather predicates plus the
   ``with-time-diff(120)`` approximate join between Weather and Air-Pollution,
2. the Fig. 4 visualization -- overall result window plus one window per
   top-level query part, with the counters and sliders,
3. the Fig. 5 drill-down into the OR part, including the colour-range
   read-back ("which humidity values are the red region?"),
4. an interactive refinement loop (slider moves, weighting factors), and
5. the time-lagged temperature/ozone correlation that motivates the query.

Run with::

    python examples/environmental_exploration.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import OrNode, QueryBuilder, VisualFeedbackQuery, condition
from repro.analysis import best_lag, restrictiveness_ranking
from repro.datasets import environmental_database
from repro.interact import SetQueryRange, SetThreshold, SetWeight, VisDBSession
from repro.vis import MultiWindowLayout, ascii_render, write_png
from repro.vis.sliders import sliders_for_feedback

OUTPUT_DIR = Path(__file__).resolve().parent


def fig3_query(database):
    """The query of Fig. 3: OR of three weather predicates + time-lagged join."""
    or_part = OrNode([
        condition("Weather.Temperature", ">", 15.0),
        condition("Weather.Solar-Radiation", ">", 600.0),
        condition("Weather.Humidity", "<", 60.0),
    ], label="OR part")
    return (
        QueryBuilder("fig3", database)
        .use_tables("Weather", "Air-Pollution")
        .add_result("Weather.Temperature")
        .add_result("Weather.Solar-Radiation")
        .add_result("Weather.Humidity")
        .add_result("Air-Pollution.Ozone")
        .where(or_part)
        .use_connection("Air-Pollution with-time-diff Weather", parameter=120)
        .build()
    )


def main() -> None:
    database = environmental_database(hours=1000, stations=3, seed=7)
    weather = database.table("Weather")
    pollution = database.table("Air-Pollution")
    print(f"weather items: {len(weather)}, air-pollution items: {len(pollution)}")

    # -- the motivating discovery: a time-lagged temperature/ozone correlation --
    lag, correlation = best_lag(
        weather.column("Temperature")[: 24 * 30],
        pollution.column("Ozone")[: 24 * 30],
        lags=range(0, 7),
    )
    print(f"best temperature->ozone lag: {lag} hours (r = {correlation:.2f})")

    # -- Fig. 3/4: the multi-table query with an approximate join ---------------
    query = fig3_query(database)
    print(f"\nquery: {query.describe()}")
    feedback = VisualFeedbackQuery(database, query, max_join_pairs=60_000,
                                   percentage=0.4).execute()
    print("counters:", feedback.statistics.as_dict())
    print("restrictiveness ranking (darkest window first):")
    for label, value in restrictiveness_ranking(feedback):
        print(f"  {value:.2f}  {label}")

    layout = MultiWindowLayout(window_width=96, window_height=96)
    write_png(layout.compose(layout.windows(feedback)), OUTPUT_DIR / "fig4_layout.png")
    print(f"wrote {OUTPUT_DIR / 'fig4_layout.png'}")

    # -- Fig. 5: drill down into the OR part (single-table session) --------------
    or_query = (
        QueryBuilder("fig5", database)
        .use_tables("Weather")
        .where(OrNode([
            condition("Temperature", ">", 15.0),
            condition("Solar-Radiation", ">", 600.0),
            condition("Humidity", "<", 60.0),
        ]))
        .build()
    )
    session = VisDBSession(database, or_query,
                           layout=MultiWindowLayout(window_width=96, window_height=96))
    subwindows = session.drill_down(())
    write_png(session.layout.compose(subwindows), OUTPUT_DIR / "fig5_or_part.png")
    print(f"wrote {OUTPUT_DIR / 'fig5_or_part.png'}")
    print("\nOR-part overall window (ASCII preview):")
    print(ascii_render(subwindows[()], max_width=60))

    # The Fig. 5 observation: which humidity values make up the "red" (distant)
    # region of the humidity window although the overall answer is good?
    overall, sliders = sliders_for_feedback(session.feedback)
    humidity_slider = next(s for s in sliders if s.attribute == "Humidity")
    red_range = humidity_slider.first_last_of_color(150.0, 255.0)
    if red_range is not None:
        print(f"red region of the Humidity window corresponds to "
              f"{red_range[0]:.1f}% .. {red_range[1]:.1f}% humidity")

    # -- interactive refinement ---------------------------------------------------
    print("\ninteractive refinement:")
    print("  initial results:", session.statistics()["# of results"])
    session.apply(SetThreshold((0,), 25.0))
    print("  after Temperature > 25:", session.statistics()["# of results"])
    session.apply(SetQueryRange((2,), 40.0, 60.0))
    print("  after Humidity in [40, 60]:", session.statistics()["# of results"])
    session.apply(SetWeight((1,), 0.3))
    print("  after down-weighting Solar-Radiation: "
          f"{session.statistics()['# of results']} "
          f"(recalculations: {session.recalculations})")

    # -- hot spots: the planted exceptional measurements surface at the top -------
    planted = database.metadata["weather_hotspots"]
    hot_query = (
        QueryBuilder("hot", database).use_tables("Weather")
        .where(condition("Temperature", ">", 45.0)).build()
    )
    hot_feedback = VisualFeedbackQuery(database, hot_query, percentage=0.01).execute()
    top = hot_feedback.display_order[:20]
    found = np.intersect1d(top, planted)
    print(f"\nplanted exceptional measurements: {len(planted)}, "
          f"found among the 20 most relevant answers: {len(found)}")


if __name__ == "__main__":
    main()
