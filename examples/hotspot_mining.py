"""Finding hot spots (single exceptional data items) -- VisDB vs. the baselines.

The paper argues that traditional exact queries flip between NULL results
and floods, and that cluster analysis does not help to find single
exceptional data items.  This example plants a handful of exceptional
measurements into a large table and compares three routes to finding them:

* a sweep of exact boolean queries (showing the NULL/flood problem),
* k-means cluster analysis with outlier scoring,
* a visual feedback query whose most relevant approximate answers are
  exactly the planted exceptions.

Run with::

    python examples/hotspot_mining.py
"""

from __future__ import annotations

import numpy as np

from repro import VisualFeedbackQuery, condition
from repro.analysis import hotspot_recall
from repro.baselines import clustering_hotspot_recall, result_size_profile
from repro.datasets import planted_outliers


def main() -> None:
    scenario = planted_outliers(n_rows=50_000, n_outliers=8, n_columns=4, seed=23,
                                magnitude=7.0)
    table = scenario.table
    columns = table.column_names
    print(f"data items: {len(table)}, planted exceptional items: {len(scenario.outlier_rows)}")

    # 1. Exact boolean queries: the user has to guess the threshold.
    print("\nexact query sweep on A0 (the NULL / flood problem):")
    profile = result_size_profile(
        table, lambda threshold: condition("A0", ">", threshold),
        parameters=[1.0, 3.0, 5.0, 7.0, 9.0],
    )
    for row in profile:
        print(f"  A0 > {row['parameter']:>4}: {row['results']:>6} results ({row['classification']})")

    # 2. Cluster analysis: how many exceptional items end up in the top outlier scores?
    cluster_recall = clustering_hotspot_recall(table, list(columns), scenario.outlier_rows,
                                               top_fraction=0.0005)
    print(f"\ncluster-analysis recall (top 0.05% by distance to centroid): {cluster_recall:.2f}")

    # 3. Visual feedback query: ask for the extreme region (either tail) of each
    #    attribute and read the hot spots straight off the most relevant pixels.
    print("\nvisual feedback queries (per attribute, both tails):")
    per_column_top: list[np.ndarray] = []
    for column in columns:
        query_text = f"{column} > 6.5 OR {column} < -6.5"
        feedback = VisualFeedbackQuery(table, query_text, percentage=0.001).execute()
        top = feedback.display_order[:20]
        per_column_top.append(top)
        recall = hotspot_recall(top, scenario.outlier_rows)
        print(f"  {query_text:<28} {feedback.statistics.num_results:>3} exact results, "
              f"recall among top-20 relevant items: {recall:.2f}")
    combined_recall = hotspot_recall(np.concatenate(per_column_top), scenario.outlier_rows)
    print(f"\nrecall when the user inspects all four attribute windows: {combined_recall:.2f}")


if __name__ == "__main__":
    main()
