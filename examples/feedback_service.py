"""Feedback service demo: several users dragging sliders against one server.

Starts a :class:`~repro.service.FeedbackService` over a synthetic
environmental database, exposes it through the JSON-lines protocol on a
local TCP port, and simulates a handful of concurrent users, each opening
their own session and dragging a range slider in a rapid burst (one event
per "frame", far faster than the pipeline can re-execute).

The point of the demo is the coalescing arithmetic it prints at the end:
hundreds of events per user resolve in a handful of pipeline runs, because
bursts collapse to the newest slider position while the previous frame is
still executing -- the paper's "direct feedback" semantics made explicit
at the server boundary.

Run with::

    python examples/feedback_service.py
"""

from __future__ import annotations

import asyncio
import json

from repro import FeedbackService, PipelineConfig, ServiceConfig
from repro.datasets import environmental_database
from repro.service import serve

USERS = 4
DRAG_EVENTS = 150


def query_text(user: int) -> str:
    """Each user explores their own variant of the Fig. 3 query (wire form)."""
    return (
        "SELECT * FROM Weather "
        f"WHERE Temperature > {12.0 + 2.0 * user} "
        "AND Humidity BETWEEN 30 AND 80"
    )


async def request(reader, writer, payload: dict) -> dict:
    """One JSON-lines round trip."""
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    response = json.loads(await reader.readline())
    if not response.get("ok"):
        raise RuntimeError(f"server error: {response.get('error')}")
    return response


async def simulate_user(port: int, user: int) -> dict:
    """Open a session, drag the humidity slider, fetch the settled frame."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        opened = await request(reader, writer, {
            "op": "open", "query": query_text(user),
            "config": {"percentage": 0.35},
        })
        session = opened["session"]
        # The drag: the lower humidity bound sweeps upward one step per
        # simulated frame.  No waiting for feedback between steps -- this is
        # the firehose the coalescing queue exists for.
        for step in range(DRAG_EVENTS):
            await request(reader, writer, {
                "op": "event", "session": session,
                "event": {"type": "range", "path": [1],
                          "low": 30.0 + step * 0.2, "high": 80.0},
            })
            if step % 25 == 0:
                # An occasional frame pull mid-drag, like a real client
                # rendering at its own rate while events keep streaming.
                await request(reader, writer,
                              {"op": "snapshot", "session": session, "wait": False})
        settled = await request(reader, writer,
                                {"op": "snapshot", "session": session, "top": 3})
        metrics = await request(reader, writer, {"op": "metrics"})
        per_session = metrics["metrics"]["sessions"][session]
        await request(reader, writer, {"op": "close", "session": session})
        return {"user": user, "session": session,
                "statistics": settled["statistics"],
                "metrics": per_session}
    finally:
        writer.close()


async def main() -> None:
    database = environmental_database(hours=1200, stations=3, seed=21)
    print(f"database: {len(database.table('Weather'))} weather items, "
          f"{USERS} simulated users, {DRAG_EVENTS} drag events each\n")

    service = FeedbackService(
        database,
        PipelineConfig(),
        service_config=ServiceConfig(max_inflight=4, max_queue_depth=32),
    )
    async with service:
        server = await serve(service)
        print(f"JSON-lines server on 127.0.0.1:{server.port}\n")
        results = await asyncio.gather(*[
            simulate_user(server.port, user) for user in range(USERS)
        ])
        report = service.metrics_report()
        await server.aclose()

    for result in results:
        metrics = result["metrics"]
        print(f"user {result['user']} ({result['session']}): "
              f"{metrics['events_received']} events -> {metrics['runs']} pipeline runs "
              f"({metrics['events_coalesced']} coalesced), "
              f"p95 run {metrics['run_p95_ms']:.1f} ms, "
              f"displayed {result['statistics']['# displayed']}")
    service_totals = report["service"]
    engine_totals = report["engine"]
    print(f"\nservice totals: {service_totals['events_received']} events, "
          f"{service_totals['runs']} runs, "
          f"p95 {service_totals['run_p95_ms']:.1f} ms")
    print(f"engine caches: {engine_totals['node_hits']} node hits / "
          f"{engine_totals['node_misses']} misses, "
          f"{engine_totals['prefetch_hits']} prefetch hits")


if __name__ == "__main__":
    asyncio.run(main())
