"""Feedback service demo: streaming delta frames to several dragging users.

Starts a :class:`~repro.service.FeedbackService` over a synthetic
environmental database, exposes it through the JSON-lines protocol on a
local TCP port, and simulates a handful of concurrent users.  Each user
opens a **protocol v2** session, subscribes (receiving one full frame:
statistics, display order and every window's cell arrays), then drags a
range slider in a rapid burst while pulling ``delta`` updates at its own
frame rate -- applying each update with the reference client
(:func:`~repro.service.apply_frame_update`) exactly as a real UI would
patch its pixel buffers.

Two server-side effects make the loop cheap, and the demo prints both:

* **coalescing** -- hundreds of drag events per user resolve in a handful
  of pipeline runs, because bursts collapse to the newest slider position
  while the previous frame is still executing;
* **delta streaming** -- after the one-time subscribe, updates ship only
  changed window cells and displayed-set changes; the report compares the
  bytes that crossed the wire against the full-snapshot bytes the v1
  protocol would have sent.

Run with::

    python examples/feedback_service.py
"""

from __future__ import annotations

import asyncio
import json
import statistics as pystats

from repro import FeedbackService, PipelineConfig, ServiceConfig
from repro.datasets import environmental_database
from repro.service import apply_frame_update, serve
from repro.service.protocol import FeedbackProtocolServer

USERS = 4
DRAG_EVENTS = 150
#: Pull a delta every this many drag events (the client's "frame rate").
PULL_EVERY = 10


def query_text(user: int) -> str:
    """Each user explores their own variant of the Fig. 3 query (wire form)."""
    return (
        "SELECT * FROM Weather "
        f"WHERE Temperature > {12.0 + 2.0 * user} "
        "AND Humidity BETWEEN 30 AND 80"
    )


async def request(reader, writer, payload: dict) -> tuple[dict, int]:
    """One JSON-lines round trip; returns (response, response bytes)."""
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    line = await reader.readline()
    response = json.loads(line)
    if not response.get("ok"):
        raise RuntimeError(f"server error [{response.get('code')}]: "
                           f"{response.get('error')}")
    return response, len(line)


async def simulate_user(port: int, user: int) -> dict:
    """Open a v2 session, subscribe, drag a slider while streaming deltas."""
    reader, writer = await asyncio.open_connection(
        "127.0.0.1", port, limit=FeedbackProtocolServer.STREAM_LIMIT)
    update_bytes: list[int] = []
    modes: dict[str, int] = {}
    try:
        opened, _ = await request(reader, writer, {
            "op": "open", "protocol": 2, "query": query_text(user),
            "config": {"percentage": 0.35},
        })
        session = opened["session"]
        # The one-time full frame; everything after this is patched.
        subscribed, full_bytes = await request(
            reader, writer, {"op": "subscribe", "session": session})
        state = apply_frame_update(None, subscribed)
        # The drag: the lower humidity bound sweeps upward one step per
        # simulated frame.  Events stream at full rate; the client pulls a
        # delta only at its own frame rate, like a UI rendering at 60 Hz
        # against a firehose of input.
        for step in range(DRAG_EVENTS):
            await request(reader, writer, {
                "op": "event", "session": session,
                "event": {"type": "range", "path": [1],
                          "low": 30.0 + step * 0.2, "high": 80.0},
            })
            if step % PULL_EVERY == PULL_EVERY - 1:
                update, size = await request(
                    reader, writer,
                    {"op": "delta", "session": session, "wait": False})
                state = apply_frame_update(state, update)
                update_bytes.append(size)
                modes[update["mode"]] = modes.get(update["mode"], 0) + 1
        # Settle: wait for the last event to execute, then pull the final
        # delta so the client state is the settled frame.
        update, size = await request(
            reader, writer, {"op": "delta", "session": session, "wait": True})
        state = apply_frame_update(state, update)
        update_bytes.append(size)
        modes[update["mode"]] = modes.get(update["mode"], 0) + 1
        metrics, _ = await request(reader, writer, {"op": "metrics"})
        per_session = metrics["metrics"]["sessions"][session]
        await request(reader, writer, {"op": "close", "session": session})
        return {
            "user": user, "session": session,
            "statistics": state["statistics"],
            "metrics": per_session,
            "full_bytes": full_bytes,
            "update_bytes": update_bytes,
            "modes": modes,
        }
    finally:
        writer.close()


async def main() -> None:
    database = environmental_database(hours=1200, stations=3, seed=21)
    print(f"database: {len(database.table('Weather'))} weather items, "
          f"{USERS} simulated users, {DRAG_EVENTS} drag events each\n")

    service = FeedbackService(
        database,
        # Sharded + incremental execution: events patch per-shard state,
        # and the delta stream ships only what those patches changed.
        PipelineConfig(shard_count=4),
        service_config=ServiceConfig(max_inflight=4, max_queue_depth=32),
    )
    async with service:
        server = await serve(service)
        print(f"JSON-lines server on 127.0.0.1:{server.port}\n")
        results = await asyncio.gather(*[
            simulate_user(server.port, user) for user in range(USERS)
        ])
        report = service.metrics_report()
        wire = dict(server.wire_stats)
        await server.aclose()

    for result in results:
        metrics = result["metrics"]
        updates = result["update_bytes"]
        print(f"user {result['user']} ({result['session']}): "
              f"{metrics['events_received']} events -> {metrics['runs']} pipeline runs "
              f"({metrics['events_coalesced']} coalesced), "
              f"p95 run {metrics['run_p95_ms']:.1f} ms, "
              f"displayed {result['statistics']['# displayed']}")
        print(f"  wire: subscribe {result['full_bytes'] / 1024:.0f} KiB, then "
              f"{len(updates)} updates at median "
              f"{pystats.median(updates) / 1024:.2f} KiB "
              f"({result['modes']})")
    service_totals = report["service"]
    saved = wire["bytes_saved"]
    shipped = wire["delta_bytes"] + wire["snapshot_bytes"]
    print(f"\nservice totals: {service_totals['events_received']} events, "
          f"{service_totals['runs']} runs, "
          f"p95 {service_totals['run_p95_ms']:.1f} ms")
    print(f"wire totals: {wire['deltas_sent']} deltas + "
          f"{wire['snapshots_sent']} full frames = {shipped / 1024:.0f} KiB shipped, "
          f"{saved / 1024:.0f} KiB saved vs full snapshots "
          f"({(saved + shipped) / max(shipped, 1):.1f}x smaller)")
    incremental = report["incremental"]
    print(f"engine incremental: {incremental['displayed_patches']} displayed patches, "
          f"{incremental['result_count_patches']} result-count patches, "
          f"{incremental['shards_reused']} shard slices reused")


if __name__ == "__main__":
    asyncio.run(main())
