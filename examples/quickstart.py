"""Quickstart: run a visual feedback query and look at the result.

Builds a small synthetic environmental database, issues the paper's
"hot days" style query, prints the counters of the query modification
window, shows an ASCII preview of the overall result window and writes the
composed multi-window image to ``quickstart_visdb.png``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro import QueryBuilder, VisualFeedbackQuery, condition
from repro.datasets import environmental_database
from repro.vis import MultiWindowLayout, ascii_colorbar, ascii_render, write_png


def main() -> None:
    # 1. A database: synthetic weather + air-pollution measurement series.
    database = environmental_database(hours=1500, stations=4, seed=42)
    print(f"database tables: {database.table_names}")
    print(f"weather data items: {len(database.table('Weather'))}")

    # 2. A query: warm afternoons.  The visual feedback query returns not only
    #    the exact answers but also the approximate ones, ranked by relevance.
    query = (
        QueryBuilder("warm-afternoons", database)
        .use_tables("Weather")
        .add_result("Temperature")
        .add_result("Solar-Radiation")
        .where(condition("Temperature", ">", 25.0))
        .and_where(condition("Solar-Radiation", ">", 500.0))
        .build()
    )
    print(f"\nquery: {query.describe()}")

    # 3. Execute the pipeline, displaying 40 % of the data.
    feedback = VisualFeedbackQuery(database, query, percentage=0.4).execute()
    print("\ncounters (as in the query modification part of Fig. 4):")
    for key, value in feedback.statistics.as_dict().items():
        print(f"  {key:>12}: {value}")

    # 4. Per-window restrictiveness: darker window = more restrictive predicate.
    print("\nwindow summary:")
    for label, stats in feedback.window_summary().items():
        print(
            f"  {label:<40} restrictiveness={stats['restrictiveness']:.2f} "
            f"results={stats['results']}"
        )

    # 5. A terminal preview of the overall result window (spiral arrangement:
    #    exact answers in the middle, approximate answers further out).
    layout = MultiWindowLayout(window_width=64, window_height=64)
    windows = layout.windows(feedback)
    print("\noverall result window (ASCII preview):")
    print(ascii_colorbar())
    print(ascii_render(windows[()], max_width=64))

    # 6. Save the composed multi-window image (overall + one window per predicate).
    output = Path(__file__).resolve().parent / "quickstart_visdb.png"
    write_png(layout.compose(windows), output)
    print(f"\nwrote {output}")


if __name__ == "__main__":
    main()
