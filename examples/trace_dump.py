"""Pull slow-event traces from a running feedback service into Perfetto.

Connects to a :class:`~repro.service.FeedbackService` exposed over the
JSON-lines protocol, fetches the retained traces of events that blew
``ServiceConfig.trace_budget_ms`` via the ``trace`` op, prints each
event's explain record (which certificate failed, how many shards
recomputed, whether the backend fell back), and writes the whole set as
Chrome trace-event JSON -- open the file at https://ui.perfetto.dev to
see the stitched span tree from protocol receive down to the worker
kernels.

Run against a live server::

    python examples/trace_dump.py HOST PORT [--out traces.json]
    [--session s1] [--recent]

or with no arguments as a self-contained demo: it starts a traced
service over the synthetic environmental database, drives one cold open
plus a drag burst through the protocol, then dumps its own slow ring::

    python examples/trace_dump.py
"""

from __future__ import annotations

import argparse
import asyncio
import json

from repro.obs import write_chrome_trace
from repro.service.protocol import FeedbackProtocolServer


async def request(reader, writer, payload: dict) -> dict:
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    response = json.loads(await reader.readline())
    if not response.get("ok"):
        raise RuntimeError(f"server error [{response.get('code')}]: "
                           f"{response.get('error')}")
    return response


async def dump_traces(host: str, port: int, out: str,
                      session: str | None = None,
                      include_recent: bool = False) -> int:
    """Fetch retained traces over the wire and write ``out``; returns count."""
    reader, writer = await asyncio.open_connection(
        host, port, limit=FeedbackProtocolServer.STREAM_LIMIT)
    try:
        payload: dict = {"op": "trace", "include_recent": include_recent}
        if session is not None:
            payload["session"] = session
        response = await request(reader, writer, payload)
    finally:
        writer.close()
    traces = response["traces"]
    for trace in traces:
        header = (f"trace #{trace['trace_id']} {trace['name']!r} "
                  f"session={trace['attrs'].get('session')} "
                  f"{trace['duration_ms']:.1f} ms, {len(trace['spans'])} spans")
        explain = trace.get("explain")
        if explain is None:
            print(header)
            continue
        print(f"{header}  [SLOW, budget {explain['budget_ms']} ms]")
        for failure in explain["certificates_failed"]:
            print(f"  certificate failed: {failure['certificate']} "
                  f"at node {failure['node']} ({failure['span']})")
        print(f"  shards recomputed/reused: {explain['shards_recomputed']}"
              f"/{explain['shards_reused']}, "
              f"root dirty: {explain['root_dirty_shards']}, "
              f"backend fallbacks: {explain['backend_fallbacks']}, "
              f"worker restarts: {explain['worker_restarts']}")
        for slow in explain["slowest_spans"]:
            print(f"    {slow['duration_ms']:8.2f} ms  {slow['name']}")
    if traces:
        write_chrome_trace(out, traces)
        print(f"\nwrote {len(traces)} trace(s) to {out} "
              f"-- open at https://ui.perfetto.dev")
    else:
        print("no retained traces (is the service running with "
              "ServiceConfig(trace_enabled=True)?)")
    return len(traces)


async def demo(out: str) -> None:
    """Self-contained: traced service + drag burst + dump, one process."""
    from repro import FeedbackService, PipelineConfig, ServiceConfig
    from repro.datasets import environmental_database
    from repro.service import serve

    database = environmental_database(hours=1200, stations=3, seed=3)
    config = ServiceConfig(
        trace_enabled=True,
        # A deliberately tight budget so the demo's events land in the
        # slow ring; production budgets are tens to hundreds of ms.
        trace_budget_ms=0.5,
    )
    async with FeedbackService(database, PipelineConfig(percentage=0.3),
                               service_config=config) as service:
        server = await serve(service)
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port, limit=FeedbackProtocolServer.STREAM_LIMIT)
        opened = await request(reader, writer, {
            "op": "open",
            "query": ("SELECT * FROM Weather WHERE Temperature > 12 "
                      "AND Humidity BETWEEN 30 AND 80"),
        })
        session = opened["session"]
        for step in range(40):
            await request(reader, writer, {
                "op": "event", "session": session,
                "event": {"type": "threshold", "path": [0],
                          "value": 12.0 + step * 0.1},
            })
        await request(reader, writer, {"op": "snapshot", "session": session,
                                       "top": 3})
        writer.close()
        await dump_traces("127.0.0.1", server.port, out, session=session)
        await server.aclose()


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Dump a feedback service's slow-event traces for Perfetto")
    parser.add_argument("host", nargs="?", help="server host (omit for demo)")
    parser.add_argument("port", nargs="?", type=int, help="server port")
    parser.add_argument("--out", default="traces.json",
                        help="output Chrome trace-event JSON path")
    parser.add_argument("--session", default=None,
                        help="only this session's traces")
    parser.add_argument("--recent", action="store_true",
                        help="include the recent (fast) trace ring too")
    args = parser.parse_args()
    if args.host is None:
        asyncio.run(demo(args.out))
    elif args.port is None:
        parser.error("PORT is required when HOST is given")
    else:
        asyncio.run(dump_traces(args.host, args.port, args.out,
                                session=args.session,
                                include_recent=args.recent))


if __name__ == "__main__":
    main()
