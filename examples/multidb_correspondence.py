"""Finding corresponding data items in two independent databases (section 4.5).

Two station registries describe partly the same physical stations, but with
different ids, slightly offset coordinates and misspelled names.  An exact
join finds nothing; approximate joins on the coordinates (and, as a second
signal, on the names) recover the true correspondences and help the user
pick a sensible join distance threshold.

Run with::

    python examples/multidb_correspondence.py
"""

from __future__ import annotations

import numpy as np

from repro import VisualFeedbackQuery
from repro.datasets import correspondence_databases
from repro.distance.strings import edit_distance
from repro.query.expr import AndNode, PredicateLeaf
from repro.query.joins import ApproximateJoinPredicate, JoinKind
from repro.storage.cross_product import CrossProduct


def main() -> None:
    scenario = correspondence_databases(n_stations=80, overlap_fraction=0.6,
                                        coordinate_offset_m=40.0, seed=19)
    registry_a = scenario.database.table("RegistryA")
    registry_b = scenario.database.table("RegistryB")
    print(f"registry A: {len(registry_a)} stations, registry B: {len(registry_b)} stations")
    print(f"true correspondences: {len(scenario.true_pairs)}")

    # Exact join on the ids: impossible (the registries use different id schemes).
    ids_a = set(registry_a.column("StationId").tolist())
    ids_b = set(registry_b.column("Code").tolist())
    print(f"exact id join matches: {len(ids_a & ids_b)}")

    # Approximate spatial join over the cross product.
    product = CrossProduct(registry_a, registry_b, max_pairs=None)
    pairs = product.to_table()
    spatial_join = ApproximateJoinPredicate(
        ("RegistryA.X", "RegistryA.Y"), ("RegistryB.X", "RegistryB.Y"),
        JoinKind.WITHIN_DISTANCE, parameter=60.0,
    )
    feedback = VisualFeedbackQuery(pairs, PredicateLeaf(spatial_join), percentage=0.05).execute()
    print("\nspatial approximate join counters:", feedback.statistics.as_dict())

    matched = {
        (int(product.left_indices[i]), int(product.right_indices[i]))
        for i in np.nonzero(feedback.overall.exact_mask)[0]
    }
    truth = {tuple(int(v) for v in pair) for pair in scenario.true_pairs}
    print(f"true pairs recovered by the 60 m spatial join: {len(matched & truth)} / {len(truth)}")
    print(f"spurious pairs: {len(matched - truth)}")

    # Adding a phonetic/edit-distance name check sharpens the correspondence.
    name_distance = np.array([
        edit_distance(str(a), str(b))
        for a, b in zip(pairs.column("RegistryA.Name"), pairs.column("RegistryB.Name"))
    ])
    combined = AndNode([PredicateLeaf(spatial_join)])
    close_names = name_distance <= 2.0
    refined = {
        pair for pair, close in zip(
            zip(product.left_indices.tolist(), product.right_indices.tolist()), close_names
        ) if close
    } & matched
    print(f"after additionally requiring edit distance <= 2 on the names: "
          f"{len(refined & truth)} / {len(truth)} true pairs, "
          f"{len(refined - truth)} spurious")
    print(f"(combined condition: {combined.describe()} plus name distance)")


if __name__ == "__main__":
    main()
