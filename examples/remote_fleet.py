"""Interactive drag against a two-worker TCP fleet.

Spawns two standalone worker servers (the same ``python -m
repro.backend.remote.server`` processes you would run on other hosts),
points ``REPRO_REMOTE_WORKERS`` at them, and drives a range drag through
a traced :class:`~repro.service.FeedbackService` with
``PipelineConfig(backend="remote")``.  For every event it prints what
actually crossed the sockets -- request bytes out, reply bytes back --
against the columns published once at attach, then prints the stitched
span tree of the last event: the coordinator's own spans interleaved
with ``worker-HOST:PORT`` tracks timed on each worker's clock.

Run it self-contained (workers on loopback, shared-memory data plane)::

    python examples/remote_fleet.py [--out remote_trace.json]

The optional ``--out`` file is Chrome trace-event JSON -- open it at
https://ui.perfetto.dev to see the same stitched tree on a timeline,
exactly as :mod:`examples.trace_dump` renders service traces.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import re
import subprocess
import sys
from pathlib import Path

import repro
from repro import FeedbackService, PipelineConfig, Query, ServiceConfig
from repro.backend.remote import ENV_WORKERS
from repro.datasets import environmental_database
from repro.interact.events import SetQueryRange
from repro.obs import write_chrome_trace
from repro.query.builder import between, condition
from repro.query.expr import AndNode


def launch_fleet(count: int = 2) -> list[tuple[subprocess.Popen, str]]:
    """Start ``count`` worker servers on loopback; returns (proc, endpoint)."""
    env = dict(os.environ)
    # Make sure the workers can import repro the same way we did, even
    # when running from a source checkout without an install.
    package_root = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (package_root, env.get("PYTHONPATH")) if p)
    fleet = []
    for _ in range(count):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.backend.remote.server",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, text=True, env=env)
        line = proc.stdout.readline()
        match = re.search(r"listening on (\S+)", line)
        if not match:
            raise RuntimeError(f"worker failed to start: {line!r}")
        fleet.append((proc, match.group(1)))
    return fleet


def print_span_tree(trace: dict) -> None:
    """Indented span tree; remote tracks are marked with their endpoint."""
    spans = trace["spans"]
    children: dict[int, list[dict]] = {}
    for record in spans:
        if record["id"] != 0:
            children.setdefault(record["parent"], []).append(record)

    def walk(record: dict, depth: int) -> None:
        track = f"  [{record['tid']}]" if record["tid"].startswith("worker-") else ""
        print(f"    {record['duration_ms']:8.2f} ms  "
              f"{'  ' * depth}{record['name']}{track}")
        for child in children.get(record["id"], ()):
            walk(child, depth + 1)

    walk(spans[0], 0)


async def drag(out: str | None) -> None:
    database = environmental_database(hours=2400, stations=4, seed=7)
    query = Query(name="fleet-demo", tables=["Weather"], condition=AndNode([
        between("Temperature", 10.0, 30.0),
        condition("Humidity", "<", 75.0),
    ]))
    config = PipelineConfig(percentage=0.3, shard_count=4, backend="remote")
    service_config = ServiceConfig(trace_enabled=True)
    async with FeedbackService(database, config,
                               service_config=service_config) as service:
        sid = await service.open_session(query)
        await service.snapshot(sid)

        def backend_stats() -> dict:
            return service.metrics_report()["backend"] or {}

        cold = backend_stats()
        print(f"fleet: {os.environ[ENV_WORKERS]}  "
              f"(workers alive: {cold.get('workers_alive')})")
        print(f"published once at attach: {cold.get('published_bytes', 0):,} "
              f"column bytes "
              f"({cold.get('column_bytes', 0):,} of them over the socket; "
              f"0 means the loopback shared-memory plane carried them)\n")

        print("drag Temperature's lower bound, one micro-move per event:")
        for step in range(1, 9):
            before = backend_stats()
            await service.submit(
                sid, SetQueryRange((0,), 10.0 + 0.25 * step, 30.0))
            await service.snapshot(sid)
            after = backend_stats()
            wire = after["traffic_bytes"] - before["traffic_bytes"]
            reply = after["reply_bytes"] - before["reply_bytes"]
            # On the loopback shared-memory plane result columns never
            # touch the socket, so the reply payload is 0 B; cross-host
            # workers would show the partials/popcount bytes here.
            print(f"  event {step}: {wire:6,} B requests out, "
                  f"{reply:6,} B result payload back, "
                  f"fallbacks {after['remote_fallbacks']}")

        report = service.trace_report(include_recent=True)
        last_event = next(t for t in reversed(report) if t["name"] == "event")
        print(f"\nstitched trace of the last event "
              f"({last_event['duration_ms']:.1f} ms, "
              f"{len(last_event['spans'])} spans):")
        print_span_tree(last_event)

        if out:
            write_chrome_trace(out, report)
            print(f"\nwrote {len(report)} trace(s) to {out} "
                  f"-- open at https://ui.perfetto.dev")


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Drive a drag over a spawned two-worker TCP fleet")
    parser.add_argument("--out", default=None,
                        help="also write Chrome trace-event JSON here")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker servers to spawn (default 2)")
    args = parser.parse_args()

    fleet = launch_fleet(args.workers)
    os.environ[ENV_WORKERS] = ",".join(endpoint for _, endpoint in fleet)
    try:
        asyncio.run(drag(args.out))
    finally:
        for proc, _ in fleet:
            proc.terminate()
        for proc, _ in fleet:
            proc.wait(timeout=10)


if __name__ == "__main__":
    main()
