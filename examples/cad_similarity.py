"""Similarity retrieval in a CAD database (paper section 4.5).

A part is described by 27 parameters; classical queries with fixed
allowances either return only perfect matches or flood the user.  The
visual feedback query grades every part by how close it comes to the
reference part, so the "near miss" parts -- matching 26 of 27 parameters --
rank directly behind the exact matches instead of being lost.

Run with::

    python examples/cad_similarity.py
"""

from __future__ import annotations

import numpy as np

from repro import ScreenSpec, VisualFeedbackQuery
from repro.baselines import exact_query
from repro.datasets import cad_parts_table
from repro.datasets.cad import PARAMETER_NAMES
from repro.query.expr import AndNode, PredicateLeaf
from repro.query.predicates import RangePredicate


def main() -> None:
    scenario = cad_parts_table(n_parts=4000, seed=11)
    table = scenario.table
    reference = table.row(scenario.reference_index)
    print(f"CAD parts: {len(table)}, parameters per part: {len(PARAMETER_NAMES)}")
    print(f"planted exact matches: {len(scenario.exact_matches)}, "
          f"near misses (fail exactly one allowance): {len(scenario.near_misses)}")

    # The similarity query: every parameter within its allowance of the reference.
    tree = AndNode([
        PredicateLeaf(RangePredicate.around(name, float(reference[name]),
                                            float(scenario.tolerances[i])))
        for i, name in enumerate(PARAMETER_NAMES)
    ])

    # Classical fixed-allowance query: only the perfect matches survive.
    exact_rows = exact_query(table, tree)
    print(f"\nclassical query result size: {len(exact_rows)} "
          "(the near misses are invisible)")

    # Visual feedback query: everything is ranked by its combined distance.
    feedback = VisualFeedbackQuery(table, tree, screen=ScreenSpec(512, 512),
                                   percentage=0.05).execute()
    print("counters:", feedback.statistics.as_dict())

    front = feedback.display_order[: len(exact_rows) + len(scenario.near_misses)]
    recovered = np.intersect1d(front, scenario.near_misses)
    print(f"near misses among the top-ranked approximate answers: "
          f"{len(recovered)} / {len(scenario.near_misses)}")

    # Which single parameter does the best near miss fail?
    best_near_miss = next(int(i) for i in feedback.display_order
                          if i in set(scenario.near_misses.tolist()))
    values = np.array([table.column(p)[best_near_miss] for p in PARAMETER_NAMES])
    reference_values = np.array([reference[p] for p in PARAMETER_NAMES])
    failing = np.nonzero(np.abs(values - reference_values) > scenario.tolerances)[0]
    print(f"best-ranked near miss is part {best_near_miss}; "
          f"it only violates parameter {PARAMETER_NAMES[failing[0]]}")


if __name__ == "__main__":
    main()
