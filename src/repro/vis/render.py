"""Image export: PPM and PNG writers (no external imaging library).

The original system drew directly to an X11 display; here the pixel buffers
are written to files so the figures can be inspected and compared.  PNG
encoding uses only the standard library (``zlib`` + ``struct``).
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import numpy as np

__all__ = ["write_ppm", "write_png", "png_bytes", "patch_rgb", "upscale",
           "save_window"]


def _as_rgb_array(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image)
    if image.ndim == 2:
        image = np.stack([image] * 3, axis=-1)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("image must be HxW (grey) or HxWx3 (RGB)")
    if image.dtype != np.uint8:
        image = np.clip(image, 0, 255).astype(np.uint8)
    return image


def write_ppm(image: np.ndarray, path: str | Path) -> Path:
    """Write an RGB image to a binary PPM (P6) file."""
    image = _as_rgb_array(image)
    path = Path(path)
    height, width = image.shape[:2]
    with path.open("wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(image.tobytes())
    return path


def png_bytes(image: np.ndarray) -> bytes:
    """Encode an RGB image as PNG bytes (8-bit, no alpha).

    The in-memory form of :func:`write_png`; the feedback service's
    protocol adapter ships rendered windows to remote clients with it.
    """
    image = _as_rgb_array(image)
    height, width = image.shape[:2]

    def chunk(kind: bytes, payload: bytes) -> bytes:
        return (
            struct.pack(">I", len(payload))
            + kind
            + payload
            + struct.pack(">I", zlib.crc32(kind + payload) & 0xFFFFFFFF)
        )

    header = struct.pack(">IIBBBBB", width, height, 8, 2, 0, 0, 0)
    # Each scanline is prefixed with filter type 0 (None).
    raw = b"".join(b"\x00" + image[row].tobytes() for row in range(height))
    return (
        b"\x89PNG\r\n\x1a\n"
        + chunk(b"IHDR", header)
        + chunk(b"IDAT", zlib.compress(raw, level=6))
        + chunk(b"IEND", b"")
    )


def write_png(image: np.ndarray, path: str | Path) -> Path:
    """Write an RGB image to a PNG file (8-bit, no alpha)."""
    path = Path(path)
    path.write_bytes(png_bytes(image))
    return path


def patch_rgb(rgb: np.ndarray, window, indices: np.ndarray, colormap,
              background: tuple[int, int, int] = (20, 20, 20)) -> np.ndarray:
    """Recolor only the given flat cells of a previously rendered window.

    ``rgb`` is a ``height x width x 3`` uint8 buffer previously produced by
    :meth:`~repro.vis.window.VisualizationWindow.to_rgb` (without
    highlighting); ``indices`` are flat cell indices as reported by
    :meth:`~repro.vis.window.VisualizationWindow.diff_cells`.  Only those
    cells are re-colormapped, so a streaming client pays O(changed cells)
    per delta frame instead of re-rendering the window.  The buffer is
    updated in place and returned; the result is bit-identical to a full
    ``window.to_rgb(colormap)`` render.
    """
    indices = np.asarray(indices, dtype=np.intp)
    if len(indices) == 0:
        return rgb
    flat = rgb.reshape(-1, 3)
    distances = window.distances.reshape(-1)[indices]
    item_ids = window.item_ids.reshape(-1)[indices]
    colors = colormap(distances)
    colors[item_ids < 0] = np.array(background, dtype=np.uint8)
    flat[indices] = colors
    return rgb


def upscale(image: np.ndarray, factor: int) -> np.ndarray:
    """Nearest-neighbour upscaling (each pixel becomes a ``factor x factor`` block)."""
    if factor < 1:
        raise ValueError("factor must be at least 1")
    image = np.asarray(image)
    if factor == 1:
        return image
    scaled = np.repeat(np.repeat(image, factor, axis=0), factor, axis=1)
    return scaled


def save_window(window, path: str | Path, colormap=None, scale: int = 1,
                highlight_items: np.ndarray | None = None) -> Path:
    """Render a :class:`~repro.vis.window.VisualizationWindow` and save it.

    The file format is chosen from the suffix (``.png`` or ``.ppm``).
    """
    from repro.vis.colormap import VisDBColormap

    colormap = colormap or VisDBColormap()
    rgb = upscale(window.to_rgb(colormap, highlight_items=highlight_items), scale)
    path = Path(path)
    if path.suffix.lower() == ".png":
        return write_png(rgb, path)
    if path.suffix.lower() == ".ppm":
        return write_ppm(rgb, path)
    raise ValueError(f"unsupported image format: {path.suffix!r} (use .png or .ppm)")
