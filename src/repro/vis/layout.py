"""The multi-window layout of the query visualization (Figs. 4 and 5).

The visualization part of the VisDB window shows the *overall result* in
the upper left and one window per (top-level) selection predicate next to
it, all using the same item placement.  :class:`MultiWindowLayout` builds
those windows from a :class:`~repro.core.result.QueryFeedback` and can
compose them -- with margins and an optional colour-scale strip -- into one
RGB canvas that can be written to a PPM/PNG file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.result import QueryFeedback
from repro.query.expr import NodePath
from repro.vis.arrangement import window_for_node
from repro.vis.colormap import VisDBColormap
from repro.vis.window import VisualizationWindow

__all__ = ["MultiWindowLayout"]


@dataclass
class MultiWindowLayout:
    """Builds and composes the overall + per-predicate windows.

    Parameters
    ----------
    window_width, window_height:
        Size of each individual window in pixels.
    pixels_per_item:
        1, 4 or 16 pixels per data item.
    colormap:
        Colormap used when composing RGB output (VisDB scale by default).
    margin:
        Gap in pixels between windows in the composed canvas.
    """

    window_width: int = 128
    window_height: int = 128
    pixels_per_item: int = 1
    colormap: object = field(default_factory=VisDBColormap)
    margin: int = 4

    # ------------------------------------------------------------------ #
    def windows(self, feedback: QueryFeedback,
                paths: list[NodePath] | None = None,
                include_overall: bool = True,
                independent: bool = False) -> dict[NodePath, VisualizationWindow]:
        """Build the visualization windows for the given node paths.

        By default: the overall result (path ``()``) plus every top-level
        part of the query -- the layout of Fig. 4.  Passing the children of
        an inner node reproduces the "double click on the OR box" view of
        Fig. 5.
        """
        if paths is None:
            paths = feedback.top_level_paths()
        selected: list[NodePath] = []
        if include_overall:
            selected.append(())
        selected.extend(p for p in paths if p != ())
        return {
            path: window_for_node(
                feedback,
                path,
                self.window_width,
                self.window_height,
                pixels_per_item=self.pixels_per_item,
                independent=independent and path != (),
            )
            for path in selected
        }

    def subpart_windows(self, feedback: QueryFeedback, parent: NodePath) -> dict[NodePath, VisualizationWindow]:
        """Windows for the children of an inner operator box (Fig. 5).

        The parent's own window plays the role of the "overall result of the
        corresponding query part" in the upper left.
        """
        children = sorted(
            p for p in feedback.node_feedback if len(p) == len(parent) + 1 and p[: len(parent)] == parent
        )
        windows = {parent: window_for_node(
            feedback, parent, self.window_width, self.window_height,
            pixels_per_item=self.pixels_per_item,
        )}
        for path in children:
            windows[path] = window_for_node(
                feedback, path, self.window_width, self.window_height,
                pixels_per_item=self.pixels_per_item,
            )
        return windows

    # ------------------------------------------------------------------ #
    def compose(self, windows: dict[NodePath, VisualizationWindow],
                columns: int | None = None,
                highlight_items: np.ndarray | None = None,
                background: tuple[int, int, int] = (40, 40, 40)) -> np.ndarray:
        """Compose several windows into a single RGB image (uint8).

        Windows are placed left-to-right, top-to-bottom in path order with
        the overall result first, mirroring the screen layout of Fig. 4.
        """
        if not windows:
            raise ValueError("no windows to compose")
        ordered = [windows[p] for p in sorted(windows, key=lambda p: (len(p), p))]
        n = len(ordered)
        if columns is None:
            columns = int(np.ceil(np.sqrt(n)))
        rows = int(np.ceil(n / columns))
        tile_h = self.window_height + self.margin
        tile_w = self.window_width + self.margin
        canvas = np.full(
            (rows * tile_h + self.margin, columns * tile_w + self.margin, 3),
            background,
            dtype=np.uint8,
        )
        for index, window in enumerate(ordered):
            row, col = divmod(index, columns)
            y = self.margin + row * tile_h
            x = self.margin + col * tile_w
            rgb = window.to_rgb(self.colormap, highlight_items=highlight_items)
            canvas[y:y + window.height, x:x + window.width] = rgb
        return canvas

    def render(self, feedback: QueryFeedback,
               highlight_items: np.ndarray | None = None) -> np.ndarray:
        """Convenience: build the default windows and compose them."""
        return self.compose(self.windows(feedback), highlight_items=highlight_items)

    # ------------------------------------------------------------------ #
    def item_capacity(self) -> int:
        """How many data items one window of this layout can show."""
        from repro.vis.arrangement import block_factor

        factor = block_factor(self.pixels_per_item)
        return (self.window_width // factor) * (self.window_height // factor)
