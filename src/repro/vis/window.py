"""A single visualization window: a pixel grid of distances and item ids."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["VisualizationWindow"]


@dataclass
class VisualizationWindow:
    """Pixel-level contents of one visualization window.

    Attributes
    ----------
    title:
        Window label (the predicate description or "overall result").
    distances:
        ``height x width`` float array of normalized distances; NaN marks
        pixels without a data item.
    item_ids:
        ``height x width`` integer array of table row indices; -1 marks
        empty pixels.  Pixels of the same data item (when an item occupies
        4 or 16 pixels) share the id.
    """

    title: str
    distances: np.ndarray
    item_ids: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.distances = np.asarray(self.distances, dtype=float)
        self.item_ids = np.asarray(self.item_ids, dtype=np.intp)
        if self.distances.shape != self.item_ids.shape:
            raise ValueError("distances and item_ids must have the same shape")
        if self.distances.ndim != 2:
            raise ValueError("window arrays must be 2-dimensional")

    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        """Window height in pixels."""
        return self.distances.shape[0]

    @property
    def width(self) -> int:
        """Window width in pixels."""
        return self.distances.shape[1]

    @property
    def occupancy(self) -> float:
        """Fraction of pixels showing a data item."""
        return float(np.mean(self.item_ids >= 0))

    def item_count(self) -> int:
        """Number of distinct data items represented in the window."""
        ids = self.item_ids[self.item_ids >= 0]
        return int(len(np.unique(ids)))

    # ------------------------------------------------------------------ #
    def to_rgb(self, colormap, background: tuple[int, int, int] = (20, 20, 20),
               highlight_items: np.ndarray | None = None,
               highlight_color: tuple[int, int, int] = (255, 255, 255)) -> np.ndarray:
        """Render the window to an ``height x width x 3`` uint8 image.

        ``highlight_items`` is an optional array of table row indices whose
        pixels are drawn in ``highlight_color`` -- the cross-window
        highlighting of a selected tuple or colour range.
        """
        rgb = colormap(self.distances)
        empty = self.item_ids < 0
        rgb[empty] = np.array(background, dtype=np.uint8)
        if highlight_items is not None and len(highlight_items) > 0:
            mask = np.isin(self.item_ids, np.asarray(highlight_items))
            rgb[mask] = np.array(highlight_color, dtype=np.uint8)
        return rgb

    def position_of_item(self, row_index: int) -> tuple[int, int] | None:
        """(x, y) of the first pixel showing ``row_index``, or None if absent."""
        matches = np.argwhere(self.item_ids == row_index)
        if len(matches) == 0:
            return None
        y, x = matches[0]
        return int(x), int(y)

    def item_at(self, x: int, y: int) -> int | None:
        """Table row index shown at pixel (x, y), or None for empty pixels."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"pixel ({x}, {y}) outside a {self.width}x{self.height} window")
        item = int(self.item_ids[y, x])
        return None if item < 0 else item

    def yellow_region_size(self) -> int:
        """Number of pixels with distance exactly 0 (the yellow centre region)."""
        with np.errstate(invalid="ignore"):
            return int(np.sum(self.distances == 0.0))

    def mean_distance(self) -> float:
        """Mean normalized distance over occupied pixels (window brightness proxy)."""
        occupied = self.item_ids >= 0
        if not np.any(occupied):
            return float("nan")
        return float(np.nanmean(self.distances[occupied]))
