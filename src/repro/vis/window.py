"""A single visualization window: a pixel grid of distances and item ids."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["VisualizationWindow"]


@dataclass
class VisualizationWindow:
    """Pixel-level contents of one visualization window.

    Attributes
    ----------
    title:
        Window label (the predicate description or "overall result").
    distances:
        ``height x width`` float array of normalized distances; NaN marks
        pixels without a data item.
    item_ids:
        ``height x width`` integer array of table row indices; -1 marks
        empty pixels.  Pixels of the same data item (when an item occupies
        4 or 16 pixels) share the id.
    """

    title: str
    distances: np.ndarray
    item_ids: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.distances = np.asarray(self.distances, dtype=float)
        self.item_ids = np.asarray(self.item_ids, dtype=np.intp)
        if self.distances.shape != self.item_ids.shape:
            raise ValueError("distances and item_ids must have the same shape")
        if self.distances.ndim != 2:
            raise ValueError("window arrays must be 2-dimensional")

    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        """Window height in pixels."""
        return self.distances.shape[0]

    @property
    def width(self) -> int:
        """Window width in pixels."""
        return self.distances.shape[1]

    @property
    def occupancy(self) -> float:
        """Fraction of pixels showing a data item."""
        return float(np.mean(self.item_ids >= 0))

    def item_count(self) -> int:
        """Number of distinct data items represented in the window."""
        ids = self.item_ids[self.item_ids >= 0]
        return int(len(np.unique(ids)))

    # ------------------------------------------------------------------ #
    def to_rgb(self, colormap, background: tuple[int, int, int] = (20, 20, 20),
               highlight_items: np.ndarray | None = None,
               highlight_color: tuple[int, int, int] = (255, 255, 255)) -> np.ndarray:
        """Render the window to an ``height x width x 3`` uint8 image.

        ``highlight_items`` is an optional array of table row indices whose
        pixels are drawn in ``highlight_color`` -- the cross-window
        highlighting of a selected tuple or colour range.
        """
        rgb = colormap(self.distances)
        empty = self.item_ids < 0
        rgb[empty] = np.array(background, dtype=np.uint8)
        if highlight_items is not None and len(highlight_items) > 0:
            mask = np.isin(self.item_ids, np.asarray(highlight_items))
            rgb[mask] = np.array(highlight_color, dtype=np.uint8)
        return rgb

    def diff_cells(self, base: "VisualizationWindow | None") -> np.ndarray | None:
        """Flat indices of the cells that differ from ``base``.

        The unit of change is one pixel cell: a cell differs when its
        distance (NaN-aware) or its item id does.  Returns None when no
        cell-level relation exists (no base, or a different window
        geometry) -- the caller must then ship the window wholesale.  The
        common streaming case, an identical window object served from the
        render cache, short-circuits to an empty diff without comparing
        arrays.
        """
        if base is None or base.distances.shape != self.distances.shape:
            return None
        if base is self or (base.distances is self.distances
                            and base.item_ids is self.item_ids):
            return np.empty(0, dtype=np.intp)
        base_d = base.distances.ravel()
        new_d = self.distances.ravel()
        same = (base_d == new_d) | (np.isnan(base_d) & np.isnan(new_d))
        same &= base.item_ids.ravel() == self.item_ids.ravel()
        return np.nonzero(~same)[0]

    def with_cells(self, indices: np.ndarray, distances: np.ndarray,
                   item_ids: np.ndarray) -> "VisualizationWindow":
        """A copy of this window with the given flat cells replaced.

        The patch-application side of :meth:`diff_cells`: applying a diff's
        indices with the new window's values to the base window reproduces
        the new window exactly.
        """
        new_d = self.distances.copy()
        new_i = self.item_ids.copy()
        flat_d = new_d.reshape(-1)
        flat_i = new_i.reshape(-1)
        indices = np.asarray(indices, dtype=np.intp)
        flat_d[indices] = np.asarray(distances, dtype=float)
        flat_i[indices] = np.asarray(item_ids, dtype=np.intp)
        return VisualizationWindow(self.title, new_d, new_i, dict(self.metadata))

    def position_of_item(self, row_index: int) -> tuple[int, int] | None:
        """(x, y) of the first pixel showing ``row_index``, or None if absent."""
        matches = np.argwhere(self.item_ids == row_index)
        if len(matches) == 0:
            return None
        y, x = matches[0]
        return int(x), int(y)

    def item_at(self, x: int, y: int) -> int | None:
        """Table row index shown at pixel (x, y), or None for empty pixels."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"pixel ({x}, {y}) outside a {self.width}x{self.height} window")
        item = int(self.item_ids[y, x])
        return None if item < 0 else item

    def yellow_region_size(self) -> int:
        """Number of pixels with distance exactly 0 (the yellow centre region)."""
        with np.errstate(invalid="ignore"):
            return int(np.sum(self.distances == 0.0))

    def mean_distance(self) -> float:
        """Mean normalized distance over occupied pixels (window brightness proxy)."""
        occupied = self.item_ids >= 0
        if not np.any(occupied):
            return float("nan")
        return float(np.nanmean(self.distances[occupied]))
