"""Arrangements of data items in visualization windows.

Three arrangements from the paper:

* **Spiral (normal) arrangement** (Fig. 1a): the displayed items, sorted by
  relevance, are placed on a rectangular spiral with the most relevant item
  at the window centre.
* **Position-preserving per-predicate windows**: the per-predicate windows
  use *the same* placement as the overall window -- only the colours differ
  -- so pixels in the same position refer to the same data item.
* **2D arrangement** (Fig. 1b): two attributes with signed distances are
  assigned to the axes; the sign of the distances decides the quadrant
  (left/right for the first attribute, bottom/top for the second) and
  within each quadrant items grow outward from the window centre sorted by
  relevance.  Exact answers sit in the middle.

Items can occupy 1, 4 (2x2) or 16 (4x4) pixels; the arrangement is computed
on a block grid and expanded.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import QueryFeedback
from repro.query.expr import NodePath
from repro.vis.spiral import spiral_positions
from repro.vis.window import VisualizationWindow

__all__ = [
    "spiral_arrangement",
    "window_for_node",
    "two_attribute_arrangement",
    "block_factor",
]


def block_factor(pixels_per_item: int) -> int:
    """Side length of the pixel block per item (1, 2 or 4)."""
    if pixels_per_item not in (1, 4, 16):
        raise ValueError("pixels_per_item must be 1, 4 or 16")
    return int(round(math.sqrt(pixels_per_item)))


def _expand(grid: np.ndarray, factor: int) -> np.ndarray:
    """Replicate every cell of ``grid`` into a ``factor x factor`` pixel block."""
    if factor == 1:
        return grid
    return np.kron(grid, np.ones((factor, factor), dtype=grid.dtype))


def spiral_arrangement(distances: np.ndarray, item_ids: np.ndarray, width: int, height: int,
                       pixels_per_item: int = 1, title: str = "overall result",
                       sort: bool = False) -> VisualizationWindow:
    """Place items (already in display order) on the rectangular spiral.

    Parameters
    ----------
    distances:
        Normalized distances of the displayed items, *in display order*
        (most relevant first).  For the overall result window this sequence
        is non-decreasing; per-predicate windows pass their own distances in
        the same item order to keep positions aligned.
    item_ids:
        Table row indices corresponding to ``distances``.
    width, height:
        Window size in pixels.
    pixels_per_item:
        1, 4 or 16 pixels per data item.
    sort:
        If True, sort the items by distance before placing them (used when a
        query part is examined independently of the overall result).
    """
    distances = np.asarray(distances, dtype=float)
    item_ids = np.asarray(item_ids, dtype=np.intp)
    if distances.shape != item_ids.shape:
        raise ValueError("distances and item_ids must have the same length")
    if sort:
        order = np.argsort(distances, kind="stable")
        distances = distances[order]
        item_ids = item_ids[order]
    factor = block_factor(pixels_per_item)
    block_width, block_height = width // factor, height // factor
    capacity = block_width * block_height
    if len(distances) > capacity:
        raise ValueError(
            f"{len(distances)} items do not fit into a {width}x{height} window "
            f"with {pixels_per_item} pixels per item (capacity {capacity})"
        )
    distance_grid = np.full((block_height, block_width), np.nan)
    id_grid = np.full((block_height, block_width), -1, dtype=np.intp)
    positions = spiral_positions(len(distances), block_width, block_height)
    distance_grid[positions[:, 1], positions[:, 0]] = distances
    id_grid[positions[:, 1], positions[:, 0]] = item_ids
    return VisualizationWindow(
        title=title,
        distances=_expand(distance_grid, factor),
        item_ids=_expand(id_grid, factor),
        metadata={"arrangement": "spiral", "pixels_per_item": pixels_per_item},
    )


def window_for_node(feedback: QueryFeedback, path: NodePath, width: int, height: int,
                    pixels_per_item: int = 1, independent: bool = False) -> VisualizationWindow:
    """Build the visualization window for one node of the query tree.

    By default the item placement is the one of the overall result (sorted
    by overall relevance), so windows correspond position-by-position.  With
    ``independent=True`` the node is examined on its own and its items are
    re-sorted by the node's own distances (the paper's option to "get the
    data items arranged according to the relevance factors calculated for
    the query part only").
    """
    node = feedback.node_feedback[path]
    distances = feedback.ordered_distances(path)
    item_ids = feedback.display_order
    # When the window is smaller than the displayed set, show the most relevant
    # items that fit ("presenting as many data items as fit on the screen").
    factor = block_factor(pixels_per_item)
    capacity = (width // factor) * (height // factor)
    if len(item_ids) > capacity:
        distances = distances[:capacity]
        item_ids = item_ids[:capacity]
    return spiral_arrangement(
        distances,
        item_ids,
        width,
        height,
        pixels_per_item=pixels_per_item,
        title=node.label,
        sort=independent,
    )


def _quadrant_fill(quadrant_width: int, quadrant_height: int,
                   inner_corner: tuple[int, int]) -> np.ndarray:
    """All cell positions of one quadrant, ordered outward from its inner corner.

    Cells are ordered by Chebyshev distance from the corner adjoining the
    window centre (ties broken by Euclidean distance), so the most relevant
    items of the quadrant sit next to the yellow centre region.
    """
    xs, ys = np.meshgrid(np.arange(quadrant_width), np.arange(quadrant_height))
    corner_x, corner_y = inner_corner
    cheb = np.maximum(np.abs(xs - corner_x), np.abs(ys - corner_y)).ravel()
    euclid = np.hypot(xs - corner_x, ys - corner_y).ravel()
    cell_order = np.lexsort((euclid, cheb))
    return np.stack([xs.ravel()[cell_order], ys.ravel()[cell_order]], axis=1)


def two_attribute_arrangement(signed_a: np.ndarray, signed_b: np.ndarray,
                              overall_distances: np.ndarray, item_ids: np.ndarray,
                              width: int, height: int,
                              title: str = "2D arrangement") -> VisualizationWindow:
    """The Fig. 1b arrangement: quadrants by distance direction, colours by distance.

    Parameters
    ----------
    signed_a, signed_b:
        Signed distances of the two attributes assigned to the x and y axis
        (display order).  Negative ``signed_a`` goes left, positive right;
        negative ``signed_b`` bottom, positive top.
    overall_distances:
        Normalized combined distances used for the colour and the outward
        ordering inside each quadrant.
    item_ids:
        Table row indices, aligned with the distance arrays.
    """
    signed_a = np.asarray(signed_a, dtype=float)
    signed_b = np.asarray(signed_b, dtype=float)
    overall = np.asarray(overall_distances, dtype=float)
    item_ids = np.asarray(item_ids, dtype=np.intp)
    if not (len(signed_a) == len(signed_b) == len(overall) == len(item_ids)):
        raise ValueError("all input arrays must have the same length")
    if len(overall) > width * height:
        raise ValueError("more items than pixels; reduce the displayed set first")
    half_width, half_height = width // 2, height // 2
    distance_grid = np.full((height, width), np.nan)
    id_grid = np.full((height, width), -1, dtype=np.intp)

    exact = (signed_a == 0.0) & (signed_b == 0.0)
    # Exact answers form the yellow centre: a small spiral around the middle.
    exact_indices = np.nonzero(exact)[0]
    centre_capacity = min(len(exact_indices), width * height)
    if centre_capacity:
        positions = spiral_positions(centre_capacity, width, height)
        chosen = exact_indices[np.argsort(overall[exact_indices], kind="stable")][:centre_capacity]
        distance_grid[positions[:, 1], positions[:, 0]] = overall[chosen]
        id_grid[positions[:, 1], positions[:, 0]] = item_ids[chosen]

    # Quadrants: (x side, y side) -> (x offset, y offset, inner corner).
    # Positive y ("top") is the upper half of the image (small row index).
    quadrant_specs = {
        (False, True): (0, 0, (half_width - 1, half_height - 1)),            # left / top
        (True, True): (half_width, 0, (0, half_height - 1)),                 # right / top
        (False, False): (0, half_height, (half_width - 1, 0)),               # left / bottom
        (True, False): (half_width, half_height, (0, 0)),                    # right / bottom
    }
    remaining = np.nonzero(~exact)[0]
    for (positive_a, positive_b), (x_offset, y_offset, corner) in quadrant_specs.items():
        in_quadrant = remaining[
            ((signed_a[remaining] > 0) == positive_a)
            & ((signed_b[remaining] > 0) == positive_b)
        ]
        if len(in_quadrant) == 0:
            continue
        in_quadrant = in_quadrant[np.argsort(overall[in_quadrant], kind="stable")]
        quadrant_width = width - half_width if x_offset else half_width
        quadrant_height = height - half_height if y_offset else half_height
        coords = _quadrant_fill(quadrant_width, quadrant_height, corner)
        # Skip cells already used by the central exact-answer region and fill
        # the remaining cells outward; items that do not fit are dropped.
        free = id_grid[coords[:, 1] + y_offset, coords[:, 0] + x_offset] < 0
        coords = coords[free][: len(in_quadrant)]
        placed = in_quadrant[: len(coords)]
        distance_grid[coords[:, 1] + y_offset, coords[:, 0] + x_offset] = overall[placed]
        id_grid[coords[:, 1] + y_offset, coords[:, 0] + x_offset] = item_ids[placed]
    return VisualizationWindow(
        title=title,
        distances=distance_grid,
        item_ids=id_grid,
        metadata={"arrangement": "2d"},
    )
