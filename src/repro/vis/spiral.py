"""Rectangular spiral coordinates.

The overall result window arranges the sorted relevance factors "with the
highest relevance factors centered in the middle of the window" and the
approximate answers "rectangular spiral-shaped around this region".  This
module generates that ordering of pixel positions: position 0 is the centre
of the window, subsequent positions walk outwards along a rectangular
spiral until the whole window is covered.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["rect_spiral_coords", "spiral_positions", "rank_grid"]


@lru_cache(maxsize=64)
def _spiral_cache(width: int, height: int) -> tuple[np.ndarray, np.ndarray]:
    """Spiral coordinates (x, y) covering a width x height window, centre first."""
    if width <= 0 or height <= 0:
        raise ValueError("window dimensions must be positive")
    cx, cy = (width - 1) // 2, (height - 1) // 2
    total = width * height
    xs = np.empty(total, dtype=np.intp)
    ys = np.empty(total, dtype=np.intp)
    count = 0
    x, y = cx, cy
    if 0 <= x < width and 0 <= y < height:
        xs[count], ys[count] = x, y
        count += 1
    # Walk the classic rectangular spiral: step lengths 1, 1, 2, 2, 3, 3, ...
    # alternating direction right, down, left, up; positions outside the
    # window are skipped but the walk continues until the window is full.
    directions = ((1, 0), (0, 1), (-1, 0), (0, -1))
    step_length = 1
    direction_index = 0
    while count < total:
        for _ in range(2):
            dx, dy = directions[direction_index]
            for _ in range(step_length):
                x += dx
                y += dy
                if 0 <= x < width and 0 <= y < height:
                    xs[count], ys[count] = x, y
                    count += 1
                    if count == total:
                        break
            direction_index = (direction_index + 1) % 4
            if count == total:
                break
        step_length += 1
    return xs.copy(), ys.copy()


def rect_spiral_coords(width: int, height: int) -> np.ndarray:
    """Return an ``(width*height, 2)`` array of (x, y) positions, centre first."""
    xs, ys = _spiral_cache(int(width), int(height))
    return np.stack([xs, ys], axis=1)


def spiral_positions(n: int, width: int, height: int) -> np.ndarray:
    """First ``n`` spiral positions of a ``width x height`` window.

    Raises ``ValueError`` if more positions are requested than the window has
    pixels -- the caller is responsible for reducing the data first.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n > width * height:
        raise ValueError(
            f"cannot place {n} items in a {width}x{height} window ({width * height} pixels)"
        )
    return rect_spiral_coords(width, height)[:n]


def rank_grid(width: int, height: int) -> np.ndarray:
    """Inverse mapping: a ``height x width`` array of spiral ranks per pixel.

    ``rank_grid(w, h)[y, x]`` is the display rank whose pixel lands at
    ``(x, y)``; useful for hit-testing (which data item did the user click?).
    """
    coords = rect_spiral_coords(width, height)
    grid = np.empty((height, width), dtype=np.intp)
    grid[coords[:, 1], coords[:, 0]] = np.arange(len(coords))
    return grid
