"""ASCII previews of visualization windows for terminals and logs.

Useful for the examples and benchmark harnesses: even without an image
viewer the characteristic structure of the windows (yellow centre region,
darker rings of approximate answers) is visible at a glance.
"""

from __future__ import annotations

import numpy as np

from repro.core.normalization import NORMALIZED_MAX
from repro.vis.window import VisualizationWindow

__all__ = ["ascii_render", "ascii_colorbar"]

#: Characters from "exact answer" to "most distant"; a space marks empty pixels.
DEFAULT_CHARSET = "@%#*+=-:. "


def ascii_render(window: VisualizationWindow, charset: str = DEFAULT_CHARSET,
                 max_width: int = 100, target_max: float = NORMALIZED_MAX) -> str:
    """Render a window as ASCII art (one character per (downsampled) pixel).

    Distance 0 maps to the first character of ``charset`` (dense), the
    maximum distance to the last non-space character, empty pixels to a
    space.  Windows wider than ``max_width`` are downsampled by integer
    striding.
    """
    if len(charset) < 2:
        raise ValueError("charset needs at least two characters")
    stride = max(1, int(np.ceil(window.width / max_width)))
    distances = window.distances[::stride, ::stride]
    items = window.item_ids[::stride, ::stride]
    levels = len(charset) - 1
    with np.errstate(invalid="ignore"):
        indices = np.clip(
            (distances / target_max * (levels - 1)).astype(float), 0, levels - 1
        )
    lines = []
    for y in range(distances.shape[0]):
        row_chars = []
        for x in range(distances.shape[1]):
            if items[y, x] < 0 or not np.isfinite(distances[y, x]):
                row_chars.append(" ")
            else:
                row_chars.append(charset[int(indices[y, x])])
        lines.append("".join(row_chars))
    return "\n".join(lines)


def ascii_colorbar(length: int = 40, charset: str = DEFAULT_CHARSET) -> str:
    """A one-line legend showing the distance-to-character mapping."""
    levels = len(charset) - 1
    positions = np.linspace(0, levels - 1, length).astype(int)
    return "exact [" + "".join(charset[p] for p in positions) + "] distant"
