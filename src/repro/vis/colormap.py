"""Colormaps for relevance/distance visualization.

Section 4.2: "we found experimentally that for our application, a colormap
with quite constant saturation, an increasing luminosity (intensity) and a
hue (colour) ranging from yellow over green, blue and red to almost black
is a good choice to depict the distance from the correct answers" and "the
main task ... is to find a path through colour space that maximizes the
number of JNDs".

:class:`VisDBColormap` implements that path; :class:`GrayscaleColormap` is
the ablation alternative the paper argues against (fewer JNDs);
:func:`jnd_count` estimates the number of just-noticeable differences along
a colormap using the CIE76 colour difference.
"""

from __future__ import annotations

import numpy as np

from repro.core.normalization import NORMALIZED_MAX

__all__ = ["VisDBColormap", "GrayscaleColormap", "jnd_count", "hsv_to_rgb", "srgb_to_lab"]


def hsv_to_rgb(hue: np.ndarray, saturation: np.ndarray, value: np.ndarray) -> np.ndarray:
    """Vectorised HSV -> RGB conversion (hue in degrees, s/v in [0, 1]).

    Returns floats in [0, 1] with shape ``hue.shape + (3,)``.
    """
    hue = np.asarray(hue, dtype=float) % 360.0
    saturation = np.clip(np.asarray(saturation, dtype=float), 0.0, 1.0)
    value = np.clip(np.asarray(value, dtype=float), 0.0, 1.0)
    sector = hue / 60.0
    i = np.floor(sector).astype(int) % 6
    f = sector - np.floor(sector)
    p = value * (1.0 - saturation)
    q = value * (1.0 - saturation * f)
    t = value * (1.0 - saturation * (1.0 - f))
    r = np.choose(i, [value, q, p, p, t, value])
    g = np.choose(i, [t, value, value, q, p, p])
    b = np.choose(i, [p, p, t, value, value, q])
    return np.stack([r, g, b], axis=-1)


class VisDBColormap:
    """The VisDB colour scale: distance 0 = bright yellow, max = almost black.

    The hue runs 60° (yellow) -> 120° (green) -> 240° (blue) -> 360°/0° (red)
    while the value (brightness) decreases towards almost black and the
    saturation stays roughly constant, following the paper's description.

    Parameters
    ----------
    target_max:
        The distance value mapped to the darkest colour (255 by default).
    saturation:
        Constant saturation of the colour path.
    min_value:
        Brightness at the far ("almost black") end.
    """

    #: Hue anchors (degrees) at fractions 0, 1/3, 2/3, 1 of the distance range.
    _HUE_ANCHORS = (60.0, 120.0, 240.0, 355.0)

    def __init__(self, target_max: float = NORMALIZED_MAX, saturation: float = 0.9,
                 min_value: float = 0.12):
        if target_max <= 0:
            raise ValueError("target_max must be positive")
        if not 0.0 <= saturation <= 1.0:
            raise ValueError("saturation must be in [0, 1]")
        if not 0.0 <= min_value < 1.0:
            raise ValueError("min_value must be in [0, 1)")
        self.target_max = float(target_max)
        self.saturation = float(saturation)
        self.min_value = float(min_value)

    def _hue(self, fraction: np.ndarray) -> np.ndarray:
        anchors = np.linspace(0.0, 1.0, len(self._HUE_ANCHORS))
        return np.interp(fraction, anchors, self._HUE_ANCHORS)

    def __call__(self, distances: np.ndarray) -> np.ndarray:
        """Map normalized distances to RGB uint8 colours.

        NaN distances (no data / undefined) render as black.
        """
        distances = np.asarray(distances, dtype=float)
        fraction = np.clip(distances / self.target_max, 0.0, 1.0)
        nan_mask = ~np.isfinite(fraction)
        fraction = np.where(nan_mask, 1.0, fraction)
        hue = self._hue(fraction)
        value = 1.0 - (1.0 - self.min_value) * fraction
        saturation = np.full_like(fraction, self.saturation)
        rgb = hsv_to_rgb(hue, saturation, value)
        rgb[nan_mask] = 0.0
        return (rgb * 255.0 + 0.5).astype(np.uint8)

    def exact_color(self) -> tuple[int, int, int]:
        """The colour of exactly fulfilling items (bright yellow)."""
        r, g, b = self(np.array([0.0]))[0]
        return int(r), int(g), int(b)

    def sample(self, steps: int = 256) -> np.ndarray:
        """Uniformly sampled colours along the whole scale (``steps`` x 3 uint8)."""
        if steps < 2:
            raise ValueError("steps must be at least 2")
        return self(np.linspace(0.0, self.target_max, steps))


class GrayscaleColormap:
    """Grey-scale alternative: bright (white) for exact answers, dark for distant ones.

    Used as the ablation baseline: "the advantage of colour over grey scales
    is that the number of just noticeable differences (JNDs) is much higher".
    """

    def __init__(self, target_max: float = NORMALIZED_MAX, min_value: float = 0.05):
        self.target_max = float(target_max)
        self.min_value = float(min_value)

    def __call__(self, distances: np.ndarray) -> np.ndarray:
        distances = np.asarray(distances, dtype=float)
        fraction = np.clip(distances / self.target_max, 0.0, 1.0)
        fraction = np.where(np.isfinite(fraction), fraction, 1.0)
        value = 1.0 - (1.0 - self.min_value) * fraction
        grey = (value * 255.0 + 0.5).astype(np.uint8)
        return np.stack([grey, grey, grey], axis=-1)

    def sample(self, steps: int = 256) -> np.ndarray:
        """Uniformly sampled colours along the whole scale."""
        return self(np.linspace(0.0, self.target_max, steps))


def srgb_to_lab(rgb: np.ndarray) -> np.ndarray:
    """Convert sRGB (uint8 or 0..1 float) to CIE L*a*b* (D65 white point)."""
    rgb = np.asarray(rgb, dtype=float)
    if rgb.max() > 1.0:
        rgb = rgb / 255.0
    # Linearise sRGB.
    linear = np.where(rgb <= 0.04045, rgb / 12.92, ((rgb + 0.055) / 1.055) ** 2.4)
    matrix = np.array(
        [
            [0.4124564, 0.3575761, 0.1804375],
            [0.2126729, 0.7151522, 0.0721750],
            [0.0193339, 0.1191920, 0.9503041],
        ]
    )
    xyz = linear @ matrix.T
    white = np.array([0.95047, 1.0, 1.08883])
    ratio = xyz / white
    epsilon, kappa = 0.008856, 903.3
    f = np.where(ratio > epsilon, np.cbrt(ratio), (kappa * ratio + 16.0) / 116.0)
    lightness = 116.0 * f[..., 1] - 16.0
    a = 500.0 * (f[..., 0] - f[..., 1])
    b = 200.0 * (f[..., 1] - f[..., 2])
    return np.stack([lightness, a, b], axis=-1)


def jnd_count(colormap, steps: int = 256, jnd_threshold: float = 2.3) -> float:
    """Estimate the number of just-noticeable differences along a colormap.

    The path length in CIE L*a*b* space (CIE76 ΔE summed over consecutive
    samples) divided by the ΔE that counts as one JND (≈2.3).  The VisDB
    colour path yields several times more JNDs than a grey ramp, which is
    the paper's argument for using colour.
    """
    samples = colormap.sample(steps).astype(float)
    lab = srgb_to_lab(samples)
    deltas = np.linalg.norm(np.diff(lab, axis=0), axis=1)
    return float(np.sum(deltas) / jnd_threshold)
