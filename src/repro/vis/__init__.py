"""Pixel-oriented visualization: colormaps, arrangements, windows and rendering.

This package turns a :class:`~repro.core.result.QueryFeedback` into the
pixel images of the paper:

* :mod:`~repro.vis.colormap` -- the VisDB colour scale (yellow over green,
  blue and red to almost black) and a greyscale alternative, plus a
  just-noticeable-difference estimate.
* :mod:`~repro.vis.spiral` -- rectangular spiral coordinates.
* :mod:`~repro.vis.arrangement` -- the normal (spiral) arrangement of
  Fig. 1a, position-preserving per-predicate windows, and the 2D
  arrangement of Fig. 1b for signed distances.
* :mod:`~repro.vis.window` / :mod:`~repro.vis.layout` -- single windows and
  the composed multi-window layout of Figs. 4/5.
* :mod:`~repro.vis.sliders` -- the query modification sliders with their
  colour spectra and value read-outs.
* :mod:`~repro.vis.render` -- PPM/PNG export (no external imaging library).
* :mod:`~repro.vis.ascii_art` -- terminal-friendly previews.
"""

from repro.vis.colormap import VisDBColormap, GrayscaleColormap, jnd_count
from repro.vis.spiral import rect_spiral_coords, spiral_positions
from repro.vis.window import VisualizationWindow
from repro.vis.arrangement import (
    spiral_arrangement,
    window_for_node,
    two_attribute_arrangement,
)
from repro.vis.layout import MultiWindowLayout
from repro.vis.sliders import Slider, sliders_for_feedback, OverallSpectrum
from repro.vis.render import write_ppm, write_png, upscale, save_window
from repro.vis.ascii_art import ascii_render, ascii_colorbar

__all__ = [
    "VisDBColormap",
    "GrayscaleColormap",
    "jnd_count",
    "rect_spiral_coords",
    "spiral_positions",
    "VisualizationWindow",
    "spiral_arrangement",
    "window_for_node",
    "two_attribute_arrangement",
    "MultiWindowLayout",
    "Slider",
    "sliders_for_feedback",
    "OverallSpectrum",
    "write_ppm",
    "write_png",
    "upscale",
    "save_window",
    "ascii_render",
    "ascii_colorbar",
]
