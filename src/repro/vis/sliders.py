"""Slider models for the query modification part of the VisDB window.

Every selection predicate has a slider whose colour spectrum "is just a
different arrangement of the coloured distances and corresponds to the
distribution of distances for the corresponding attribute".  Inside the
slider the lowest/highest *displayed* attribute values are shown; outside
it the database minimum/maximum; below it the number of results, the
selected tuple, the first/last value of a selected colour range, the query
range and the weighting factor.  :class:`Slider` captures all of that for
the scripted interaction layer and for rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.result import QueryFeedback
from repro.query.expr import NodePath, PredicateLeaf
from repro.query.predicates import AttributePredicate, RangePredicate

__all__ = ["Slider", "OverallSpectrum", "sliders_for_feedback"]


@dataclass
class Slider:
    """Query-modification slider for one selection predicate."""

    path: NodePath
    attribute: str
    label: str
    #: Minimum / maximum of the attribute over the whole database table.
    database_min: float
    database_max: float
    #: Lowest / highest attribute value among the *displayed* data items.
    displayed_min: float
    displayed_max: float
    #: Current query range (black lines in the slider); None for one-sided predicates.
    query_low: float | None
    query_high: float | None
    #: Weighting factor of the predicate.
    weight: float
    #: Number of data items exactly fulfilling the predicate.
    result_count: int
    #: Attribute values of the displayed items, sorted ascending.
    sorted_values: np.ndarray = field(repr=False)
    #: Normalized distances aligned with ``sorted_values``.
    sorted_distances: np.ndarray = field(repr=False)

    # ------------------------------------------------------------------ #
    def color_spectrum(self, length: int = 64) -> np.ndarray:
        """Normalized distances resampled to ``length`` buckets along the value axis.

        This is the colour spectrum drawn inside the slider: position along
        the slider corresponds to the attribute value, colour to the
        distance of the items with that value.
        """
        if length <= 0:
            raise ValueError("length must be positive")
        if len(self.sorted_values) == 0:
            return np.full(length, np.nan)
        positions = np.linspace(0, len(self.sorted_values) - 1, length).astype(int)
        return self.sorted_distances[positions]

    def first_last_of_color(self, distance_low: float, distance_high: float) -> tuple[float, float] | None:
        """Attribute values of the first/last displayed item within a colour range.

        The user "may choose a specific color or color range in any of the
        sliders to get the corresponding values of the attribute in the
        'first' and 'last of color' fields".  Returns None when no displayed
        item falls into the range.
        """
        if distance_low > distance_high:
            distance_low, distance_high = distance_high, distance_low
        mask = (self.sorted_distances >= distance_low) & (self.sorted_distances <= distance_high)
        if not np.any(mask):
            return None
        values = self.sorted_values[mask]
        return float(values[0]), float(values[-1])

    def items_of_color(self, distance_low: float, distance_high: float) -> np.ndarray:
        """Boolean mask (over the sorted displayed items) for a colour range."""
        if distance_low > distance_high:
            distance_low, distance_high = distance_high, distance_low
        return (self.sorted_distances >= distance_low) & (self.sorted_distances <= distance_high)

    def as_row(self) -> dict[str, Any]:
        """The slider's numeric read-outs as a flat dictionary (Fig. 4/5 rows)."""
        return {
            "attribute": self.attribute,
            "min": self.database_min,
            "max": self.database_max,
            "first": self.displayed_min,
            "last": self.displayed_max,
            "# of results": self.result_count,
            "query low": self.query_low,
            "query high": self.query_high,
            "weight": self.weight,
        }


@dataclass
class OverallSpectrum:
    """The colour spectrum and counters for the overall result (left of Fig. 4/5).

    The combined distance values "have no inherent meaning", so no attribute
    values are attached -- only the number of objects, the number displayed,
    the percentage and the number of results.
    """

    num_objects: int
    num_displayed: int
    percentage_displayed: float
    num_results: int
    sorted_distances: np.ndarray = field(repr=False)

    def color_spectrum(self, length: int = 64) -> np.ndarray:
        """Normalized combined distances resampled to ``length`` buckets."""
        if len(self.sorted_distances) == 0:
            return np.full(length, np.nan)
        positions = np.linspace(0, len(self.sorted_distances) - 1, length).astype(int)
        return self.sorted_distances[positions]


def _query_range(leaf: PredicateLeaf) -> tuple[float | None, float | None]:
    predicate = leaf.predicate
    if isinstance(predicate, RangePredicate):
        return predicate.low, predicate.high
    if isinstance(predicate, AttributePredicate):
        operator = predicate.operator.value
        if operator in (">", ">="):
            return predicate.value, None
        if operator in ("<", "<="):
            return None, predicate.value
        return predicate.value, predicate.value
    return None, None


def sliders_for_feedback(feedback: QueryFeedback,
                         paths: list[NodePath] | None = None) -> tuple[OverallSpectrum, list[Slider]]:
    """Build the overall spectrum plus one slider per predicate leaf.

    ``paths`` restricts the sliders to specific leaves (e.g. the children of
    the OR part in Fig. 5); by default every leaf of the query gets one.
    """
    table = feedback.table
    sliders: list[Slider] = []
    leaf_paths = paths
    if leaf_paths is None:
        leaf_paths = [p for p in feedback.paths if feedback.node_feedback[p].is_leaf]
    for path in leaf_paths:
        node = feedback.node_feedback[path]
        # Recover the predicate leaf to read its attribute / query range.
        attribute = None
        query_low = query_high = None
        leaf = feedback.extra.get("condition_nodes", {}).get(path)
        if isinstance(leaf, PredicateLeaf):
            attribute = getattr(leaf.predicate, "attribute", None)
            query_low, query_high = _query_range(leaf)
        if attribute is None:
            attribute = node.label.split(" ")[0]
        if not table.has_column(attribute) or not table.is_numeric(attribute):
            continue
        values = feedback.ordered_values(attribute).astype(float)
        distances = feedback.ordered_distances(path)
        order = np.argsort(values, kind="stable")
        stats = table.stats(attribute)
        sliders.append(
            Slider(
                path=path,
                attribute=attribute,
                label=node.label,
                database_min=float(stats.minimum),
                database_max=float(stats.maximum),
                displayed_min=float(values.min()) if len(values) else float("nan"),
                displayed_max=float(values.max()) if len(values) else float("nan"),
                query_low=query_low,
                query_high=query_high,
                weight=node.weight,
                result_count=node.result_count,
                sorted_values=values[order],
                sorted_distances=distances[order],
            )
        )
    overall = OverallSpectrum(
        num_objects=feedback.statistics.num_objects,
        num_displayed=feedback.statistics.num_displayed,
        percentage_displayed=feedback.statistics.percentage_displayed,
        num_results=feedback.statistics.num_results,
        sorted_distances=np.sort(feedback.ordered_distances(())),
    )
    return overall, sliders
