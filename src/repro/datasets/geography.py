"""Measurement-station locations for the environmental scenario."""

from __future__ import annotations

import numpy as np

from repro.storage.table import Table

__all__ = ["make_stations"]

_STATION_NAMES = (
    "Nord", "Sued", "Ost", "West", "Zentrum", "Hafen", "Flughafen", "Wald",
    "Industrie", "Vorstadt", "Altstadt", "Uferpark", "Messegelaende", "Uni",
    "Klinikum", "Stadion",
)


def make_stations(n_stations: int, seed: int = 0, region_size_m: float = 20_000.0,
                  table_name: str = "Locations") -> Table:
    """Generate measurement stations scattered over a square region.

    Columns: ``Location`` (integer id), ``Name``, ``X`` / ``Y`` (metres from
    the region origin) and ``Altitude`` (metres above sea level).  Station
    coordinates are drawn uniformly; altitudes follow a mild gradient plus
    noise so spatial predicates have some structure to find.
    """
    if n_stations < 1:
        raise ValueError("n_stations must be at least 1")
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, region_size_m, n_stations)
    y = rng.uniform(0.0, region_size_m, n_stations)
    altitude = 500.0 + 0.01 * x + rng.normal(0.0, 15.0, n_stations)
    names = [
        _STATION_NAMES[i % len(_STATION_NAMES)] + ("" if i < len(_STATION_NAMES) else f"-{i}")
        for i in range(n_stations)
    ]
    return Table(
        table_name,
        {
            "Location": np.arange(n_stations, dtype=float),
            "Name": names,
            "X": x,
            "Y": y,
            "Altitude": altitude,
        },
    )
