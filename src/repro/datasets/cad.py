"""Synthetic CAD parts database for the similarity-retrieval application.

Section 4.5: "In a CAD database of 3D-parts, it is not obvious how
similarity can be formally described.  Usually, there are quite many
parameters (in a concrete application in mechanical engineering we had 27
parameters) describing the parts ... the user might miss a part that
exactly fits in all except one parameter and just misses to fulfill the
allowance of that single parameter."

The generator produces parts drawn from a handful of design families (so
there *are* similar parts to find), plus explicit "near miss" parts that
match a chosen reference part within tolerance on all but exactly one
parameter -- the case where classical fixed-allowance queries fail and
approximate answers shine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.table import Table

__all__ = ["CadScenario", "cad_parts_table", "reference_part"]

#: Parameter names: a plausible mix of geometric and material properties.
PARAMETER_NAMES = tuple(f"P{i:02d}" for i in range(1, 28))


@dataclass
class CadScenario:
    """A generated CAD database plus the ground truth needed by benchmarks."""

    table: Table
    #: Row index of the reference part similarity queries are issued against.
    reference_index: int
    #: Row indices of parts matching the reference within tolerance on all parameters.
    exact_matches: np.ndarray
    #: Row indices of parts matching on all but exactly one parameter.
    near_misses: np.ndarray
    #: Per-parameter tolerance (allowance) used to define a "match".
    tolerances: np.ndarray = field(repr=False)


def cad_parts_table(n_parts: int = 5000, n_families: int = 12, n_near_misses: int = 25,
                    n_exact: int = 15, seed: int = 0,
                    tolerance_fraction: float = 0.05) -> CadScenario:
    """Generate the CAD parts table and its similarity ground truth.

    Parameters
    ----------
    n_parts:
        Total number of parts (rows).
    n_families:
        Number of design families (clusters) the bulk of the parts belong to.
    n_near_misses:
        Number of planted parts that fit the reference part in 26 of the 27
        parameters and miss the allowance on exactly one.
    n_exact:
        Number of planted parts fitting the reference in all parameters.
    tolerance_fraction:
        Allowance per parameter, as a fraction of that parameter's scale.
    """
    if n_parts < n_near_misses + n_exact + 1:
        raise ValueError("n_parts too small for the requested planted parts")
    rng = np.random.default_rng(seed)
    n_params = len(PARAMETER_NAMES)
    # Family prototypes live on different scales per parameter (mm, degrees, counts...).
    scales = rng.uniform(1.0, 200.0, n_params)
    prototypes = rng.uniform(0.2, 1.0, (n_families, n_params)) * scales[None, :]
    family_of_part = rng.integers(0, n_families, n_parts)
    values = prototypes[family_of_part] * rng.normal(1.0, 0.08, (n_parts, n_params))

    tolerances = tolerance_fraction * scales
    reference_index = 0
    reference_values = values[reference_index].copy()

    # Plant exact matches: within a third of the tolerance on every parameter.
    exact_rows = np.arange(1, 1 + n_exact)
    jitter = rng.uniform(-1.0, 1.0, (n_exact, n_params)) * (tolerances / 3.0)
    values[exact_rows] = reference_values[None, :] + jitter

    # Plant near misses: within tolerance everywhere except one parameter,
    # which misses the allowance by between 1.2x and 2.5x the tolerance.
    near_rows = np.arange(1 + n_exact, 1 + n_exact + n_near_misses)
    jitter = rng.uniform(-1.0, 1.0, (n_near_misses, n_params)) * (tolerances / 3.0)
    values[near_rows] = reference_values[None, :] + jitter
    miss_parameter = rng.integers(0, n_params, n_near_misses)
    miss_sign = rng.choice([-1.0, 1.0], n_near_misses)
    miss_amount = rng.uniform(1.2, 2.5, n_near_misses) * tolerances[miss_parameter]
    values[near_rows, miss_parameter] = (
        reference_values[miss_parameter] + miss_sign * miss_amount
    )

    columns = {"PartId": np.arange(n_parts, dtype=float)}
    for j, name in enumerate(PARAMETER_NAMES):
        columns[name] = values[:, j]
    table = Table("CadParts", columns)
    return CadScenario(
        table=table,
        reference_index=reference_index,
        exact_matches=exact_rows,
        near_misses=near_rows,
        tolerances=tolerances,
    )


def reference_part(scenario: CadScenario) -> dict[str, float]:
    """Parameter values of the scenario's reference part (the similarity query)."""
    row = scenario.table.row(scenario.reference_index)
    return {name: float(row[name]) for name in PARAMETER_NAMES}
