"""Generic random tables and distance distributions used by tests and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.table import Table

__all__ = ["uniform_table", "normal_table", "bimodal_distances", "planted_outliers", "OutlierScenario"]


def uniform_table(n_rows: int, columns: dict[str, tuple[float, float]], seed: int = 0,
                  name: str = "Uniform") -> Table:
    """A table whose columns are uniform over the given ``(low, high)`` ranges."""
    rng = np.random.default_rng(seed)
    data = {c: rng.uniform(low, high, n_rows) for c, (low, high) in columns.items()}
    return Table(name, data)


def normal_table(n_rows: int, columns: dict[str, tuple[float, float]], seed: int = 0,
                 name: str = "Normal") -> Table:
    """A table whose columns are normal with the given ``(mean, std)`` parameters."""
    rng = np.random.default_rng(seed)
    data = {c: rng.normal(mean, std, n_rows) for c, (mean, std) in columns.items()}
    return Table(name, data)


def bimodal_distances(n: int, gap: float = 50.0, seed: int = 0,
                      lower_fraction: float = 0.5) -> np.ndarray:
    """A bimodal distance sample like Fig. 2b: two groups separated by a gap.

    The lower group is centred near 5, the upper group near ``5 + gap``; the
    multi-peak reduction heuristic should cut between them.
    """
    if gap <= 0:
        raise ValueError("gap must be positive")
    rng = np.random.default_rng(seed)
    n_lower = int(round(lower_fraction * n))
    lower = np.abs(rng.normal(5.0, 2.0, n_lower))
    upper = np.abs(rng.normal(5.0 + gap, 2.0, n - n_lower))
    return np.concatenate([lower, upper])


@dataclass
class OutlierScenario:
    """A table with planted exceptional items and their row indices."""

    table: Table
    outlier_rows: np.ndarray


def planted_outliers(n_rows: int = 10_000, n_outliers: int = 5, n_columns: int = 4,
                     seed: int = 0, magnitude: float = 8.0) -> OutlierScenario:
    """Normal data with a handful of extreme rows (single exceptional data items).

    The outliers deviate by ``magnitude`` standard deviations in one randomly
    chosen column each -- exactly the "hot spots" the paper says statistical
    methods do not help to find.
    """
    if n_outliers >= n_rows:
        raise ValueError("n_outliers must be smaller than n_rows")
    rng = np.random.default_rng(seed)
    data = rng.normal(0.0, 1.0, (n_rows, n_columns))
    outlier_rows = rng.choice(n_rows, size=n_outliers, replace=False)
    outlier_columns = rng.integers(0, n_columns, n_outliers)
    signs = rng.choice([-1.0, 1.0], n_outliers)
    data[outlier_rows, outlier_columns] += signs * magnitude
    columns = {f"A{j}": data[:, j] for j in range(n_columns)}
    table = Table("Planted", columns)
    return OutlierScenario(table=table, outlier_rows=np.sort(outlier_rows))
