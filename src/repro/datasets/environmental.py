"""Synthetic environmental-monitoring data (weather + air pollution).

The paper's running example: "researchers want to find correlations between
local weather parameters such as temperature, humidity, direction and speed
of the wind, solar radiation, precipitation and the air pollution by CO,
SO2, NO2, ozone, etc.", with measurements recorded hourly at multiple
stations, and in particular "a time-lagged increase of temperature and
ozone" and "single exceptional values" that are hard to find with
traditional methods.

The generators below produce exactly that structure deterministically:

* diurnal and seasonal cycles for temperature and solar radiation,
* humidity anti-correlated with temperature,
* ozone driven by solar radiation and temperature **lagged by a
  configurable number of minutes** (120 by default -- the 2-hour hypothesis
  of the example query),
* traffic-driven CO/NO2 with rush-hour peaks, SO2 with an industrial
  weekday pattern,
* a configurable rate of planted exceptional values (hot spots) whose row
  indices are reported so benchmarks can measure whether they are found,
* optionally *offset* sampling grids and station coordinates for the air
  pollution series, which is what makes exact joins fail and approximate
  joins necessary (section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.geography import make_stations
from repro.query.joins import Connection, JoinKind
from repro.storage.database import Database
from repro.storage.table import Table

__all__ = [
    "WeatherSpec",
    "generate_weather",
    "generate_air_pollution",
    "environmental_database",
    "paper_scale_database",
]

MINUTES_PER_HOUR = 60
MINUTES_PER_DAY = 24 * MINUTES_PER_HOUR


@dataclass(frozen=True)
class WeatherSpec:
    """Parameters of the synthetic weather/pollution generator."""

    hours: int = 2000
    stations: int = 4
    sample_minutes: int = 60
    ozone_lag_minutes: float = 120.0
    hotspot_rate: float = 0.001
    seed: int = 0


def _time_grid(hours: int, sample_minutes: int, offset_minutes: float = 0.0) -> np.ndarray:
    steps = int(hours * MINUTES_PER_HOUR / sample_minutes)
    return offset_minutes + np.arange(steps, dtype=float) * sample_minutes


def _diurnal(minutes: np.ndarray, peak_minute: float = 14 * 60) -> np.ndarray:
    """Smooth diurnal factor in [0, 1] peaking at ``peak_minute`` of the day."""
    phase = 2.0 * np.pi * (minutes - peak_minute) / MINUTES_PER_DAY
    return 0.5 * (1.0 + np.cos(phase))


def _seasonal(minutes: np.ndarray, year_days: float = 365.0) -> np.ndarray:
    phase = 2.0 * np.pi * minutes / (year_days * MINUTES_PER_DAY)
    return 0.5 * (1.0 - np.cos(phase))


def generate_weather(spec: WeatherSpec = WeatherSpec(), stations_table: Table | None = None
                     ) -> tuple[Table, dict]:
    """Generate the ``Weather`` table.

    Returns the table and a metadata dictionary with the planted hot-spot
    row indices (``"hotspots"``) and the per-station base offsets.
    """
    rng = np.random.default_rng(spec.seed)
    stations = stations_table if stations_table is not None else make_stations(
        spec.stations, seed=spec.seed
    )
    n_stations = len(stations)
    minutes = _time_grid(spec.hours, spec.sample_minutes)
    station_offsets = rng.normal(0.0, 1.5, n_stations)

    rows_time = np.tile(minutes, n_stations)
    rows_station = np.repeat(np.arange(n_stations, dtype=float), len(minutes))
    offsets = np.repeat(station_offsets, len(minutes))

    diurnal = _diurnal(rows_time)
    seasonal = _seasonal(rows_time)
    temperature = (
        2.0 + 18.0 * seasonal + 10.0 * diurnal + offsets + rng.normal(0.0, 1.2, len(rows_time))
    )
    solar = np.clip(
        900.0 * diurnal * (0.6 + 0.4 * seasonal) + rng.normal(0.0, 40.0, len(rows_time)),
        0.0,
        None,
    )
    humidity = np.clip(95.0 - 1.8 * (temperature - 5.0) + rng.normal(0.0, 6.0, len(rows_time)), 5.0, 100.0)
    wind_speed = np.clip(rng.gamma(2.0, 2.0, len(rows_time)), 0.0, None)
    wind_direction = rng.uniform(0.0, 360.0, len(rows_time))
    precipitation = np.where(
        rng.uniform(size=len(rows_time)) < 0.12,
        rng.gamma(1.5, 1.2, len(rows_time)) * (1.2 - diurnal),
        0.0,
    )

    # Planted exceptional values: a handful of rows get physically implausible
    # spikes.  These are the "hot spots" a data mining tool should surface.
    n_hotspots = int(round(spec.hotspot_rate * len(rows_time)))
    hotspot_rows = rng.choice(len(rows_time), size=n_hotspots, replace=False) if n_hotspots else np.array([], dtype=int)
    temperature[hotspot_rows] += rng.uniform(15.0, 25.0, n_hotspots)
    humidity[hotspot_rows] = np.clip(humidity[hotspot_rows] - 40.0, 1.0, 100.0)

    table = Table(
        "Weather",
        {
            "DateTime": rows_time,
            "Location": rows_station,
            "Temperature": temperature,
            "Humidity": humidity,
            "Solar-Radiation": solar,
            "Wind-Speed": wind_speed,
            "Wind-Direction": wind_direction,
            "Precipitation": precipitation,
        },
    )
    metadata = {
        "hotspots": np.sort(hotspot_rows),
        "station_offsets": station_offsets,
        "spec": spec,
    }
    return table, metadata


def generate_air_pollution(spec: WeatherSpec = WeatherSpec(), weather: Table | None = None,
                           time_offset_minutes: float = 0.0,
                           sample_minutes: int | None = None) -> tuple[Table, dict]:
    """Generate the ``Air-Pollution`` table, correlated with the weather.

    Ozone follows solar radiation and temperature **lagged by
    ``spec.ozone_lag_minutes``**; CO and NO2 follow a traffic (rush hour)
    pattern; SO2 has an industrial weekday component.  ``time_offset_minutes``
    and ``sample_minutes`` let the pollution series live on a different
    sampling grid than the weather series, which is the situation where
    equality joins on time fail and approximate joins are needed.
    """
    rng = np.random.default_rng(spec.seed + 1)
    sample = sample_minutes if sample_minutes is not None else spec.sample_minutes
    minutes = _time_grid(spec.hours, sample, offset_minutes=time_offset_minutes)
    n_stations = spec.stations
    rows_time = np.tile(minutes, n_stations)
    rows_station = np.repeat(np.arange(n_stations, dtype=float), len(minutes))

    lagged = rows_time - spec.ozone_lag_minutes
    lag_diurnal = _diurnal(lagged)
    lag_seasonal = _seasonal(lagged)
    lag_temperature = 2.0 + 18.0 * lag_seasonal + 10.0 * lag_diurnal
    lag_solar = 900.0 * lag_diurnal * (0.6 + 0.4 * lag_seasonal)
    ozone = np.clip(
        10.0 + 0.055 * lag_solar + 0.9 * np.maximum(lag_temperature - 10.0, 0.0)
        + rng.normal(0.0, 4.0, len(rows_time)),
        0.0,
        None,
    )

    time_of_day = rows_time % MINUTES_PER_DAY
    rush = np.exp(-((time_of_day - 8 * 60) ** 2) / (2 * 90.0 ** 2)) + np.exp(
        -((time_of_day - 18 * 60) ** 2) / (2 * 120.0 ** 2)
    )
    weekday = ((rows_time // MINUTES_PER_DAY) % 7) < 5
    co = np.clip(0.3 + 1.8 * rush + rng.normal(0.0, 0.15, len(rows_time)), 0.0, None)
    no2 = np.clip(12.0 + 55.0 * rush + rng.normal(0.0, 5.0, len(rows_time)), 0.0, None)
    so2 = np.clip(
        4.0 + 10.0 * weekday * _diurnal(rows_time, peak_minute=11 * 60)
        + rng.normal(0.0, 1.5, len(rows_time)),
        0.0,
        None,
    )
    dust = np.clip(20.0 + 30.0 * rush + rng.normal(0.0, 8.0, len(rows_time)), 0.0, None)

    n_hotspots = int(round(spec.hotspot_rate * len(rows_time)))
    hotspot_rows = rng.choice(len(rows_time), size=n_hotspots, replace=False) if n_hotspots else np.array([], dtype=int)
    ozone[hotspot_rows] += rng.uniform(80.0, 150.0, n_hotspots)

    table = Table(
        "Air-Pollution",
        {
            "DateTime": rows_time,
            "Location": rows_station,
            "CO": co,
            "SO2": so2,
            "NO2": no2,
            "Ozone": ozone,
            "Dust": dust,
        },
    )
    metadata = {"hotspots": np.sort(hotspot_rows), "lag_minutes": spec.ozone_lag_minutes}
    return table, metadata


def environmental_database(hours: int = 2000, stations: int = 4, seed: int = 0,
                           sample_minutes: int = 60, ozone_lag_minutes: float = 120.0,
                           hotspot_rate: float = 0.001,
                           pollution_time_offset: float = 0.0,
                           pollution_sample_minutes: int | None = None) -> Database:
    """Build the complete environmental database with its declared connections.

    Tables: ``Weather``, ``Air-Pollution`` and ``Locations``.  Connections
    (the designer-declared joins of the Fig. 3 Connections window):

    * ``Air-Pollution at-same-location Weather`` -- equi join on ``Location``.
    * ``Air-Pollution at-same-time-as Weather`` -- equi join on ``DateTime``.
    * ``Air-Pollution with-time-diff(min) Weather`` -- parameterised time difference.
    * ``Air-Pollution over Limits`` is represented by predicates instead of a
      dedicated table (limits are plain constants).

    The hot-spot metadata is attached to ``database.metadata``.
    """
    spec = WeatherSpec(
        hours=hours,
        stations=stations,
        sample_minutes=sample_minutes,
        ozone_lag_minutes=ozone_lag_minutes,
        hotspot_rate=hotspot_rate,
        seed=seed,
    )
    stations_table = make_stations(stations, seed=seed)
    weather, weather_meta = generate_weather(spec, stations_table)
    pollution, pollution_meta = generate_air_pollution(
        spec,
        weather,
        time_offset_minutes=pollution_time_offset,
        sample_minutes=pollution_sample_minutes,
    )
    database = Database("environment", [weather, pollution, stations_table])
    database.register_connection(
        Connection("at-same-location", "Air-Pollution", "Weather", "Location", "Location",
                   JoinKind.EQUI)
    )
    database.register_connection(
        Connection("at-same-time-as", "Air-Pollution", "Weather", "DateTime", "DateTime",
                   JoinKind.EQUI)
    )
    database.register_connection(
        Connection("with-time-diff", "Air-Pollution", "Weather", "DateTime", "DateTime",
                   JoinKind.TIME_DIFF)
    )
    database.register_connection(
        Connection("at-same-location", "Air-Pollution", "Locations", "Location", "Location",
                   JoinKind.EQUI)
    )
    # Attach generator metadata for benchmarks (not part of the schema).
    database.metadata = {  # type: ignore[attr-defined]
        "weather_hotspots": weather_meta["hotspots"],
        "pollution_hotspots": pollution_meta["hotspots"],
        "ozone_lag_minutes": ozone_lag_minutes,
        "spec": spec,
    }
    return database


def paper_scale_database(seed: int = 0) -> Database:
    """The Fig. 4 scale: 68,376 weather data items (8,547 hours x 8 stations).

    Fig. 4 reports ``# objects = 68,376`` and ``# displayed = 27,224``
    (40 %); using this database with ``percentage=0.4`` reproduces those
    counters up to rounding.
    """
    return environmental_database(hours=8547, stations=8, seed=seed)
