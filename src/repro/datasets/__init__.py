"""Synthetic datasets standing in for the paper's real-world databases.

The paper's examples use an environmental-monitoring database (weather and
air-pollution measurement series, about 68k data items in Fig. 4), a large
geographical database, a CAD database of 3D parts with 27 describing
parameters, and pairs of independent databases to be joined approximately.
None of those datasets are available, so this package generates synthetic
equivalents that preserve the properties the paper's figures depend on:
diurnal structure, the time-lagged temperature/ozone correlation, planted
exceptional values (hot spots), near-miss similar parts and fuzzy
correspondences between independent databases.
"""

from repro.datasets.environmental import (
    generate_weather,
    generate_air_pollution,
    environmental_database,
    paper_scale_database,
)
from repro.datasets.geography import make_stations
from repro.datasets.cad import cad_parts_table, reference_part, CadScenario
from repro.datasets.multidb import correspondence_databases
from repro.datasets.random_data import (
    uniform_table,
    normal_table,
    bimodal_distances,
    planted_outliers,
)

__all__ = [
    "generate_weather",
    "generate_air_pollution",
    "environmental_database",
    "paper_scale_database",
    "make_stations",
    "cad_parts_table",
    "reference_part",
    "CadScenario",
    "correspondence_databases",
    "uniform_table",
    "normal_table",
    "bimodal_distances",
    "planted_outliers",
]
