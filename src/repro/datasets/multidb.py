"""Two independent databases with fuzzy correspondences.

Section 4.5: "Another example for an interesting application of our system
are multi-database systems where it is often a problem to find
corresponding data items in multiple independent databases.  If a distance
function for the two attributes to be joined can be defined, our system
will help the user to identify closely related data items of the two
databases and to find adequate parameters for approximately joining the
databases."

The generator creates two station registries describing (partly) the same
physical stations: registry B uses different ids, slightly offset
coordinates and misspelled names, so an exact join finds (almost) nothing
while approximate joins on coordinates or names recover the true pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.database import Database
from repro.storage.table import Table

__all__ = ["CorrespondenceScenario", "correspondence_databases"]

_BASE_NAMES = (
    "Hauptbahnhof", "Marienplatz", "Sendlinger Tor", "Olympiazentrum", "Garching",
    "Pasing", "Moosach", "Giesing", "Laim", "Neuperlach", "Freimann", "Solln",
    "Obermenzing", "Trudering", "Aubing", "Feldmoching", "Ramersdorf", "Bogenhausen",
)


def _misspell(name: str, rng: np.random.Generator) -> str:
    """Introduce a small typo (swap, drop or duplicate one character)."""
    if len(name) < 4:
        return name
    kind = rng.integers(0, 3)
    position = int(rng.integers(1, len(name) - 1))
    if kind == 0:  # swap two adjacent characters
        chars = list(name)
        chars[position], chars[position - 1] = chars[position - 1], chars[position]
        return "".join(chars)
    if kind == 1:  # drop a character
        return name[:position] + name[position + 1:]
    return name[:position] + name[position] + name[position:]  # duplicate


@dataclass
class CorrespondenceScenario:
    """Two registries plus the ground-truth correspondence pairs."""

    database: Database
    #: Array of (row in RegistryA, row in RegistryB) true correspondences.
    true_pairs: np.ndarray
    #: Coordinate offset (metres) applied to registry B.
    coordinate_offset_m: float


def correspondence_databases(n_stations: int = 60, overlap_fraction: float = 0.7,
                             coordinate_offset_m: float = 35.0, seed: int = 0) -> CorrespondenceScenario:
    """Generate two registries of measurement stations with fuzzy overlap.

    ``overlap_fraction`` of registry A's stations also appear in registry B
    (with new ids, offset coordinates and typo'd names); the remaining B
    entries are unrelated stations.
    """
    if not 0.0 < overlap_fraction <= 1.0:
        raise ValueError("overlap_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    names_a = [
        _BASE_NAMES[i % len(_BASE_NAMES)] + ("" if i < len(_BASE_NAMES) else f" {i}")
        for i in range(n_stations)
    ]
    x_a = rng.uniform(0.0, 30_000.0, n_stations)
    y_a = rng.uniform(0.0, 30_000.0, n_stations)
    registry_a = Table(
        "RegistryA",
        {
            "StationId": np.arange(n_stations, dtype=float),
            "Name": names_a,
            "X": x_a,
            "Y": y_a,
        },
    )

    n_overlap = int(round(overlap_fraction * n_stations))
    overlap_rows = rng.choice(n_stations, size=n_overlap, replace=False)
    n_extra = n_stations - n_overlap
    names_b: list[str] = []
    x_b = np.empty(n_overlap + n_extra)
    y_b = np.empty(n_overlap + n_extra)
    for position, row in enumerate(overlap_rows):
        names_b.append(_misspell(names_a[row], rng))
        angle = rng.uniform(0.0, 2.0 * np.pi)
        x_b[position] = x_a[row] + coordinate_offset_m * np.cos(angle)
        y_b[position] = y_a[row] + coordinate_offset_m * np.sin(angle)
    for position in range(n_overlap, n_overlap + n_extra):
        names_b.append(f"Station-{position + 1000}")
        x_b[position] = rng.uniform(0.0, 30_000.0)
        y_b[position] = rng.uniform(0.0, 30_000.0)
    registry_b = Table(
        "RegistryB",
        {
            "Code": 1000.0 + np.arange(n_overlap + n_extra, dtype=float),
            "Name": names_b,
            "X": x_b,
            "Y": y_b,
        },
    )
    database = Database("correspondence", [registry_a, registry_b])
    true_pairs = np.stack([overlap_rows, np.arange(n_overlap)], axis=1)
    return CorrespondenceScenario(
        database=database,
        true_pairs=true_pairs,
        coordinate_offset_m=coordinate_offset_m,
    )
