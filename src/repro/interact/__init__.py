"""Interactive query modification (scripted, headless).

The VisDB loop is: run the query, look at the visual feedback, drag a
slider / change a weighting factor / select a colour range, and get new
feedback immediately.  This package provides that loop without a GUI:

* :mod:`~repro.interact.events` -- the modification events a user can issue
  (query range changes, weight changes, percentage changes, tuple and
  colour-range selections, drill-downs into subparts, ...).
* :class:`~repro.interact.session.VisDBSession` -- holds the current query,
  applies events, re-executes the pipeline (immediately in "auto
  recalculate" mode or on demand otherwise) and exposes windows/sliders.
* :mod:`~repro.interact.selection` -- colour-range projection and
  cross-window highlighting.
* :mod:`~repro.interact.history` -- undo/redo over query states.
"""

from repro.interact.events import (
    SetQueryRange,
    SetThreshold,
    SetWeight,
    SetPercentageDisplayed,
    SelectTuple,
    SelectColorRange,
    ClearSelection,
    ToggleAutoRecalculate,
    DrillDown,
    SessionEvent,
)
from repro.interact.session import VisDBSession
from repro.interact.selection import items_in_color_range, highlight_positions
from repro.interact.history import QueryHistory

__all__ = [
    "SessionEvent",
    "SetQueryRange",
    "SetThreshold",
    "SetWeight",
    "SetPercentageDisplayed",
    "SelectTuple",
    "SelectColorRange",
    "ClearSelection",
    "ToggleAutoRecalculate",
    "DrillDown",
    "VisDBSession",
    "items_in_color_range",
    "highlight_positions",
    "QueryHistory",
]
