"""Selections: colour-range projection and cross-window highlighting."""

from __future__ import annotations

import numpy as np

from repro.core.result import QueryFeedback
from repro.query.expr import NodePath
from repro.vis.window import VisualizationWindow

__all__ = ["items_in_color_range", "highlight_positions", "selected_tuple_values"]


def items_in_color_range(feedback: QueryFeedback, path: NodePath,
                         distance_low: float, distance_high: float) -> np.ndarray:
    """Table row indices of displayed items whose distance for ``path`` is in range.

    This implements "to focus on sets of data items with a specific color,
    it is possible to select some color range in one of the sliders to get
    only those data items displayed that have the selected color for the
    considered attribute".
    """
    if distance_low > distance_high:
        distance_low, distance_high = distance_high, distance_low
    distances = feedback.ordered_distances(path)
    mask = (distances >= distance_low) & (distances <= distance_high)
    return feedback.display_order[mask]


def highlight_positions(windows: dict[NodePath, VisualizationWindow],
                        item_ids: np.ndarray) -> dict[NodePath, list[tuple[int, int]]]:
    """Pixel positions of the given items in every window.

    Because all windows share the same item placement, the selected items
    appear at identical positions; this helper returns them explicitly so a
    front-end (or a test) can verify the correspondence.
    """
    item_ids = np.asarray(item_ids)
    positions: dict[NodePath, list[tuple[int, int]]] = {}
    for path, window in windows.items():
        found: list[tuple[int, int]] = []
        for item in item_ids:
            position = window.position_of_item(int(item))
            if position is not None:
                found.append(position)
        positions[path] = found
    return positions


def selected_tuple_values(feedback: QueryFeedback, rank: int,
                          attributes: list[str] | None = None) -> dict[str, object]:
    """Attribute values of the item at ``rank`` (the "selected tuple" row)."""
    values = feedback.selected_tuple(rank)
    if attributes is None:
        return values
    return {a: values[a] for a in attributes if a in values}
