"""Undo/redo history over query condition states."""

from __future__ import annotations

import copy

from repro.query.expr import QueryNode

__all__ = ["QueryHistory"]


class QueryHistory:
    """A bounded undo/redo stack of query condition snapshots.

    Every modification of the query pushes a deep copy of the condition
    tree; :meth:`undo` and :meth:`redo` walk the stack.  This supports the
    exploratory usage pattern of VisDB where the user tries many slight
    variations of a query and wants to return to an earlier one.
    """

    def __init__(self, initial: QueryNode, max_depth: int = 100):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self._past: list[QueryNode] = []
        self._future: list[QueryNode] = []
        self._present = copy.deepcopy(initial)
        self.max_depth = max_depth

    @property
    def present(self) -> QueryNode:
        """The current condition snapshot (a private deep copy)."""
        return self._present

    def push(self, condition: QueryNode) -> None:
        """Record a new state; clears the redo stack."""
        self._past.append(self._present)
        if len(self._past) > self.max_depth:
            self._past.pop(0)
        self._present = copy.deepcopy(condition)
        self._future.clear()

    def undo(self) -> QueryNode:
        """Return to the previous state (raises if there is none)."""
        if not self._past:
            raise IndexError("nothing to undo")
        self._future.append(self._present)
        self._present = self._past.pop()
        return self._present

    def redo(self) -> QueryNode:
        """Re-apply the most recently undone state (raises if there is none)."""
        if not self._future:
            raise IndexError("nothing to redo")
        self._past.append(self._present)
        self._present = self._future.pop()
        return self._present

    @property
    def can_undo(self) -> bool:
        """True if :meth:`undo` would succeed."""
        return bool(self._past)

    @property
    def can_redo(self) -> bool:
        """True if :meth:`redo` would succeed."""
        return bool(self._future)

    def __len__(self) -> int:
        return len(self._past) + 1 + len(self._future)
