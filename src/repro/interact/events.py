"""Modification events of the interactive session.

Each event corresponds to one of the interactions described in section 4.3:
moving a slider (changing the query range of a predicate), changing a
weighting factor, changing the percentage of data displayed, selecting a
tuple or a colour range, switching auto-recalculation on or off, and
double-clicking an operator box to drill down into a query subpart.

Every event also names the interactive *control* it came from via
:meth:`SessionEvent.coalesce_key`: two events with the same key are
successive states of one control (the two ends of one range slider, one
weighting factor, the percentage dial), so in a feedback loop only the
latest of them matters.  The multi-session service uses these keys to
collapse slider-drag bursts to their newest value before execution --
see :mod:`repro.service.coalesce`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.expr import NodePath

__all__ = [
    "SessionEvent",
    "SetQueryRange",
    "SetThreshold",
    "SetWeight",
    "SetPercentageDisplayed",
    "SelectTuple",
    "SelectColorRange",
    "ClearSelection",
    "ToggleAutoRecalculate",
    "DrillDown",
]


class SessionEvent:
    """Marker base class for all session events."""

    def coalesce_key(self) -> tuple:
        """Identity of the control this event is a state of.

        Events with equal keys supersede each other (latest wins) when the
        consumer only needs the newest state -- the paper's feedback
        semantics, where intermediate slider positions of one drag are
        never displayed.  The default is one slot per event type; events
        bound to a query-tree node refine it with their path.
        """
        return (type(self).__name__,)


@dataclass(frozen=True)
class SetQueryRange(SessionEvent):
    """Move both ends of a range slider: ``low <= attribute <= high``."""

    path: NodePath
    low: float
    high: float

    def coalesce_key(self) -> tuple:
        # Range moves and threshold moves on the same leaf share one slot:
        # both replace the leaf's predicate state wholesale, so the latest
        # of either kind fully determines it.
        return ("predicate", tuple(self.path))


@dataclass(frozen=True)
class SetThreshold(SessionEvent):
    """Change the threshold of a one-sided comparison predicate."""

    path: NodePath
    value: float

    def coalesce_key(self) -> tuple:
        return ("predicate", tuple(self.path))


@dataclass(frozen=True)
class SetWeight(SessionEvent):
    """Change the weighting factor of the query part at ``path``."""

    path: NodePath
    weight: float

    def coalesce_key(self) -> tuple:
        return ("weight", tuple(self.path))


@dataclass(frozen=True)
class SetPercentageDisplayed(SessionEvent):
    """Change the percentage of the data being displayed (0 < value <= 1)."""

    percentage: float


@dataclass(frozen=True)
class SelectTuple(SessionEvent):
    """Select the data item at a display rank to highlight it in every window."""

    rank: int

    def coalesce_key(self) -> tuple:
        # All selection events share one slot: a later colour-range pick or
        # a ClearSelection replaces an earlier tuple pick entirely.
        return ("selection",)


@dataclass(frozen=True)
class SelectColorRange(SessionEvent):
    """Select a colour (normalized distance) range in one window's slider.

    Only the data items whose distance for ``path`` lies inside the range
    stay highlighted/displayed in all other windows -- the "projection of
    the visual representation to specific color ranges".
    """

    path: NodePath
    distance_low: float
    distance_high: float

    def coalesce_key(self) -> tuple:
        return ("selection",)


@dataclass(frozen=True)
class ClearSelection(SessionEvent):
    """Clear any tuple or colour-range selection."""

    def coalesce_key(self) -> tuple:
        return ("selection",)


@dataclass(frozen=True)
class ToggleAutoRecalculate(SessionEvent):
    """Switch between immediate recalculation and recalculation on demand."""

    enabled: bool


@dataclass(frozen=True)
class DrillDown(SessionEvent):
    """Open the visualization of an inner operator box (double click in Fig. 5)."""

    path: NodePath

    def coalesce_key(self) -> tuple:
        return ("drill-down", tuple(self.path))
