"""Modification events of the interactive session.

Each event corresponds to one of the interactions described in section 4.3:
moving a slider (changing the query range of a predicate), changing a
weighting factor, changing the percentage of data displayed, selecting a
tuple or a colour range, switching auto-recalculation on or off, and
double-clicking an operator box to drill down into a query subpart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.expr import NodePath

__all__ = [
    "SessionEvent",
    "SetQueryRange",
    "SetThreshold",
    "SetWeight",
    "SetPercentageDisplayed",
    "SelectTuple",
    "SelectColorRange",
    "ClearSelection",
    "ToggleAutoRecalculate",
    "DrillDown",
]


class SessionEvent:
    """Marker base class for all session events."""


@dataclass(frozen=True)
class SetQueryRange(SessionEvent):
    """Move both ends of a range slider: ``low <= attribute <= high``."""

    path: NodePath
    low: float
    high: float


@dataclass(frozen=True)
class SetThreshold(SessionEvent):
    """Change the threshold of a one-sided comparison predicate."""

    path: NodePath
    value: float


@dataclass(frozen=True)
class SetWeight(SessionEvent):
    """Change the weighting factor of the query part at ``path``."""

    path: NodePath
    weight: float


@dataclass(frozen=True)
class SetPercentageDisplayed(SessionEvent):
    """Change the percentage of the data being displayed (0 < value <= 1)."""

    percentage: float


@dataclass(frozen=True)
class SelectTuple(SessionEvent):
    """Select the data item at a display rank to highlight it in every window."""

    rank: int


@dataclass(frozen=True)
class SelectColorRange(SessionEvent):
    """Select a colour (normalized distance) range in one window's slider.

    Only the data items whose distance for ``path`` lies inside the range
    stay highlighted/displayed in all other windows -- the "projection of
    the visual representation to specific color ranges".
    """

    path: NodePath
    distance_low: float
    distance_high: float


@dataclass(frozen=True)
class ClearSelection(SessionEvent):
    """Clear any tuple or colour-range selection."""


@dataclass(frozen=True)
class ToggleAutoRecalculate(SessionEvent):
    """Switch between immediate recalculation and recalculation on demand."""

    enabled: bool


@dataclass(frozen=True)
class DrillDown(SessionEvent):
    """Open the visualization of an inner operator box (double click in Fig. 5)."""

    path: NodePath
