"""The interactive VisDB session: apply modifications, get new feedback.

:class:`VisDBSession` is the headless counterpart of the "Visualization and
Query Modification" window: it owns the current query, applies modification
events (slider moves, weight changes, percentage changes, selections) and
hands out visualization windows and sliders.

The session runs on a :class:`~repro.core.engine.QueryEngine`: the query is
prepared once and every event translates into a dirty-path modification of
the prepared plan, so a recalculation recomputes only the subtrees the event
invalidated (a slider move re-evaluates one leaf, a weight change only
re-normalizes along the changed path, a percentage change redoes reduction
and normalization).  Recalculation happens immediately when
auto-recalculation is on, lazily otherwise ("auto recalculate off" for
large databases).
"""

from __future__ import annotations

import copy
from typing import Mapping

import numpy as np

from repro.core.engine import PipelineConfig, PreparedQuery, QueryEngine
from repro.core.result import QueryFeedback
from repro.interact.events import (
    ClearSelection,
    DrillDown,
    SelectColorRange,
    SelectTuple,
    SessionEvent,
    SetPercentageDisplayed,
    SetQueryRange,
    SetThreshold,
    SetWeight,
    ToggleAutoRecalculate,
)
from repro.interact.history import QueryHistory
from repro.interact.selection import items_in_color_range
from repro.query.builder import Query
from repro.query.expr import NodePath, QueryNode
from repro.storage.database import Database
from repro.storage.table import Table
from repro.vis.layout import MultiWindowLayout
from repro.vis.sliders import OverallSpectrum, Slider, sliders_for_feedback
from repro.vis.window import VisualizationWindow

__all__ = ["VisDBSession"]

#: Events that modify the prepared query (condition tree or display config).
_QUERY_EVENTS = (SetQueryRange, SetThreshold, SetWeight, SetPercentageDisplayed)


class VisDBSession:
    """A scripted interactive session over one query.

    Parameters
    ----------
    source:
        Database or table queried against.
    query:
        Initial query (anything :class:`QueryEngine` accepts).
    config:
        Pipeline configuration.
    layout:
        Multi-window layout used for rendering (small windows by default).
    auto_recalculate:
        If True (the paper's "normal mode") every modification triggers a
        re-execution; otherwise :meth:`recalculate` must be called
        explicitly ("auto recalculate off" for large databases).
    engine:
        Optional pre-existing :class:`QueryEngine` to attach to instead of
        creating a private one.  Embedding servers pass their shared engine
        here so that sessions over the same data reuse one set of
        cross-product tables, distance caches and prefetch regions.
    """

    def __init__(self, source: Database | Table, query, config: PipelineConfig | None = None,
                 layout: MultiWindowLayout | None = None, auto_recalculate: bool = True,
                 engine: QueryEngine | None = None):
        if engine is not None and config is not None:
            raise ValueError(
                "pass either a shared engine (whose config the session adopts) "
                "or a config for a private engine, not both"
            )
        self.engine = engine if engine is not None else QueryEngine(source, config)
        self._prepared: PreparedQuery = self.engine.prepare(query)
        self.source = source
        self.layout = layout or MultiWindowLayout()
        self.auto_recalculate = auto_recalculate
        self._dirty = True
        self._feedback: QueryFeedback | None = None
        self.selection: np.ndarray | None = None
        if self.query.condition is None:
            raise ValueError("the query needs a condition to start a VisDB session")
        self.history = QueryHistory(self.query.condition)
        self.recalculations = 0
        if auto_recalculate:
            self.recalculate()

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def prepared(self) -> PreparedQuery:
        """The underlying prepared query (engine-side state of this session)."""
        return self._prepared

    @property
    def query(self) -> Query:
        """The current query (its condition tree is mutated by events)."""
        return self._prepared.query

    @property
    def condition(self) -> QueryNode:
        """The user-level condition tree."""
        return self.query.condition

    @property
    def feedback(self) -> QueryFeedback:
        """The latest feedback.

        With auto-recalculation on, a dirty state triggers a recalculation.
        With auto-recalculation off the property is lazy: it returns the
        last computed (possibly stale) feedback, and raises ``RuntimeError``
        if no feedback has been computed yet -- call :meth:`recalculate`.
        """
        if self._feedback is None:
            if self.auto_recalculate:
                return self.recalculate()
            raise RuntimeError("no feedback available; call recalculate() first")
        if self._dirty and self.auto_recalculate:
            return self.recalculate()
        return self._feedback

    @property
    def is_dirty(self) -> bool:
        """True if the query changed since the last recalculation."""
        return self._dirty

    @property
    def frame_id(self) -> int | None:
        """Version of the latest feedback frame (None before the first run).

        Frames are numbered monotonically by the underlying prepared query;
        pairing this with :attr:`last_delta` lets a UI apply incremental
        redraws instead of re-uploading every window after each event.
        """
        feedback = self._feedback
        return getattr(feedback, "frame_id", None) if feedback is not None else None

    @property
    def last_delta(self):
        """The latest frame's :class:`~repro.core.result.FeedbackDelta`.

        None when no relation to the previous frame is known (first run, or
        a wholesale query reshape); otherwise it names exactly the rows
        that entered/left the displayed set and the row spans whose
        relevance may have changed.
        """
        feedback = self._feedback
        return getattr(feedback, "delta", None) if feedback is not None else None

    def _feedback_path(self, path: NodePath) -> NodePath:
        """Translate a user-condition path to the effective feedback path.

        When the query uses connections, the pipeline wraps the condition as
        child 0 of an AND node together with the join predicates.
        """
        if self.query.connections and self.query.condition is not None:
            return (0,) + tuple(path)
        return tuple(path)

    # ------------------------------------------------------------------ #
    # Recalculation
    # ------------------------------------------------------------------ #
    def recalculate(self) -> QueryFeedback:
        """Re-execute the prepared query (incrementally) for the current state."""
        self._feedback = self._prepared.execute()
        self._dirty = False
        self.recalculations += 1
        return self._feedback

    def _modified(self) -> None:
        self.history.push(self.condition)
        self._dirty = True
        if self.auto_recalculate:
            self.recalculate()

    # ------------------------------------------------------------------ #
    # Event application
    # ------------------------------------------------------------------ #
    def apply(self, event: SessionEvent) -> QueryFeedback | None:
        """Apply one modification event; returns fresh feedback when recalculated."""
        if isinstance(event, _QUERY_EVENTS):
            self._prepared.apply_change(event)
            if isinstance(event, SetPercentageDisplayed):
                # A config change, not a query modification: no history entry.
                self._dirty = True
                if self.auto_recalculate:
                    self.recalculate()
            else:
                self._modified()
        elif isinstance(event, SelectTuple):
            self.selection = np.array([self.feedback.item_at_rank(event.rank)])
        elif isinstance(event, SelectColorRange):
            self.selection = items_in_color_range(
                self.feedback, self._feedback_path(event.path),
                event.distance_low, event.distance_high,
            )
        elif isinstance(event, ClearSelection):
            self.selection = None
        elif isinstance(event, ToggleAutoRecalculate):
            self.auto_recalculate = event.enabled
        elif isinstance(event, DrillDown):
            # Drill-down is a view operation; it does not change the query.
            return None
        else:
            raise TypeError(f"unsupported event type: {type(event).__name__}")
        return self._feedback if not self._dirty else None

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def windows(self, independent: bool = False) -> dict[NodePath, VisualizationWindow]:
        """The overall window plus one window per top-level query part."""
        return self.layout.windows(self.feedback, independent=independent)

    def drill_down(self, path: NodePath) -> dict[NodePath, VisualizationWindow]:
        """Windows for an inner operator box (the Fig. 5 view of the OR part)."""
        return self.layout.subpart_windows(self.feedback, self._feedback_path(path))

    def render(self) -> np.ndarray:
        """Compose the current windows (highlighting any selection) into an RGB image."""
        return self.layout.compose(self.windows(), highlight_items=self.selection)

    def sliders(self) -> tuple[OverallSpectrum, list[Slider]]:
        """The overall spectrum and one slider per predicate."""
        return sliders_for_feedback(self.feedback)

    def statistics(self) -> Mapping[str, object]:
        """The counters of the query modification part as a dictionary."""
        return self.feedback.statistics.as_dict()

    # ------------------------------------------------------------------ #
    # History
    # ------------------------------------------------------------------ #
    def undo(self) -> QueryFeedback | None:
        """Restore the previous query state."""
        restored = self.history.undo()
        self._replace_condition(restored)
        return self._feedback if not self._dirty else None

    def redo(self) -> QueryFeedback | None:
        """Re-apply the most recently undone query state."""
        restored = self.history.redo()
        self._replace_condition(restored)
        return self._feedback if not self._dirty else None

    def _replace_condition(self, condition: QueryNode) -> None:
        self.query.condition = copy.deepcopy(condition)
        self._dirty = True
        if self.auto_recalculate:
            self.recalculate()
