"""Evaluation of the result list (projection and aggregate operators).

The query specification interface lets the user move attributes and the
aggregate operators ``avg``, ``sum``, ``max``, ``min`` and ``count`` into
the Result List.  The visualization itself works on the condition part, but
once the user has focused on an interesting subset (the exact results, the
displayed items, or a colour-range selection) the result list says which
values to report for it.  :func:`evaluate_result_list` computes exactly
that.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.query.builder import Aggregate, ResultColumn
from repro.storage.table import Table

__all__ = ["evaluate_result_list", "project"]


def _resolve_column(table: Table, attribute: str) -> np.ndarray:
    """Resolve a possibly qualified attribute against a (possibly prefixed) table."""
    if table.has_column(attribute):
        return table.column(attribute)
    matches = [c for c in table.column_names if c.endswith(f".{attribute}")]
    if len(matches) == 1:
        return table.column(matches[0])
    if not matches:
        raise KeyError(f"result-list attribute {attribute!r} not found in the result table")
    raise KeyError(
        f"result-list attribute {attribute!r} is ambiguous; candidates: {', '.join(matches)}"
    )


def _aggregate(values: np.ndarray, aggregate: Aggregate) -> float:
    numeric = np.asarray(values, dtype=float) if values.dtype.kind == "f" else None
    if aggregate is Aggregate.COUNT:
        return float(len(values))
    if numeric is None:
        raise TypeError(f"aggregate {aggregate.value!r} requires a numeric attribute")
    finite = numeric[np.isfinite(numeric)]
    if len(finite) == 0:
        return float("nan")
    if aggregate is Aggregate.AVG:
        return float(finite.mean())
    if aggregate is Aggregate.SUM:
        return float(finite.sum())
    if aggregate is Aggregate.MAX:
        return float(finite.max())
    if aggregate is Aggregate.MIN:
        return float(finite.min())
    raise ValueError(f"unsupported aggregate: {aggregate!r}")


def project(table: Table, result_list: Sequence[ResultColumn],
            rows: np.ndarray | None = None) -> Table:
    """Plain projection: the non-aggregated result-list attributes for ``rows``.

    ``rows`` defaults to all rows of the table.  Aggregated columns are
    skipped (they do not produce one value per row).
    """
    if rows is None:
        rows = np.arange(len(table))
    columns: dict[str, np.ndarray] = {}
    for result in result_list:
        if result.aggregate is not None:
            continue
        columns[result.attribute] = _resolve_column(table, result.attribute)[rows]
    if not columns:
        raise ValueError("the result list contains no plain (non-aggregated) attributes")
    return Table("result", columns)


def evaluate_result_list(table: Table, result_list: Sequence[ResultColumn],
                         rows: np.ndarray | None = None) -> dict[str, Any]:
    """Evaluate every result-list entry over the selected ``rows``.

    Non-aggregated attributes yield the projected value arrays; aggregated
    entries yield a single number.  Keys are the result-column descriptions
    (``"Temperature"``, ``"avg(Ozone)"``, ...), matching the Result List
    window.
    """
    if not result_list:
        raise ValueError("the result list is empty")
    if rows is None:
        rows = np.arange(len(table))
    rows = np.asarray(rows, dtype=np.intp)
    output: dict[str, Any] = {}
    for result in result_list:
        values = _resolve_column(table, result.attribute)[rows]
        if result.aggregate is None:
            output[result.describe()] = values
        else:
            output[result.describe()] = _aggregate(values, result.aggregate)
    return output
