"""Query model: schema, predicates, boolean expression trees, joins and parsing.

This package implements the query side of VisDB.  A query is

* a set of tables (possibly connected by declared *connections* / joins),
* a result list (projection with optional aggregates), and
* a condition: a weighted boolean expression tree over selection
  predicates, approximate joins and nested subqueries.

The tree structure matters because the relevance engine combines distances
bottom-up using the weighted arithmetic mean for ``AND`` nodes and the
weighted geometric mean for ``OR`` nodes, and because the user can open a
separate visualization window for any subpart of the expression.
"""

from repro.query.schema import Attribute, DataType, TableSchema, infer_schema
from repro.query.predicates import (
    ComparisonOperator,
    Predicate,
    AttributePredicate,
    RangePredicate,
    SetMembershipPredicate,
    StringMatchPredicate,
    NoDistanceWarning,
)
from repro.query.expr import (
    QueryNode,
    PredicateLeaf,
    AndNode,
    OrNode,
    NotNode,
    SubqueryNode,
)
from repro.query.joins import Connection, JoinKind, ApproximateJoinPredicate
from repro.query.nested import ExistsPredicate, InPredicate
from repro.query.builder import Query, QueryBuilder, ResultColumn, Aggregate
from repro.query.aggregates import evaluate_result_list, project
from repro.query.parser import parse_query, QueryParseError
from repro.query.validation import validate_query, QueryValidationError

__all__ = [
    "Attribute",
    "DataType",
    "TableSchema",
    "infer_schema",
    "ComparisonOperator",
    "Predicate",
    "AttributePredicate",
    "RangePredicate",
    "SetMembershipPredicate",
    "StringMatchPredicate",
    "NoDistanceWarning",
    "QueryNode",
    "PredicateLeaf",
    "AndNode",
    "OrNode",
    "NotNode",
    "SubqueryNode",
    "Connection",
    "JoinKind",
    "ApproximateJoinPredicate",
    "ExistsPredicate",
    "InPredicate",
    "Query",
    "QueryBuilder",
    "ResultColumn",
    "Aggregate",
    "evaluate_result_list",
    "project",
    "parse_query",
    "QueryParseError",
    "validate_query",
    "QueryValidationError",
]
