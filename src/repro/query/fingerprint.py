"""Stable fingerprints for query-tree nodes and predicates.

The incremental :class:`~repro.core.engine.QueryEngine` caches per-leaf
signed distances and per-node normalized columns between re-executions of
a slightly modified query.  The cache keys are *fingerprints*: short
digests of everything the cached value depends on.  Two predicates with
the same type and parameters produce the same fingerprint even if they are
distinct objects (interactive modification replaces predicate objects on
every slider move), while any parameter change produces a new fingerprint
and therefore a cache miss.

Values that have no meaningful structural identity (callables, distance
matrices) are keyed by object identity: correct (a different object can
never be proven equivalent) at the cost of a recomputation when such an
object is replaced.
"""

from __future__ import annotations

import hashlib
import itertools
import weakref
from enum import Enum
from typing import Any

__all__ = ["stable_fingerprint"]

_SEPARATOR = "\x1f"

#: Monotonic identity tokens for objects fingerprinted by identity.  A plain
#: ``id()`` can alias: once the object is garbage collected, a new object at
#: the same address would silently inherit its cache entries.  The weak map
#: hands every distinct live object its own counter value instead; a dead
#: object's entry vanishes with it, so a successor can never collide.
_identity_tokens: "weakref.WeakKeyDictionary[Any, int]" = weakref.WeakKeyDictionary()
_identity_counter = itertools.count()


def _identity_token(value: Any) -> str:
    try:
        token = _identity_tokens.get(value)
        if token is None:
            token = next(_identity_counter)
            _identity_tokens[value] = token
        return f"obj:{token}"
    except TypeError:
        # Not weak-referenceable (rare for the callables/arrays this path
        # sees); fall back to the raw address.
        return f"id:{id(value)}"


def _token(value: Any) -> str:
    """Render one fingerprint component as a canonical string."""
    if value is None:
        return "N"
    if isinstance(value, str):
        return f"s:{value}"
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, (int, float)):
        # repr is deterministic for floats (including nan/inf).
        return f"n:{value!r}"
    if isinstance(value, Enum):
        return f"e:{type(value).__name__}.{value.name}"
    if isinstance(value, (tuple, list)):
        return "(" + _SEPARATOR.join(_token(v) for v in value) + ")"
    if isinstance(value, dict):
        items = sorted((repr(k), _token(v)) for k, v in value.items())
        return "{" + _SEPARATOR.join(f"{k}={v}" for k, v in items) + "}"
    # Callables, arrays, matrices: identity-based (see module docstring).
    return _identity_token(value)


def stable_fingerprint(*parts: Any) -> str:
    """Digest a sequence of primitive components into a short hex string."""
    text = _SEPARATOR.join(_token(p) for p in parts)
    return hashlib.blake2b(text.encode("utf-8"), digest_size=12).hexdigest()
