"""Connections (named joins) and approximate join predicates.

VisDB treats join conditions like any other selection predicate: the data
items of the cross product that *approximately* fulfil the join condition
are retained and coloured by their join distance.  This is what makes the
time- and location-related joins of the environmental example work even
when the two measurement series use different sampling grids or close-by
(but not identical) station locations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

from repro.query.predicates import Predicate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.table import Table

__all__ = ["JoinKind", "Connection", "ApproximateJoinPredicate"]


class JoinKind(Enum):
    """The kinds of join conditions distinguished by the paper (section 4.4)."""

    #: ``a1 = a2`` -- classical equi join; distance is the signed difference.
    EQUI = "equi"
    #: ``|t1 - t2| = c`` -- e.g. ``with-time-diff(120)``; distance is
    #: ``|t1 - t2| - c`` (how far the observed lag misses the hypothesised one).
    TIME_DIFF = "time-diff"
    #: Spatial proximity ``dist(p1, p2) <= c`` -- e.g. ``at-same-location`` /
    #: ``with-distance(m)``; distance is how far the points exceed ``c``.
    WITHIN_DISTANCE = "within-distance"
    #: Non-equi join ``a1 < a2``; distance is ``a1 - a2`` where violated.
    NON_EQUI = "non-equi"
    #: Parametrised join ``a1 - a2 < c``; distance is ``(a1 - a2) - c`` where violated.
    PARAMETRIC = "parametric"


@dataclass(frozen=True)
class Connection:
    """A designer-declared, possibly parameterised join between two tables.

    Connections appear in the query specification interface under names
    such as ``Air-Pollution with-time-diff(min) Weather``; the user binds
    the parameter (e.g. 120 minutes) when using them in a query.

    ``left_attribute`` / ``right_attribute`` are single column names, except
    for :data:`JoinKind.WITHIN_DISTANCE` joins where they may be ``(x, y)``
    coordinate column pairs.
    """

    name: str
    left_table: str
    right_table: str
    left_attribute: str | tuple[str, str]
    right_attribute: str | tuple[str, str]
    kind: JoinKind = JoinKind.EQUI
    parameter: float | None = None
    tolerance: float = 0.0

    @property
    def key(self) -> str:
        """Identifier shown in the Connections window, e.g.
        ``'Air-Pollution with-time-diff Weather'``."""
        return f"{self.left_table} {self.name} {self.right_table}"

    @property
    def is_parameterised(self) -> bool:
        """True if the join takes a numeric parameter (time diff, distance)."""
        return self.kind in (JoinKind.TIME_DIFF, JoinKind.WITHIN_DISTANCE, JoinKind.PARAMETRIC)

    def bind(self, parameter: float) -> "Connection":
        """Return a copy with the parameter bound (``with-time-diff(120)``)."""
        if not self.is_parameterised:
            raise ValueError(f"connection {self.key!r} takes no parameter")
        return replace(self, parameter=float(parameter))

    def describe(self) -> str:
        """Label used for the join's visualization window."""
        if self.is_parameterised and self.parameter is not None:
            return f"{self.left_table} {self.name}({self.parameter:g}) {self.right_table}"
        return self.key

    def to_predicate(self, left_prefix: str | None = None,
                     right_prefix: str | None = None) -> "ApproximateJoinPredicate":
        """Build the approximate join predicate over a prefixed cross-product table.

        ``left_prefix``/``right_prefix`` default to the table names, matching
        the column naming of :meth:`repro.storage.CrossProduct.to_table`.
        """
        left_prefix = left_prefix if left_prefix is not None else self.left_table
        right_prefix = right_prefix if right_prefix is not None else self.right_table

        def qualify(prefix: str, attribute: str | tuple[str, str]):
            if isinstance(attribute, tuple):
                return tuple(f"{prefix}.{a}" for a in attribute)
            return f"{prefix}.{attribute}"

        if self.is_parameterised and self.parameter is None:
            raise ValueError(
                f"connection {self.key!r} needs a bound parameter; call .bind(value) first"
            )
        return ApproximateJoinPredicate(
            left_column=qualify(left_prefix, self.left_attribute),
            right_column=qualify(right_prefix, self.right_attribute),
            kind=self.kind,
            parameter=self.parameter,
            tolerance=self.tolerance,
            label=self.describe(),
        )


@dataclass(repr=False)
class ApproximateJoinPredicate(Predicate):
    """A join condition evaluated as a predicate over a (cross-product) table.

    The predicate references fully qualified column names of the derived
    table (``'Weather.DateTime'``, ``'Air-Pollution.DateTime'``, ...).  The
    distance semantics per :class:`JoinKind` are documented on the enum.
    """

    left_column: str | tuple[str, str]
    right_column: str | tuple[str, str]
    kind: JoinKind = JoinKind.EQUI
    parameter: float | None = None
    tolerance: float = 0.0
    label: str | None = None

    def __post_init__(self) -> None:
        if self.kind in (JoinKind.TIME_DIFF, JoinKind.WITHIN_DISTANCE, JoinKind.PARAMETRIC):
            if self.parameter is None:
                raise ValueError(f"{self.kind.value} join requires a parameter")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        paired = isinstance(self.left_column, tuple)
        if paired != isinstance(self.right_column, tuple):
            raise ValueError("left and right columns must both be names or both be pairs")
        if paired and self.kind is not JoinKind.WITHIN_DISTANCE:
            raise ValueError("coordinate-pair columns are only valid for WITHIN_DISTANCE joins")

    # Predicate protocol ------------------------------------------------- #
    @property
    def attribute(self) -> str:  # type: ignore[override]
        """Primary attribute for slider purposes (the left join column)."""
        if isinstance(self.left_column, tuple):
            return self.left_column[0]
        return self.left_column

    def _raw_signed(self, table: "Table") -> np.ndarray:
        if self.kind is JoinKind.WITHIN_DISTANCE:
            lx, ly = (np.asarray(table.column(c), dtype=float) for c in self.left_column)
            rx, ry = (np.asarray(table.column(c), dtype=float) for c in self.right_column)
            separation = np.hypot(lx - rx, ly - ry)
            return separation - float(self.parameter)
        left = np.asarray(table.column(self.left_column), dtype=float)
        right = np.asarray(table.column(self.right_column), dtype=float)
        if self.kind is JoinKind.EQUI:
            return left - right
        if self.kind is JoinKind.TIME_DIFF:
            return np.abs(left - right) - float(self.parameter)
        if self.kind is JoinKind.NON_EQUI:
            return left - right
        # PARAMETRIC: a1 - a2 < c
        return (left - right) - float(self.parameter)

    def exact_mask(self, table: "Table") -> np.ndarray:
        raw = self._raw_signed(table)
        if self.kind in (JoinKind.EQUI, JoinKind.TIME_DIFF):
            return np.abs(raw) <= self.tolerance
        # WITHIN_DISTANCE, NON_EQUI and PARAMETRIC are one-sided conditions.
        return raw <= self.tolerance if self.kind is not JoinKind.NON_EQUI else raw < 0

    def signed_distances(self, table: "Table") -> np.ndarray:
        raw = self._raw_signed(table)
        fulfilled = self.exact_mask(table)
        return np.where(fulfilled, 0.0, raw)

    @property
    def supports_direction(self) -> bool:
        return self.kind in (JoinKind.EQUI, JoinKind.NON_EQUI, JoinKind.PARAMETRIC)

    def describe(self) -> str:
        if self.label:
            return self.label
        left = "/".join(self.left_column) if isinstance(self.left_column, tuple) else self.left_column
        right = "/".join(self.right_column) if isinstance(self.right_column, tuple) else self.right_column
        if self.kind is JoinKind.EQUI:
            return f"{left} = {right}"
        if self.kind is JoinKind.TIME_DIFF:
            return f"|{left} - {right}| = {self.parameter:g}"
        if self.kind is JoinKind.WITHIN_DISTANCE:
            return f"dist({left}, {right}) <= {self.parameter:g}"
        if self.kind is JoinKind.NON_EQUI:
            return f"{left} < {right}"
        return f"{left} - {right} < {self.parameter:g}"

    def inverse_partner_count_distance(self, table: "Table") -> np.ndarray:
        """Distance variant from the paper: the inverse of the number of join partners.

        "if the user is only interested in one relation and in the number of
        join partners that each data item of this relation has with another
        relation, the user might use the inverse of that number as the
        distance."  Items with no partner get ``inf``.
        """
        mask = self.exact_mask(table)
        left_key = self.attribute
        left_values = table.column(left_key)
        counts: dict[float, int] = {}
        for value, fulfilled in zip(left_values, mask):
            if fulfilled:
                counts[value] = counts.get(value, 0) + 1
        result = np.empty(len(table), dtype=float)
        for i, value in enumerate(left_values):
            count = counts.get(value, 0)
            result[i] = math.inf if count == 0 else 1.0 / count
        return result
