"""Weighted boolean expression trees over selection predicates.

The query condition is an arbitrarily nested combination of ``AND`` and
``OR`` over selection predicates, approximate joins and subqueries.  The
tree shape drives two things in VisDB:

* distance combination -- ``AND`` nodes use the weighted arithmetic mean,
  ``OR`` nodes the weighted geometric mean, applied recursively with
  re-normalization between levels (paper section 5.2), and
* the multi-window visualization -- the user sees one window per top-level
  part and can "double click" any inner operator box to open a separate
  visualization for that subpart (paper section 4.4).

Every node carries a *weight* used by its parent when combining, which is
how the query specification interface's weighting factors are represented.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from repro.query.fingerprint import stable_fingerprint
from repro.query.predicates import Predicate
from repro.storage.table import Table

__all__ = [
    "QueryNode",
    "PredicateLeaf",
    "AndNode",
    "OrNode",
    "NotNode",
    "SubqueryNode",
    "NodePath",
]

#: Address of a node inside the expression tree: a tuple of child indices.
NodePath = tuple[int, ...]


class QueryNode:
    """Base class of all expression-tree nodes."""

    def __init__(self, weight: float = 1.0, label: str | None = None):
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"weight must be in [0, 1], got {weight}")
        self.weight = weight
        self._label = label

    # -- structure ------------------------------------------------------ #
    @property
    def children(self) -> Sequence["QueryNode"]:
        """Child nodes (empty for leaves)."""
        return ()

    @property
    def is_leaf(self) -> bool:
        """True for nodes without children."""
        return not self.children

    def find(self, path: NodePath) -> "QueryNode":
        """Return the node addressed by ``path`` (a tuple of child indices)."""
        node: QueryNode = self
        for index in path:
            children = node.children
            if not 0 <= index < len(children):
                raise IndexError(f"invalid node path {path!r} at index {index}")
            node = children[index]
        return node

    def iter_nodes(self, prefix: NodePath = ()) -> Iterator[tuple[NodePath, "QueryNode"]]:
        """Yield ``(path, node)`` pairs in pre-order."""
        yield prefix, self
        for i, child in enumerate(self.children):
            yield from child.iter_nodes(prefix + (i,))

    def iter_leaves(self, prefix: NodePath = ()) -> Iterator[tuple[NodePath, "PredicateLeaf"]]:
        """Yield ``(path, leaf)`` for every predicate leaf, in left-to-right order."""
        for path, node in self.iter_nodes(prefix):
            if isinstance(node, PredicateLeaf):
                yield path, node

    def leaf_count(self) -> int:
        """Number of predicate leaves (the paper's ``#sp``)."""
        return sum(1 for _ in self.iter_leaves())

    def depth(self) -> int:
        """Height of the tree (a single leaf has depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children)

    # -- evaluation ------------------------------------------------------ #
    def exact_mask(self, table: Table) -> np.ndarray:
        """Classical boolean evaluation: True where the condition is fulfilled."""
        raise NotImplementedError

    # -- identity --------------------------------------------------------- #
    def source_fingerprint(self) -> str:
        """Identity of this node's *raw* evaluation, excluding weights.

        Leaves override this with their predicate's fingerprint; the value
        keys the engine cache of raw (pre-normalization) distance columns,
        which weight changes must not invalidate.
        """
        return stable_fingerprint(type(self).__name__)

    def fingerprint(self) -> str:
        """Stable identity of the full (sub)tree, including weights.

        The fingerprint changes whenever a predicate parameter, a weighting
        factor or the tree structure changes -- i.e. exactly when cached
        evaluation results for this subtree become invalid.
        """
        return stable_fingerprint(
            type(self).__name__,
            self.weight,
            self.source_fingerprint(),
            *[child.fingerprint() for child in self.children],
        )

    # -- presentation ---------------------------------------------------- #
    @property
    def label(self) -> str:
        """Short label used for window titles (settable at construction)."""
        return self._label if self._label is not None else self.describe()

    def describe(self) -> str:
        """Human-readable rendering of the (sub)expression."""
        raise NotImplementedError

    def with_weight(self, weight: float) -> "QueryNode":
        """Return ``self`` after setting a new weighting factor (chainable)."""
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"weight must be in [0, 1], got {weight}")
        self.weight = weight
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


class PredicateLeaf(QueryNode):
    """A leaf wrapping one selection predicate (a single Condition box)."""

    def __init__(self, predicate: Predicate, weight: float = 1.0, label: str | None = None):
        super().__init__(weight=weight, label=label)
        self.predicate = predicate

    def exact_mask(self, table: Table) -> np.ndarray:
        return self.predicate.exact_mask(table)

    def source_fingerprint(self) -> str:
        return self.predicate.fingerprint()

    def describe(self) -> str:
        return self.predicate.describe()


class _CompositeNode(QueryNode):
    """Shared implementation of AND / OR nodes."""

    _joiner = "?"

    def __init__(self, children: Sequence[QueryNode], weight: float = 1.0,
                 label: str | None = None):
        super().__init__(weight=weight, label=label)
        children = list(children)
        if len(children) < 1:
            raise ValueError(f"{type(self).__name__} needs at least one child")
        self._children = children

    @property
    def children(self) -> Sequence[QueryNode]:
        return tuple(self._children)

    def add(self, child: QueryNode) -> None:
        """Append another child (incremental query specification)."""
        self._children.append(child)

    def replace_child(self, index: int, child: QueryNode) -> None:
        """Replace the child at ``index`` (used by interactive modification)."""
        self._children[index] = child

    def child_weights(self) -> np.ndarray:
        """Weights of the children, in order."""
        return np.array([c.weight for c in self._children], dtype=float)

    def describe(self) -> str:
        parts = []
        for child in self._children:
            text = child.describe()
            if not child.is_leaf:
                text = f"({text})"
            parts.append(text)
        return f" {self._joiner} ".join(parts)


class AndNode(_CompositeNode):
    """Conjunction; distances combine via the weighted arithmetic mean."""

    _joiner = "AND"

    def exact_mask(self, table: Table) -> np.ndarray:
        mask = np.ones(len(table), dtype=bool)
        for child in self.children:
            mask &= child.exact_mask(table)
        return mask


class OrNode(_CompositeNode):
    """Disjunction; distances combine via the weighted geometric mean."""

    _joiner = "OR"

    def exact_mask(self, table: Table) -> np.ndarray:
        mask = np.zeros(len(table), dtype=bool)
        for child in self.children:
            mask |= child.exact_mask(table)
        return mask


class NotNode(QueryNode):
    """Negation.

    The paper notes that negations generally yield no distance values; the
    only exception is a negated comparison operator, which can be rewritten
    by inverting the operator.  :meth:`simplify` performs that rewrite where
    possible; the relevance engine refuses to colour other negations.
    """

    def __init__(self, child: QueryNode, weight: float = 1.0, label: str | None = None):
        super().__init__(weight=weight, label=label)
        self.child = child

    @property
    def children(self) -> Sequence[QueryNode]:
        return (self.child,)

    def exact_mask(self, table: Table) -> np.ndarray:
        return ~self.child.exact_mask(table)

    def describe(self) -> str:
        inner = self.child.describe()
        if not self.child.is_leaf:
            inner = f"({inner})"
        return f"NOT {inner}"

    def simplify(self) -> QueryNode:
        """Rewrite ``NOT (a op b)`` into the inverted comparison if possible.

        Raises ``ValueError`` when the child cannot be inverted, mirroring
        the paper's statement that such negations provide no distances.
        """
        if isinstance(self.child, PredicateLeaf):
            inverted = self.child.predicate.inverted()
            return PredicateLeaf(inverted, weight=self.weight, label=self._label)
        raise ValueError(
            "cannot simplify NOT over a composite expression; "
            "no distance values can be obtained for such negations"
        )


class SubqueryNode(QueryNode):
    """A leaf whose distances come from an arbitrary callable.

    This is the hook used for nested ``EXISTS`` / ``IN`` subqueries and for
    approximate joins evaluated against a derived (cross-product) table: the
    callable receives the table under evaluation and returns the signed
    distance per data item.  ``exact`` receives the table and returns the
    boolean fulfilment mask.
    """

    def __init__(self, describe: str,
                 distances: Callable[[Table], np.ndarray],
                 exact: Callable[[Table], np.ndarray],
                 weight: float = 1.0, label: str | None = None):
        super().__init__(weight=weight, label=label)
        self._describe = describe
        self._distances = distances
        self._exact = exact

    def exact_mask(self, table: Table) -> np.ndarray:
        return np.asarray(self._exact(table), dtype=bool)

    def source_fingerprint(self) -> str:
        # Callables have no structural identity; key them by object id so a
        # reused SubqueryNode hits the cache and a replaced one recomputes.
        return stable_fingerprint(
            "subquery", self._describe, self._distances, self._exact
        )

    def signed_distances(self, table: Table) -> np.ndarray:
        """Signed distances supplied by the wrapped callable."""
        return np.asarray(self._distances(table), dtype=float)

    def describe(self) -> str:
        return self._describe
