"""Selection predicates and their distance semantics.

Every selection predicate can do two things:

* decide exactly which data items *fulfil* it (the classical boolean
  evaluation), and
* compute a **signed distance** for every data item, where a distance of
  zero means the item fulfils the predicate and the magnitude says how far
  it misses.  Negative/positive signs encode the direction of the miss
  (below/above the query value), which the 2D arrangement of Fig. 1b uses.

Items for which no distance can be defined (e.g. the failing side of a
``!=`` predicate -- the paper's "negation problem") get ``NaN``; the
relevance engine maps NaN to the maximum normalized distance.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from typing import Any, Callable, Sequence

import numpy as np

from repro.query.fingerprint import stable_fingerprint
from repro.storage.table import Table

__all__ = [
    "ComparisonOperator",
    "Predicate",
    "AttributePredicate",
    "RangePredicate",
    "SetMembershipPredicate",
    "StringMatchPredicate",
    "NoDistanceWarning",
]


class NoDistanceWarning(UserWarning):
    """Raised as a warning category when a predicate cannot provide distances."""


class ComparisonOperator(Enum):
    """The comparison operators of the query Tool Box."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="
    NE = "!="

    def inverted(self) -> "ComparisonOperator":
        """Return the negated operator (used to rewrite ``NOT (a op b)``).

        Equality/inequality swap into each other; the four order operators
        invert as the paper describes for negated comparison operators.
        """
        return _INVERTED[self]

    def evaluate(self, values: np.ndarray, reference: float) -> np.ndarray:
        """Vectorised boolean evaluation of ``values <op> reference``."""
        if self is ComparisonOperator.LT:
            return values < reference
        if self is ComparisonOperator.LE:
            return values <= reference
        if self is ComparisonOperator.GT:
            return values > reference
        if self is ComparisonOperator.GE:
            return values >= reference
        if self is ComparisonOperator.EQ:
            return values == reference
        return values != reference


_INVERTED = {
    ComparisonOperator.LT: ComparisonOperator.GE,
    ComparisonOperator.LE: ComparisonOperator.GT,
    ComparisonOperator.GT: ComparisonOperator.LE,
    ComparisonOperator.GE: ComparisonOperator.LT,
    ComparisonOperator.EQ: ComparisonOperator.NE,
    ComparisonOperator.NE: ComparisonOperator.EQ,
}


class Predicate:
    """Base class for selection predicates.

    Subclasses implement :meth:`exact_mask` and :meth:`signed_distances`;
    the default :meth:`distances` (absolute distances used for relevance
    calculation) and :meth:`describe` derive from those.
    """

    #: Attribute (column) the predicate mainly refers to; used for sliders.
    attribute: str

    def exact_mask(self, table: Table) -> np.ndarray:
        """Boolean array: True where the data item fulfils the predicate."""
        raise NotImplementedError

    def signed_distances(self, table: Table) -> np.ndarray:
        """Signed distance per data item (0 = fulfilled, NaN = undefined)."""
        raise NotImplementedError

    def distances(self, table: Table) -> np.ndarray:
        """Absolute distances (the quantity normalized and combined)."""
        return np.abs(self.signed_distances(table))

    @property
    def supports_direction(self) -> bool:
        """True if signed distances carry meaningful direction information."""
        return True

    def describe(self) -> str:
        """Human-readable label used for window titles and sliders."""
        return self.attribute

    def inverted(self) -> "Predicate":
        """Return the negated predicate, if a distance-preserving negation exists."""
        raise ValueError(
            f"predicate {self.describe()!r} cannot be negated while keeping distances"
        )

    def fingerprint(self) -> str:
        """Stable identity of this predicate's distance computation.

        Two predicates of the same type with equal parameters share a
        fingerprint, which lets the query engine reuse cached raw distance
        columns across re-executions.  All concrete predicates are
        dataclasses, so the default derives the fingerprint from the typed
        field values; non-dataclass subclasses fall back to object identity.
        """
        if is_dataclass(self):
            parts = [getattr(self, f.name) for f in fields(self)]
            return stable_fingerprint(type(self).__name__, *parts)
        return stable_fingerprint(type(self).__name__, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


@dataclass(repr=False)
class AttributePredicate(Predicate):
    """A simple comparison ``attribute <op> value`` on a numeric attribute.

    The signed distance is zero for fulfilling items and ``value - x``
    (for ``>``/``>=``) or ``x - value`` (for ``<``/``<=``) otherwise, so the
    magnitude is "how much the item misses the threshold" and the sign is
    negative when the item lies below the query value and positive when it
    lies above it.
    """

    attribute: str
    operator: ComparisonOperator
    value: float

    def exact_mask(self, table: Table) -> np.ndarray:
        return self.operator.evaluate(np.asarray(table.column(self.attribute), dtype=float),
                                      self.value)

    def signed_distances(self, table: Table) -> np.ndarray:
        values = np.asarray(table.column(self.attribute), dtype=float)
        signed = values - self.value
        fulfilled = self.operator.evaluate(values, self.value)
        distances = np.where(fulfilled, 0.0, signed)
        if self.operator is ComparisonOperator.NE:
            # Failing items are exactly equal to the forbidden value: no
            # gradation exists (the negation problem); mark them undefined.
            distances = np.where(fulfilled, 0.0, np.nan)
        distances = np.where(np.isnan(values), np.nan, distances)
        return distances

    @property
    def supports_direction(self) -> bool:
        return self.operator is not ComparisonOperator.NE

    def describe(self) -> str:
        return f"{self.attribute} {self.operator.value} {self.value:g}"

    def inverted(self) -> "AttributePredicate":
        if self.operator in (ComparisonOperator.EQ, ComparisonOperator.NE):
            return AttributePredicate(self.attribute, self.operator.inverted(), self.value)
        return AttributePredicate(self.attribute, self.operator.inverted(), self.value)


@dataclass(repr=False)
class RangePredicate(Predicate):
    """A range condition ``low <= attribute <= high``.

    This is the predicate the VisDB sliders manipulate: the black lines in
    a slider are exactly ``low`` and ``high``.  Items above the range get
    positive distances (``x - high``), items below negative ones
    (``x - low``).
    """

    attribute: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(
                f"invalid range for {self.attribute!r}: low {self.low} > high {self.high}"
            )

    def exact_mask(self, table: Table) -> np.ndarray:
        values = np.asarray(table.column(self.attribute), dtype=float)
        return (values >= self.low) & (values <= self.high)

    def signed_distances(self, table: Table) -> np.ndarray:
        values = np.asarray(table.column(self.attribute), dtype=float)
        below = np.where(values < self.low, values - self.low, 0.0)
        above = np.where(values > self.high, values - self.high, 0.0)
        distances = below + above
        return np.where(np.isnan(values), np.nan, distances)

    def describe(self) -> str:
        return f"{self.low:g} <= {self.attribute} <= {self.high:g}"

    def with_range(self, low: float, high: float) -> "RangePredicate":
        """Return a copy with a new query range (a slider move)."""
        return RangePredicate(self.attribute, low, high)

    @classmethod
    def around(cls, attribute: str, centre: float, deviation: float) -> "RangePredicate":
        """Build a range from a medium value and allowed deviation.

        This mirrors the alternative slider type "where the medium value and
        some allowed deviation can be manipulated graphically".
        """
        if deviation < 0:
            raise ValueError("deviation must be non-negative")
        return cls(attribute, centre - deviation, centre + deviation)


@dataclass(repr=False)
class SetMembershipPredicate(Predicate):
    """``attribute IN {v1, v2, ...}`` for numeric or categorical attributes.

    For numeric attributes the distance is the signed difference to the
    nearest member; for categorical attributes an optional distance matrix
    (a mapping ``(value, member) -> distance``) provides graded distances,
    otherwise failing items are undefined (NaN).
    """

    attribute: str
    members: tuple[Any, ...]
    distance_matrix: dict[tuple[Any, Any], float] | None = None

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("SetMembershipPredicate needs at least one member value")
        self.members = tuple(self.members)

    def _is_numeric(self, table: Table) -> bool:
        return table.is_numeric(self.attribute) and all(
            isinstance(m, (int, float, np.integer, np.floating)) for m in self.members
        )

    def exact_mask(self, table: Table) -> np.ndarray:
        column = table.column(self.attribute)
        if self._is_numeric(table):
            values = np.asarray(column, dtype=float)
            mask = np.zeros(len(values), dtype=bool)
            for member in self.members:
                mask |= values == float(member)
            return mask
        member_set = set(self.members)
        return np.array([v in member_set for v in column], dtype=bool)

    def signed_distances(self, table: Table) -> np.ndarray:
        column = table.column(self.attribute)
        if self._is_numeric(table):
            values = np.asarray(column, dtype=float)
            member_values = np.array(sorted(float(m) for m in self.members))
            diffs = values[:, None] - member_values[None, :]
            nearest = np.argmin(np.abs(diffs), axis=1)
            signed = diffs[np.arange(len(values)), nearest]
            return np.where(np.isnan(values), np.nan, signed)
        distances = np.empty(len(column), dtype=float)
        member_set = set(self.members)
        for i, value in enumerate(column):
            if value in member_set:
                distances[i] = 0.0
            elif self.distance_matrix is not None:
                candidates = [
                    self.distance_matrix.get((value, m), np.nan) for m in self.members
                ]
                finite = [c for c in candidates if not np.isnan(c)]
                distances[i] = min(finite) if finite else np.nan
            else:
                distances[i] = np.nan
        return distances

    @property
    def supports_direction(self) -> bool:
        return False

    def describe(self) -> str:
        shown = ", ".join(str(m) for m in self.members[:4])
        if len(self.members) > 4:
            shown += ", ..."
        return f"{self.attribute} in {{{shown}}}"


@dataclass(repr=False)
class StringMatchPredicate(Predicate):
    """``attribute = 'target'`` on a string attribute with a graded distance.

    ``distance_function`` maps ``(value, target)`` to a non-negative float;
    the defaults in :mod:`repro.distance.strings` provide lexicographical,
    character-wise, substring, edit and phonetic differences.
    """

    attribute: str
    target: str
    distance_function: Callable[[str, str], float] | None = None

    def exact_mask(self, table: Table) -> np.ndarray:
        column = table.column(self.attribute)
        return np.array([str(v) == self.target for v in column], dtype=bool)

    def signed_distances(self, table: Table) -> np.ndarray:
        from repro.distance.strings import edit_distance  # local import: avoid cycle

        distance = self.distance_function or edit_distance
        column = table.column(self.attribute)
        return np.array([float(distance(str(v), self.target)) for v in column], dtype=float)

    @property
    def supports_direction(self) -> bool:
        return False

    def describe(self) -> str:
        return f"{self.attribute} ~ {self.target!r}"


def predicate_for_values(attribute: str, values: Sequence[Any]) -> Predicate:
    """Convenience factory: build an IN / EQ predicate from example values."""
    if len(values) == 1:
        value = values[0]
        if isinstance(value, str):
            return StringMatchPredicate(attribute, value)
        return AttributePredicate(attribute, ComparisonOperator.EQ, float(value))
    return SetMembershipPredicate(attribute, tuple(values))
