"""Nested subqueries (EXISTS / IN) with approximate-join semantics.

The paper (section 4.4) visualises a nested subquery from the point of view
of the outer relation: an outer data item is coloured yellow if the subquery
condition is fulfilled for it, and otherwise with "the colour corresponding
to the distance of the data item most closely fulfilling the subquery
condition", i.e. the minimum combined distance over an approximate join of
the inner and outer relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.query.expr import QueryNode
from repro.query.joins import JoinKind
from repro.query.predicates import Predicate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.table import Table

__all__ = ["ExistsPredicate", "InPredicate"]


def _combined_inner_distances(inner_table: "Table", condition: QueryNode | None) -> np.ndarray:
    """Unweighted combined distance of the inner condition per inner row.

    The inner condition contributes additively to the join distance when
    ranking "the data item most closely fulfilling the subquery condition".
    Rows fulfilling the condition contribute zero.
    """
    if condition is None:
        return np.zeros(len(inner_table), dtype=float)
    total = np.zeros(len(inner_table), dtype=float)
    for _, leaf in condition.iter_leaves():
        distances = leaf.predicate.distances(inner_table)
        distances = np.where(np.isnan(distances), np.nanmax(distances[np.isfinite(distances)],
                                                            initial=1.0), distances)
        total += distances
    return total


@dataclass(repr=False)
class ExistsPredicate(Predicate):
    """``EXISTS (SELECT ... FROM inner WHERE inner.attr ~ outer.attr AND ...)``.

    Parameters
    ----------
    attribute:
        Outer join attribute (column of the table under evaluation).
    inner_table:
        The inner relation.
    inner_attribute:
        Join attribute of the inner relation.
    inner_condition:
        Optional additional condition on the inner relation.
    kind:
        Join kind linking outer and inner attribute (default equi join).
    parameter, tolerance:
        Parameters of the join, as for :class:`ApproximateJoinPredicate`.
    chunk_size:
        Number of outer rows processed per vectorised block.
    """

    attribute: str
    inner_table: "Table"
    inner_attribute: str
    inner_condition: QueryNode | None = None
    kind: JoinKind = JoinKind.EQUI
    parameter: float | None = None
    tolerance: float = 0.0
    chunk_size: int = 2048
    _inner_cache: dict = field(default_factory=dict, compare=False)

    def _inner_values_and_penalty(self) -> tuple[np.ndarray, np.ndarray]:
        if "values" not in self._inner_cache:
            self._inner_cache["values"] = np.asarray(
                self.inner_table.column(self.inner_attribute), dtype=float
            )
            self._inner_cache["penalty"] = _combined_inner_distances(
                self.inner_table, self.inner_condition
            )
        return self._inner_cache["values"], self._inner_cache["penalty"]

    def _pair_distance(self, outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
        """|outer x inner| distance matrix chunk according to the join kind."""
        diff = outer[:, None] - inner[None, :]
        if self.kind is JoinKind.EQUI:
            return np.abs(diff)
        if self.kind is JoinKind.TIME_DIFF:
            return np.abs(np.abs(diff) - float(self.parameter or 0.0))
        if self.kind is JoinKind.NON_EQUI:
            return np.where(diff < 0, 0.0, diff)
        if self.kind is JoinKind.PARAMETRIC:
            excess = diff - float(self.parameter or 0.0)
            return np.where(excess < 0, 0.0, excess)
        raise ValueError(f"unsupported join kind for nested subqueries: {self.kind}")

    def signed_distances(self, table: "Table") -> np.ndarray:
        outer_values = np.asarray(table.column(self.attribute), dtype=float)
        inner_values, penalty = self._inner_values_and_penalty()
        if len(inner_values) == 0:
            return np.full(len(table), np.nan)
        result = np.empty(len(table), dtype=float)
        for start in range(0, len(outer_values), self.chunk_size):
            stop = start + self.chunk_size
            block = self._pair_distance(outer_values[start:stop], inner_values)
            result[start:stop] = np.min(block + penalty[None, :], axis=1)
        result = np.where(np.isnan(outer_values), np.nan, result)
        return result

    def exact_mask(self, table: "Table") -> np.ndarray:
        distances = self.signed_distances(table)
        return np.where(np.isnan(distances), False, np.abs(distances) <= self.tolerance)

    @property
    def supports_direction(self) -> bool:
        return False

    def describe(self) -> str:
        inner = self.inner_table.name
        condition = ""
        if self.inner_condition is not None:
            condition = f" AND {self.inner_condition.describe()}"
        return (
            f"EXISTS ({inner}.{self.inner_attribute} ~ {self.attribute}{condition})"
        )


@dataclass(repr=False)
class InPredicate(ExistsPredicate):
    """``outer.attr IN (SELECT inner.attr FROM inner WHERE ...)``.

    Semantically an :class:`ExistsPredicate` with an equi join on the two
    attributes; kept as its own class so queries read like the SQL they
    represent.
    """

    def __post_init__(self) -> None:
        if self.kind is not JoinKind.EQUI:
            raise ValueError("IN subqueries always use an equi join on the selected attribute")

    def describe(self) -> str:
        inner = self.inner_table.name
        condition = ""
        if self.inner_condition is not None:
            condition = f" WHERE {self.inner_condition.describe()}"
        return f"{self.attribute} IN (SELECT {self.inner_attribute} FROM {inner}{condition})"
