"""Validation of queries against a database schema."""

from __future__ import annotations

from repro.query.builder import Query
from repro.query.expr import PredicateLeaf
from repro.query.joins import ApproximateJoinPredicate
from repro.query.nested import ExistsPredicate
from repro.storage.database import Database

__all__ = ["QueryValidationError", "validate_query", "resolve_attribute"]


class QueryValidationError(ValueError):
    """Raised when a query references unknown tables/attributes or is malformed."""


def resolve_attribute(attribute: str, query: Query, database: Database) -> tuple[str, str]:
    """Resolve an attribute reference to ``(table, column)``.

    Qualified names (``Weather.Temperature``) must name a table used by the
    query; bare names must occur in exactly one of the query's tables.
    """
    if "." in attribute:
        table_name, column = attribute.split(".", 1)
        if table_name not in query.tables:
            raise QueryValidationError(
                f"attribute {attribute!r} references table {table_name!r} "
                f"which is not part of the query (tables: {', '.join(query.tables)})"
            )
        if not database.table(table_name).has_column(column):
            raise QueryValidationError(
                f"table {table_name!r} has no column {column!r}"
            )
        return table_name, column
    owners = [t for t in query.tables if database.table(t).has_column(attribute)]
    if not owners:
        raise QueryValidationError(
            f"attribute {attribute!r} not found in any query table "
            f"({', '.join(query.tables)})"
        )
    if len(owners) > 1:
        raise QueryValidationError(
            f"attribute {attribute!r} is ambiguous; it occurs in tables "
            f"{', '.join(owners)} -- qualify it as 'Table.{attribute}'"
        )
    return owners[0], attribute


def validate_query(query: Query, database: Database) -> None:
    """Check a query against the database; raise :class:`QueryValidationError` if invalid."""
    if not query.tables:
        raise QueryValidationError("query uses no tables")
    for table_name in query.tables:
        if table_name not in database:
            raise QueryValidationError(f"database has no table {table_name!r}")
    for result in query.result_list:
        resolve_attribute(result.attribute, query, database)
    if query.condition is not None:
        for path, leaf in query.condition.iter_leaves():
            predicate = leaf.predicate
            if isinstance(predicate, (ApproximateJoinPredicate, ExistsPredicate)):
                # Join/nested predicates reference derived-table columns that
                # only exist after the pipeline builds the cross product.
                continue
            table_name, column = resolve_attribute(predicate.attribute, query, database)
            table = database.table(table_name)
            needs_numeric = not hasattr(predicate, "target")
            if needs_numeric and not table.is_numeric(column):
                raise QueryValidationError(
                    f"predicate {predicate.describe()!r} needs a numeric column, "
                    f"but {table_name}.{column} is not numeric"
                )
    for connection in query.connections:
        for table_name in (connection.left_table, connection.right_table):
            if table_name not in query.tables:
                raise QueryValidationError(
                    f"connection {connection.key!r} references table {table_name!r} "
                    "which is not part of the query"
                )
        if connection.is_parameterised and connection.parameter is None:
            raise QueryValidationError(
                f"connection {connection.key!r} needs a parameter; bind it when adding"
            )
