"""Schema description: datatypes, attributes and table schemas.

VisDB's distance functions are "datatype and application dependent"; the
schema layer records the datatype of each attribute so the pipeline can
select a sensible default distance function (numerical difference for
metric types, distance matrices for ordinal/nominal types, string distances
for text, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Sequence

from repro.storage.table import Table

__all__ = ["DataType", "Attribute", "TableSchema", "infer_schema"]


class DataType(Enum):
    """Datatypes distinguished by the distance-function machinery."""

    NUMERIC = "numeric"
    ORDINAL = "ordinal"
    NOMINAL = "nominal"
    STRING = "string"
    DATETIME = "datetime"
    LOCATION = "location"

    @property
    def is_metric(self) -> bool:
        """True for types where numerical difference is meaningful."""
        return self in (DataType.NUMERIC, DataType.DATETIME)


@dataclass(frozen=True)
class Attribute:
    """Description of a single attribute (column) of a table.

    Attributes
    ----------
    name:
        Column name.
    datatype:
        One of :class:`DataType`.
    unit:
        Optional physical unit, for display only (e.g. ``"°C"``).
    domain:
        Optional ``(min, max)`` of the valid domain, used by sliders as the
        outer bounds shown to the user.
    values:
        For ordinal/nominal attributes, the ordered list of possible values.
    """

    name: str
    datatype: DataType = DataType.NUMERIC
    unit: str | None = None
    domain: tuple[float, float] | None = None
    values: tuple[Any, ...] | None = None

    def qualified(self, table_name: str) -> str:
        """Return ``table.attribute`` notation."""
        return f"{table_name}.{self.name}"


@dataclass
class TableSchema:
    """Schema of a table: its name plus its attributes in order."""

    name: str
    attributes: list[Attribute] = field(default_factory=list)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise KeyError(f"table {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        """Return True if the schema contains ``name``."""
        return any(a.name == name for a in self.attributes)

    @property
    def attribute_names(self) -> list[str]:
        """Names of all attributes."""
        return [a.name for a in self.attributes]

    def add(self, attribute: Attribute) -> None:
        """Append an attribute (name must be unique)."""
        if self.has_attribute(attribute.name):
            raise ValueError(f"attribute {attribute.name!r} already defined")
        self.attributes.append(attribute)


def infer_schema(table: Table, overrides: Sequence[Attribute] = ()) -> TableSchema:
    """Derive a schema from a table's stored columns.

    Numeric columns become ``NUMERIC`` attributes with the observed min/max
    as their domain; object columns become ``STRING``.  ``overrides`` may
    supply richer attribute descriptions (units, ordinal value lists, ...).
    """
    override_map = {a.name: a for a in overrides}
    schema = TableSchema(table.name)
    for column_name in table.column_names:
        if column_name in override_map:
            schema.add(override_map[column_name])
            continue
        if table.is_numeric(column_name):
            stats = table.stats(column_name)
            domain = None
            if stats.minimum is not None and stats.maximum is not None:
                domain = (float(stats.minimum), float(stats.maximum))
            schema.add(Attribute(column_name, DataType.NUMERIC, domain=domain))
        else:
            schema.add(Attribute(column_name, DataType.STRING))
    return schema
