"""Incremental query construction (a programmatic stand-in for GRADI).

The original VisDB prototype uses the GRAphical Database Interface (GRADI)
for query specification: the user selects tables, drags attributes into the
result list, builds the condition from Condition/Subquery boxes connected
with the Tool Box operators, drops in named connections and finally assigns
weighting factors.  :class:`QueryBuilder` supports exactly that incremental
style in code; :class:`Query` is the finished artefact handed to the
relevance pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from repro.query.expr import AndNode, NotNode, OrNode, PredicateLeaf, QueryNode
from repro.query.joins import Connection
from repro.query.predicates import (
    AttributePredicate,
    ComparisonOperator,
    Predicate,
    RangePredicate,
)

__all__ = ["Aggregate", "ResultColumn", "Query", "QueryBuilder", "condition", "between"]


class Aggregate(Enum):
    """Aggregate operators available in the result list."""

    AVG = "avg"
    SUM = "sum"
    MAX = "max"
    MIN = "min"
    COUNT = "count"


@dataclass(frozen=True)
class ResultColumn:
    """One entry of the result list (projection), optionally aggregated."""

    attribute: str
    aggregate: Aggregate | None = None

    def describe(self) -> str:
        """Rendering used in the Result List window."""
        if self.aggregate is None:
            return self.attribute
        return f"{self.aggregate.value}({self.attribute})"


@dataclass
class Query:
    """A complete query: tables, result list, condition tree and connections."""

    name: str
    tables: list[str]
    result_list: list[ResultColumn] = field(default_factory=list)
    condition: QueryNode | None = None
    connections: list[Connection] = field(default_factory=list)

    @property
    def selection_predicate_count(self) -> int:
        """The paper's ``#sp``: number of predicate leaves in the condition."""
        return self.condition.leaf_count() if self.condition is not None else 0

    def top_level_parts(self) -> list[QueryNode]:
        """The children of the root operator (one visualization window each).

        For a single-predicate condition the condition itself is the only
        part.  Join conditions added via connections become additional
        windows in the pipeline, not here.
        """
        if self.condition is None:
            return []
        if self.condition.is_leaf:
            return [self.condition]
        return list(self.condition.children)

    def part(self, path: tuple[int, ...]) -> QueryNode:
        """Return the subexpression at ``path`` (the "double-clicked" box)."""
        if self.condition is None:
            raise ValueError("query has no condition")
        return self.condition.find(path)

    def describe(self) -> str:
        """Readable one-line rendering of the whole query."""
        select = ", ".join(c.describe() for c in self.result_list) or "*"
        text = f"SELECT {select} FROM {', '.join(self.tables)}"
        if self.condition is not None:
            text += f" WHERE {self.condition.describe()}"
        for connection in self.connections:
            text += f" [{connection.describe()}]"
        return text


def condition(attribute: str, operator: str, value: float, weight: float = 1.0,
              label: str | None = None) -> PredicateLeaf:
    """Build a single Condition box: ``attribute <operator> value``."""
    op = ComparisonOperator(operator)
    return PredicateLeaf(AttributePredicate(attribute, op, float(value)),
                         weight=weight, label=label)


def between(attribute: str, low: float, high: float, weight: float = 1.0,
            label: str | None = None) -> PredicateLeaf:
    """Build a range Condition box: ``low <= attribute <= high``."""
    return PredicateLeaf(RangePredicate(attribute, low, high), weight=weight, label=label)


class QueryBuilder:
    """Fluent, incremental query construction.

    Example
    -------
    The environmental query of Fig. 3::

        query = (
            QueryBuilder("ozone-correlation", database)
            .use_tables("Weather", "Air-Pollution")
            .add_result("Weather.Temperature")
            .add_result("Weather.Solar-Radiation")
            .add_result("Weather.Humidity")
            .add_result("Air-Pollution.Ozone")
            .where(
                OrNode([
                    condition("Weather.Temperature", ">", 15.0),
                    condition("Weather.Solar-Radiation", ">", 600.0),
                    condition("Weather.Humidity", "<", 60.0),
                ])
            )
            .use_connection("Air-Pollution with-time-diff Weather", parameter=120)
            .build()
        )
    """

    def __init__(self, name: str = "query", database=None):
        self.name = name
        self._database = database
        self._tables: list[str] = []
        self._result_list: list[ResultColumn] = []
        self._condition: QueryNode | None = None
        self._connections: list[Connection] = []

    # -- tables and projection ------------------------------------------ #
    def use_tables(self, *table_names: str) -> "QueryBuilder":
        """Select the tables to be used in the query."""
        for name in table_names:
            if self._database is not None and name not in self._database:
                raise KeyError(f"database has no table {name!r}")
            if name not in self._tables:
                self._tables.append(name)
        return self

    def add_result(self, attribute: str, aggregate: Aggregate | str | None = None) -> "QueryBuilder":
        """Move an attribute (optionally aggregated) into the Result List."""
        if isinstance(aggregate, str):
            aggregate = Aggregate(aggregate.lower())
        self._result_list.append(ResultColumn(attribute, aggregate))
        return self

    # -- condition ------------------------------------------------------- #
    @staticmethod
    def _as_node(part: QueryNode | Predicate) -> QueryNode:
        if isinstance(part, QueryNode):
            return part
        return PredicateLeaf(part)

    def where(self, part: QueryNode | Predicate) -> "QueryBuilder":
        """Set the condition (replacing any previously specified condition)."""
        self._condition = self._as_node(part)
        return self

    def and_where(self, part: QueryNode | Predicate) -> "QueryBuilder":
        """Combine the current condition with ``part`` using AND."""
        node = self._as_node(part)
        if self._condition is None:
            self._condition = node
        elif isinstance(self._condition, AndNode):
            self._condition.add(node)
        else:
            self._condition = AndNode([self._condition, node])
        return self

    def or_where(self, part: QueryNode | Predicate) -> "QueryBuilder":
        """Combine the current condition with ``part`` using OR."""
        node = self._as_node(part)
        if self._condition is None:
            self._condition = node
        elif isinstance(self._condition, OrNode):
            self._condition.add(node)
        else:
            self._condition = OrNode([self._condition, node])
        return self

    def not_where(self, part: QueryNode | Predicate) -> "QueryBuilder":
        """AND-combine the negation of ``part`` (simplified where possible)."""
        node = NotNode(self._as_node(part))
        try:
            node = node.simplify()
        except ValueError:
            pass
        return self.and_where(node)

    def weight(self, path: Sequence[int], value: float) -> "QueryBuilder":
        """Assign a weighting factor to the condition part at ``path``."""
        if self._condition is None:
            raise ValueError("no condition specified yet")
        self._condition.find(tuple(path)).with_weight(value)
        return self

    # -- connections ----------------------------------------------------- #
    def use_connection(self, connection: Connection | str,
                       parameter: float | None = None) -> "QueryBuilder":
        """Add a declared connection (join) to the query, binding its parameter."""
        if isinstance(connection, str):
            if self._database is None:
                raise ValueError("a database is required to look up connections by key")
            connection = self._database.connection(connection)
        if parameter is not None:
            connection = connection.bind(parameter)
        self._connections.append(connection)
        for table_name in (connection.left_table, connection.right_table):
            if table_name not in self._tables:
                self._tables.append(table_name)
        return self

    # -- finalisation ----------------------------------------------------- #
    def build(self) -> Query:
        """Produce the finished :class:`Query`.

        If a database was supplied, the query is validated against it.
        """
        if not self._tables:
            raise ValueError("no tables selected; call use_tables() first")
        query = Query(
            name=self.name,
            tables=list(self._tables),
            result_list=list(self._result_list),
            condition=self._condition,
            connections=list(self._connections),
        )
        if self._database is not None:
            from repro.query.validation import validate_query

            validate_query(query, self._database)
        return query
