"""A small SQL-like text front-end for query specification.

The paper notes that "for the purpose of query specification, the user may
also use traditional query languages such as SQL"; this module provides
that path.  The accepted grammar::

    query       := SELECT result_list FROM table_list [WHERE expression]
    result_list := result ("," result)*          | "*"
    result      := [AGG "("] identifier [")"]
    expression  := and_expr (OR and_expr)*
    and_expr    := unary (AND unary)*
    unary       := NOT unary | "(" expression ")" | comparison
    comparison  := identifier op literal        [WEIGHT number]
                 | identifier BETWEEN number AND number [WEIGHT number]
                 | identifier IN "(" literal ("," literal)* ")" [WEIGHT number]
    op          := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="

Identifiers may be qualified (``Weather.Temperature``) and may contain
dashes, matching the attribute names of the environmental example
(``Solar-Radiation``).  ``WEIGHT w`` attaches a weighting factor to the
preceding predicate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.query.builder import Aggregate, Query, ResultColumn
from repro.query.expr import AndNode, NotNode, OrNode, PredicateLeaf, QueryNode
from repro.query.predicates import (
    AttributePredicate,
    ComparisonOperator,
    RangePredicate,
    SetMembershipPredicate,
    StringMatchPredicate,
)

__all__ = ["parse_query", "parse_condition", "QueryParseError"]


class QueryParseError(ValueError):
    """Raised when the query text cannot be parsed."""


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<string>'[^']*')
  | (?P<number>-?\d+(\.\d+)?([eE][-+]?\d+)?)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),*])
  | (?P<word>[A-Za-z_][A-Za-z0-9_\-\.#]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "between", "in", "weight",
    "avg", "sum", "max", "min", "count",
}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str

    @property
    def lowered(self) -> str:
        return self.text.lower()


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise QueryParseError(f"unexpected character {text[position]!r} at offset {position}")
        kind = match.lastgroup or "word"
        tokens.append(_Token(kind, match.group()))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._position = 0

    # -- token helpers --------------------------------------------------- #
    def _peek(self) -> _Token | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryParseError("unexpected end of query")
        self._position += 1
        return token

    def _accept_word(self, word: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "word" and token.lowered == word:
            self._position += 1
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            found = self._peek().text if self._peek() else "end of query"
            raise QueryParseError(f"expected {word.upper()!r}, found {found!r}")

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.text == punct:
            self._position += 1
            return True
        return False

    def _expect_punct(self, punct: str) -> None:
        if not self._accept_punct(punct):
            found = self._peek().text if self._peek() else "end of query"
            raise QueryParseError(f"expected {punct!r}, found {found!r}")

    def _identifier(self) -> str:
        token = self._next()
        if token.kind != "word" or token.lowered in _KEYWORDS:
            raise QueryParseError(f"expected an identifier, found {token.text!r}")
        return token.text

    def _literal(self) -> float | str:
        token = self._next()
        if token.kind == "number":
            return float(token.text)
        if token.kind == "string":
            return token.text[1:-1]
        raise QueryParseError(f"expected a literal value, found {token.text!r}")

    def _number(self) -> float:
        token = self._next()
        if token.kind != "number":
            raise QueryParseError(f"expected a number, found {token.text!r}")
        return float(token.text)

    # -- grammar --------------------------------------------------------- #
    def parse_query(self, name: str) -> Query:
        self._expect_word("select")
        result_list = self._parse_result_list()
        self._expect_word("from")
        tables = [self._identifier()]
        while self._accept_punct(","):
            tables.append(self._identifier())
        condition: QueryNode | None = None
        if self._accept_word("where"):
            condition = self.parse_expression()
        if self._peek() is not None:
            raise QueryParseError(f"unexpected trailing input at {self._peek().text!r}")
        return Query(name=name, tables=tables, result_list=result_list, condition=condition)

    def _parse_result_list(self) -> list[ResultColumn]:
        if self._accept_punct("*"):
            return []
        results = [self._parse_result_column()]
        while self._accept_punct(","):
            results.append(self._parse_result_column())
        return results

    def _parse_result_column(self) -> ResultColumn:
        token = self._peek()
        if token is not None and token.kind == "word" and token.lowered in (
            "avg", "sum", "max", "min", "count",
        ):
            aggregate = Aggregate(self._next().lowered)
            self._expect_punct("(")
            attribute = self._identifier()
            self._expect_punct(")")
            return ResultColumn(attribute, aggregate)
        return ResultColumn(self._identifier())

    def parse_expression(self) -> QueryNode:
        parts = [self._parse_and_expr()]
        while self._accept_word("or"):
            parts.append(self._parse_and_expr())
        if len(parts) == 1:
            return parts[0]
        return OrNode(parts)

    def _parse_and_expr(self) -> QueryNode:
        parts = [self._parse_unary()]
        while self._accept_word("and"):
            parts.append(self._parse_unary())
        if len(parts) == 1:
            return parts[0]
        return AndNode(parts)

    def _parse_unary(self) -> QueryNode:
        if self._accept_word("not"):
            inner = self._parse_unary()
            node = NotNode(inner)
            try:
                return node.simplify()
            except ValueError:
                return node
        if self._accept_punct("("):
            expression = self.parse_expression()
            self._expect_punct(")")
            return expression
        return self._parse_comparison()

    def _parse_comparison(self) -> QueryNode:
        attribute = self._identifier()
        if self._accept_word("between"):
            low = self._number()
            self._expect_word("and")
            high = self._number()
            leaf = PredicateLeaf(RangePredicate(attribute, low, high))
        elif self._accept_word("in"):
            self._expect_punct("(")
            members = [self._literal()]
            while self._accept_punct(","):
                members.append(self._literal())
            self._expect_punct(")")
            leaf = PredicateLeaf(SetMembershipPredicate(attribute, tuple(members)))
        else:
            token = self._next()
            if token.kind != "op":
                raise QueryParseError(f"expected a comparison operator, found {token.text!r}")
            operator_text = "!=" if token.text == "<>" else token.text
            value = self._literal()
            if isinstance(value, str):
                if operator_text != "=":
                    raise QueryParseError(
                        f"string comparisons only support '=', found {operator_text!r}"
                    )
                leaf = PredicateLeaf(StringMatchPredicate(attribute, value))
            else:
                leaf = PredicateLeaf(
                    AttributePredicate(attribute, ComparisonOperator(operator_text), value)
                )
        if self._accept_word("weight"):
            leaf.with_weight(self._number())
        return leaf


def parse_query(text: str, name: str = "query") -> Query:
    """Parse a full ``SELECT ... FROM ... WHERE ...`` statement into a :class:`Query`."""
    return _Parser(_tokenize(text)).parse_query(name)


def parse_condition(text: str) -> QueryNode:
    """Parse just a condition expression (the part after ``WHERE``)."""
    parser = _Parser(_tokenize(text))
    expression = parser.parse_expression()
    if parser._peek() is not None:
        raise QueryParseError(f"unexpected trailing input at {parser._peek().text!r}")
    return expression
