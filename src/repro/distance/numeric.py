"""Numeric distance functions (metric datatypes)."""

from __future__ import annotations

import numpy as np

__all__ = [
    "signed_difference",
    "absolute_difference",
    "relative_difference",
    "cyclic_difference",
]


def signed_difference(value, reference):
    """Signed numerical difference ``value - reference``.

    The sign carries the *direction* of the deviation, which the
    2D arrangement (Fig. 1b) translates into a quadrant.
    """
    return np.asarray(value, dtype=float) - float(reference)


def absolute_difference(value, reference):
    """Absolute numerical difference ``|value - reference|`` (the paper's default)."""
    return np.abs(np.asarray(value, dtype=float) - float(reference))


def relative_difference(value, reference):
    """Difference relative to the magnitude of the reference.

    Useful when attributes live on very different scales (the paper's
    haemoglobin vs. erythrocyte example): a deviation of 1 g/dl and one of
    1000 /dl can both be "one reference unit".  A zero reference falls back
    to the absolute difference.
    """
    reference = float(reference)
    values = np.asarray(value, dtype=float)
    if reference == 0.0:
        return np.abs(values)
    return np.abs(values - reference) / abs(reference)


def cyclic_difference(value, reference, period: float = 360.0):
    """Shortest distance on a circle of circumference ``period``.

    Appropriate for wind direction (degrees), hour-of-day and other cyclic
    attributes of the environmental data.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    values = np.asarray(value, dtype=float)
    raw = np.abs(values - float(reference)) % period
    return np.minimum(raw, period - raw)
