"""Spatial distance functions for location-related approximate joins.

The environmental example joins weather and air-pollution measurements
``at-same-location``; when the stations are close by but not identical an
approximate spatial join (graded by the distance between the stations) is
what recovers the intended matches.
"""

from __future__ import annotations

import numpy as np

__all__ = ["euclidean_2d", "manhattan_2d", "haversine_km"]

_EARTH_RADIUS_KM = 6371.0


def euclidean_2d(point, reference):
    """Euclidean distance between 2D points.

    ``point`` may be a single ``(x, y)`` pair or an ``(n, 2)`` array;
    ``reference`` is a single ``(x, y)`` pair.
    """
    points = np.atleast_2d(np.asarray(point, dtype=float))
    ref = np.asarray(reference, dtype=float)
    distances = np.hypot(points[:, 0] - ref[0], points[:, 1] - ref[1])
    return distances if distances.size > 1 else float(distances[0])


def manhattan_2d(point, reference):
    """Manhattan (city-block) distance between 2D points."""
    points = np.atleast_2d(np.asarray(point, dtype=float))
    ref = np.asarray(reference, dtype=float)
    distances = np.abs(points[:, 0] - ref[0]) + np.abs(points[:, 1] - ref[1])
    return distances if distances.size > 1 else float(distances[0])


def haversine_km(point, reference):
    """Great-circle distance in kilometres between (latitude, longitude) pairs."""
    points = np.atleast_2d(np.asarray(point, dtype=float))
    ref = np.asarray(reference, dtype=float)
    lat1, lon1 = np.radians(points[:, 0]), np.radians(points[:, 1])
    lat2, lon2 = np.radians(ref[0]), np.radians(ref[1])
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    distances = 2.0 * _EARTH_RADIUS_KM * np.arcsin(np.sqrt(a))
    return distances if distances.size > 1 else float(distances[0])
