"""Distance matrices for ordinal and nominal datatypes."""

from __future__ import annotations

from typing import Any, Hashable, Mapping, Sequence

import numpy as np

__all__ = ["DistanceMatrix", "ordinal_distance"]


class DistanceMatrix:
    """Explicit pairwise distances between categorical values.

    The paper names "distance matrices (for ordinal and nominal types)" as
    the canonical distance for non-metric attributes: the application
    supplies how far apart ``'rain'`` and ``'drizzle'`` are, or how related
    two diagnosis codes should be considered.

    Parameters
    ----------
    entries:
        Mapping ``(value_a, value_b) -> distance``.  Distances are
        symmetrised automatically; the diagonal is always 0.
    default:
        Distance returned for pairs not present in the matrix (defaults to
        the largest declared distance, or 1.0 for an empty matrix).
    """

    def __init__(self, entries: Mapping[tuple[Hashable, Hashable], float],
                 default: float | None = None):
        self._entries: dict[tuple[Hashable, Hashable], float] = {}
        for (a, b), distance in entries.items():
            if distance < 0:
                raise ValueError(f"distance for pair ({a!r}, {b!r}) must be non-negative")
            self._entries[(a, b)] = float(distance)
            self._entries[(b, a)] = float(distance)
        if default is None:
            default = max(self._entries.values(), default=1.0)
        self.default = float(default)

    def __call__(self, value: Hashable, reference: Hashable) -> float:
        """Distance between ``value`` and ``reference``."""
        if value == reference:
            return 0.0
        return self._entries.get((value, reference), self.default)

    def pairwise(self, values: Sequence[Any], reference: Hashable) -> np.ndarray:
        """Vectorised lookup for a whole column against one reference value."""
        return np.array([self(v, reference) for v in values], dtype=float)

    @classmethod
    def from_ordering(cls, ordered_values: Sequence[Hashable]) -> "DistanceMatrix":
        """Build a matrix for an ordinal type: distance = rank difference.

        For example ``['low', 'medium', 'high']`` gives d(low, high) = 2.
        """
        entries: dict[tuple[Hashable, Hashable], float] = {}
        for i, a in enumerate(ordered_values):
            for j, b in enumerate(ordered_values):
                if i < j:
                    entries[(a, b)] = float(j - i)
        return cls(entries, default=float(len(ordered_values)))

    @property
    def known_values(self) -> set[Hashable]:
        """All values mentioned in the matrix."""
        values: set[Hashable] = set()
        for a, b in self._entries:
            values.add(a)
            values.add(b)
        return values


def ordinal_distance(ordered_values: Sequence[Hashable]):
    """Return a distance function over an ordinal value list (rank difference)."""
    ranks = {value: i for i, value in enumerate(ordered_values)}

    def distance(value: Hashable, reference: Hashable) -> float:
        if value == reference:
            return 0.0
        if value not in ranks or reference not in ranks:
            return float(len(ordered_values))
        return float(abs(ranks[value] - ranks[reference]))

    return distance
