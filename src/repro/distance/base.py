"""Distance-function protocol and registry.

A *distance function* maps a data value and a query reference value to a
non-negative (or signed) float; zero means "the value fulfils the query
reference exactly".  VisDB is application independent precisely because
these functions are pluggable: the registry lets applications register their
own functions per datatype or per attribute and lets the pipeline pick a
sensible default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

import numpy as np

from repro.query.schema import Attribute, DataType

__all__ = ["DistanceFunction", "DistanceRegistry", "default_registry"]


class DistanceFunction(Protocol):
    """Callable protocol: ``distance(value, reference) -> float``.

    Implementations may also accept NumPy arrays for ``value`` and return
    arrays (all built-in numeric distances do), but scalar operation is the
    minimum contract.
    """

    def __call__(self, value: Any, reference: Any) -> float:  # pragma: no cover - protocol
        ...


@dataclass
class DistanceRegistry:
    """Registry resolving distance functions by attribute name or datatype.

    Resolution order: exact attribute-name registration, then datatype
    registration, then the numeric default (absolute difference).
    """

    by_attribute: dict[str, Callable] = field(default_factory=dict)
    by_datatype: dict[DataType, Callable] = field(default_factory=dict)

    def register_attribute(self, attribute_name: str, function: Callable) -> None:
        """Register a distance function for one specific attribute."""
        self.by_attribute[attribute_name] = function

    def register_datatype(self, datatype: DataType, function: Callable) -> None:
        """Register a distance function for every attribute of a datatype."""
        self.by_datatype[datatype] = function

    def resolve(self, attribute: Attribute | str) -> Callable:
        """Return the distance function to use for ``attribute``."""
        from repro.distance.numeric import absolute_difference

        if isinstance(attribute, str):
            if attribute in self.by_attribute:
                return self.by_attribute[attribute]
            return absolute_difference
        if attribute.name in self.by_attribute:
            return self.by_attribute[attribute.name]
        if attribute.datatype in self.by_datatype:
            return self.by_datatype[attribute.datatype]
        return self._default_for(attribute.datatype)

    @staticmethod
    def _default_for(datatype: DataType) -> Callable:
        from repro.distance.numeric import absolute_difference
        from repro.distance.strings import edit_distance
        from repro.distance.temporal import time_difference

        if datatype is DataType.STRING:
            return edit_distance
        if datatype is DataType.DATETIME:
            return time_difference
        return absolute_difference

    def copy(self) -> "DistanceRegistry":
        """Return an independent copy of the registry."""
        return DistanceRegistry(dict(self.by_attribute), dict(self.by_datatype))


def default_registry() -> DistanceRegistry:
    """Return a registry pre-populated with the standard datatype defaults."""
    from repro.distance.numeric import absolute_difference
    from repro.distance.strings import edit_distance
    from repro.distance.temporal import time_difference

    registry = DistanceRegistry()
    registry.register_datatype(DataType.NUMERIC, absolute_difference)
    registry.register_datatype(DataType.ORDINAL, absolute_difference)
    registry.register_datatype(DataType.STRING, edit_distance)
    registry.register_datatype(DataType.DATETIME, time_difference)
    return registry


def as_array_distance(function: Callable) -> Callable[[np.ndarray, Any], np.ndarray]:
    """Lift a scalar distance function to operate element-wise on arrays."""

    def vectorised(values: np.ndarray, reference: Any) -> np.ndarray:
        return np.array([float(function(v, reference)) for v in values], dtype=float)

    return vectorised
