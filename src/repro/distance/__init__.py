"""Distance functions for the approximate evaluation of selection predicates.

The paper (section 3): "The distance functions are datatype and application
dependent and must be provided by the application.  Examples for distance
functions are the numerical difference (for metric types), distance matrices
(for ordinal and nominal types), lexicographical, character-wise, substring
or phonetic difference (for strings) and so on."

This package implements all of those, plus the temporal and spatial
distances needed by the environmental example's approximate joins and the
multi-attribute combinators (Euclidean, L_p, Mahalanobis) mentioned for
special applications in section 5.2.
"""

from repro.distance.base import DistanceFunction, DistanceRegistry, default_registry
from repro.distance.numeric import (
    absolute_difference,
    signed_difference,
    relative_difference,
    cyclic_difference,
)
from repro.distance.strings import (
    lexicographic_distance,
    character_distance,
    substring_distance,
    edit_distance,
    phonetic_distance,
    soundex,
)
from repro.distance.matrix import DistanceMatrix, ordinal_distance
from repro.distance.temporal import time_difference, lagged_time_difference, time_of_day_difference
from repro.distance.spatial import euclidean_2d, manhattan_2d, haversine_km
from repro.distance.combinators import euclidean_combination, lp_combination, mahalanobis_combination

__all__ = [
    "DistanceFunction",
    "DistanceRegistry",
    "default_registry",
    "absolute_difference",
    "signed_difference",
    "relative_difference",
    "cyclic_difference",
    "lexicographic_distance",
    "character_distance",
    "substring_distance",
    "edit_distance",
    "phonetic_distance",
    "soundex",
    "DistanceMatrix",
    "ordinal_distance",
    "time_difference",
    "lagged_time_difference",
    "time_of_day_difference",
    "euclidean_2d",
    "manhattan_2d",
    "haversine_km",
    "euclidean_combination",
    "lp_combination",
    "mahalanobis_combination",
]
