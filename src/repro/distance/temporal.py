"""Temporal distance functions.

Timestamps in the synthetic environmental database are stored as minutes
since the start of the measurement series (a numeric encoding, as the paper
uses numeric differences for its environmental data).  These helpers cover
the plain time difference, the *lagged* difference used for the
``with-time-diff(120)`` connection (a hypothesised 2-hour lag between
temperature and ozone) and a cyclic time-of-day difference.
"""

from __future__ import annotations

import numpy as np

from repro.distance.numeric import cyclic_difference

__all__ = ["time_difference", "lagged_time_difference", "time_of_day_difference"]

#: Minutes per day, used by the time-of-day distance.
MINUTES_PER_DAY = 24 * 60


def time_difference(value, reference):
    """Absolute difference between two timestamps (same unit as stored)."""
    return np.abs(np.asarray(value, dtype=float) - float(reference))


def lagged_time_difference(value, reference, lag: float = 0.0):
    """Distance of the observed time difference from a hypothesised lag.

    ``|(value - reference)| - lag`` in absolute value: zero when the two
    timestamps are exactly ``lag`` apart, growing as the observed lag
    deviates from the hypothesis.  With ``lag=0`` this degenerates to the
    plain time difference.
    """
    observed = np.abs(np.asarray(value, dtype=float) - float(reference))
    return np.abs(observed - float(lag))


def time_of_day_difference(value, reference, minutes_per_day: float = MINUTES_PER_DAY):
    """Cyclic distance between the time-of-day components of two timestamps.

    Useful for diurnal patterns: 23:30 and 00:30 are one hour apart, not 23.
    """
    values = np.asarray(value, dtype=float) % minutes_per_day
    ref = float(reference) % minutes_per_day
    return cyclic_difference(values, ref, period=minutes_per_day)
