"""Multi-attribute distance combinators.

Section 5.2 of the paper: "for special applications other specific distance
functions such as the Euclidean, L_p or the Mahalanobis distance in
n-dimensional space may be used to combine the values of multiple
attributes."  These combinators take a matrix of per-attribute (already
normalized) distances, one row per data item and one column per attribute,
plus per-attribute weights, and return one combined distance per item.
"""

from __future__ import annotations

import numpy as np

__all__ = ["euclidean_combination", "lp_combination", "mahalanobis_combination"]


def _validate(distance_matrix: np.ndarray, weights: np.ndarray | None) -> tuple[np.ndarray, np.ndarray]:
    matrix = np.asarray(distance_matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("distance_matrix must be 2-dimensional (items x attributes)")
    if weights is None:
        weight_array = np.ones(matrix.shape[1], dtype=float)
    else:
        weight_array = np.asarray(weights, dtype=float)
        if weight_array.shape != (matrix.shape[1],):
            raise ValueError(
                f"weights must have one entry per attribute "
                f"({matrix.shape[1]}), got shape {weight_array.shape}"
            )
        if np.any(weight_array < 0):
            raise ValueError("weights must be non-negative")
    return matrix, weight_array


def euclidean_combination(distance_matrix, weights=None) -> np.ndarray:
    """Weighted Euclidean combination: ``sqrt(sum_j w_j * d_ij^2)``."""
    matrix, weight_array = _validate(distance_matrix, weights)
    return np.sqrt(np.sum(weight_array[None, :] * matrix ** 2, axis=1))


def lp_combination(distance_matrix, weights=None, p: float = 2.0) -> np.ndarray:
    """Weighted L_p combination: ``(sum_j w_j * d_ij^p)^(1/p)``.

    ``p = 1`` is the weighted city-block distance; ``p -> inf`` approaches
    the maximum coordinate (use a large ``p`` to approximate it).
    """
    if p <= 0:
        raise ValueError("p must be positive")
    matrix, weight_array = _validate(distance_matrix, weights)
    return np.power(np.sum(weight_array[None, :] * np.abs(matrix) ** p, axis=1), 1.0 / p)


def mahalanobis_combination(distance_matrix, covariance=None) -> np.ndarray:
    """Mahalanobis combination using the (estimated) covariance of the distances.

    When ``covariance`` is omitted it is estimated from the distance matrix
    itself; a small ridge keeps the inverse well defined for degenerate
    (constant) attributes.
    """
    matrix = np.asarray(distance_matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("distance_matrix must be 2-dimensional (items x attributes)")
    n_attributes = matrix.shape[1]
    if covariance is None:
        if matrix.shape[0] < 2:
            covariance = np.eye(n_attributes)
        else:
            covariance = np.cov(matrix, rowvar=False)
            covariance = np.atleast_2d(covariance)
    covariance = np.asarray(covariance, dtype=float)
    if covariance.shape != (n_attributes, n_attributes):
        raise ValueError(
            f"covariance must be {n_attributes}x{n_attributes}, got {covariance.shape}"
        )
    ridge = 1e-9 * np.eye(n_attributes)
    inverse = np.linalg.inv(covariance + ridge)
    return np.sqrt(np.einsum("ij,jk,ik->i", matrix, inverse, matrix).clip(min=0.0))
