"""String distance functions: lexicographical, character-wise, substring,
edit (Levenshtein) and phonetic (Soundex) differences.

These are the string distances the paper enumerates for approximate string
predicates and for approximately joining independent databases on textual
keys (names with typos, differing spellings of the same station, ...).
All functions return 0.0 for identical inputs and grow with dissimilarity.
"""

from __future__ import annotations

__all__ = [
    "lexicographic_distance",
    "character_distance",
    "substring_distance",
    "edit_distance",
    "soundex",
    "phonetic_distance",
]


def lexicographic_distance(value: str, reference: str) -> float:
    """Distance based on the first differing character position.

    Strings sharing a long common prefix are close; the distance is
    ``1 / (p + 1)`` scaled into ``(0, 1]`` where ``p`` is the length of the
    common prefix, and exactly 0 for equal strings.
    """
    if value == reference:
        return 0.0
    prefix = 0
    for a, b in zip(value, reference):
        if a != b:
            break
        prefix += 1
    return 1.0 / (prefix + 1)


def character_distance(value: str, reference: str) -> float:
    """Character-wise (Hamming-like) difference.

    Counts positions where the characters differ; length differences count
    fully.  This is the "character-wise difference" of the paper.
    """
    shorter, longer = sorted((value, reference), key=len)
    mismatches = sum(1 for a, b in zip(shorter, longer) if a != b)
    return float(mismatches + (len(longer) - len(shorter)))


def _longest_common_substring(value: str, reference: str) -> int:
    if not value or not reference:
        return 0
    previous = [0] * (len(reference) + 1)
    best = 0
    for i in range(1, len(value) + 1):
        current = [0] * (len(reference) + 1)
        for j in range(1, len(reference) + 1):
            if value[i - 1] == reference[j - 1]:
                current[j] = previous[j - 1] + 1
                if current[j] > best:
                    best = current[j]
        previous = current
    return best


def substring_distance(value: str, reference: str) -> float:
    """Distance based on the longest common substring.

    ``1 - lcs / max(len)``: 0 when one string equals the other, close to 1
    when they share no run of characters.
    """
    if value == reference:
        return 0.0
    longest = max(len(value), len(reference))
    if longest == 0:
        return 0.0
    return 1.0 - _longest_common_substring(value, reference) / longest


def edit_distance(value: str, reference: str) -> float:
    """Levenshtein edit distance (insertions, deletions, substitutions)."""
    if value == reference:
        return 0.0
    if not value:
        return float(len(reference))
    if not reference:
        return float(len(value))
    previous = list(range(len(reference) + 1))
    for i, a in enumerate(value, start=1):
        current = [i] + [0] * len(reference)
        for j, b in enumerate(reference, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (a != b)
            current[j] = min(insert_cost, delete_cost, substitute_cost)
        previous = current
    return float(previous[-1])


_SOUNDEX_CODES = {
    **dict.fromkeys("BFPV", "1"),
    **dict.fromkeys("CGJKQSXZ", "2"),
    **dict.fromkeys("DT", "3"),
    **dict.fromkeys("L", "4"),
    **dict.fromkeys("MN", "5"),
    **dict.fromkeys("R", "6"),
}


def soundex(value: str) -> str:
    """Classic four-character Soundex code of a word (empty input -> ``"0000"``)."""
    letters = [c for c in value.upper() if c.isalpha()]
    if not letters:
        return "0000"
    first = letters[0]
    code = [first]
    previous = _SOUNDEX_CODES.get(first, "")
    for letter in letters[1:]:
        digit = _SOUNDEX_CODES.get(letter, "")
        if digit and digit != previous:
            code.append(digit)
        if letter not in "HW":
            previous = digit
    return (("".join(code)) + "000")[:4]


def phonetic_distance(value: str, reference: str) -> float:
    """Phonetic difference: edit distance between the Soundex codes (0..4)."""
    return edit_distance(soundex(value), soundex(reference))
