"""VisDB reproduction: visual feedback queries for data mining of large databases.

Reproduction of Keim, Kriegel & Seidl, "Supporting Data Mining of Large
Databases by Visual Feedback Queries", ICDE 1994.

Quickstart::

    from repro import VisualFeedbackQuery, QueryBuilder, condition
    from repro.datasets import environmental_database

    db = environmental_database(hours=2000, seed=7)
    query = (
        QueryBuilder("hot-days", db)
        .use_tables("Weather")
        .where(condition("Temperature", ">", 25.0))
        .build()
    )
    feedback = VisualFeedbackQuery(db, query, percentage=0.4).execute()
    print(feedback.statistics.as_dict())
"""

from repro.core import (
    PipelineConfig,
    QueryFeedback,
    ReductionMethod,
    RelevanceScale,
    ScreenSpec,
    VisualFeedbackQuery,
)
from repro.query import (
    AndNode,
    NotNode,
    OrNode,
    PredicateLeaf,
    Query,
    QueryBuilder,
    parse_query,
)
from repro.query.builder import between, condition
from repro.storage import Database, Table

__version__ = "1.0.0"

__all__ = [
    "VisualFeedbackQuery",
    "PipelineConfig",
    "ScreenSpec",
    "QueryFeedback",
    "ReductionMethod",
    "RelevanceScale",
    "Query",
    "QueryBuilder",
    "parse_query",
    "condition",
    "between",
    "AndNode",
    "OrNode",
    "NotNode",
    "PredicateLeaf",
    "Database",
    "Table",
    "__version__",
]
