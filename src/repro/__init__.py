"""VisDB reproduction: visual feedback queries for data mining of large databases.

Reproduction of Keim, Kriegel & Seidl, "Supporting Data Mining of Large
Databases by Visual Feedback Queries", ICDE 1994.

Quickstart::

    from repro import QueryEngine, QueryBuilder, condition
    from repro.datasets import environmental_database

    db = environmental_database(hours=2000, seed=7)
    query = (
        QueryBuilder("hot-days", db)
        .use_tables("Weather")
        .where(condition("Temperature", ">", 25.0))
        .build()
    )
    prepared = QueryEngine(db, percentage=0.4).prepare(query)
    feedback = prepared.execute()
    print(feedback.statistics.as_dict())

``VisualFeedbackQuery(db, query, percentage=0.4).execute()`` remains as the
one-shot facade over the same engine.
"""

from repro.backend import (
    ExecBackend,
    available_backends,
    register_backend,
    unregister_backend,
)
from repro.core import (
    FeedbackDelta,
    FeedbackFrame,
    PipelineConfig,
    PreparedQuery,
    QueryEngine,
    QueryFeedback,
    ReductionMethod,
    RelevanceScale,
    ScreenSpec,
    VisualFeedbackQuery,
)
from repro.query import (
    AndNode,
    NotNode,
    OrNode,
    PredicateLeaf,
    Query,
    QueryBuilder,
    parse_query,
)
from repro.query.builder import between, condition
from repro.service import FeedbackProtocolServer, FeedbackService, ServiceConfig
from repro.storage import Database, Table

__version__ = "1.3.0"

__all__ = [
    "ExecBackend",
    "available_backends",
    "register_backend",
    "unregister_backend",
    "QueryEngine",
    "PreparedQuery",
    "VisualFeedbackQuery",
    "FeedbackService",
    "FeedbackProtocolServer",
    "ServiceConfig",
    "PipelineConfig",
    "ScreenSpec",
    "QueryFeedback",
    "FeedbackFrame",
    "FeedbackDelta",
    "ReductionMethod",
    "RelevanceScale",
    "Query",
    "QueryBuilder",
    "parse_query",
    "condition",
    "between",
    "AndNode",
    "OrNode",
    "NotNode",
    "PredicateLeaf",
    "Database",
    "Table",
    "__version__",
]
