"""Frame snapshots and the versioned frame/delta wire model.

One pipeline run produces one :class:`FrameSnapshot` -- the relevance
feedback plus the rendered visualization windows of the paper's
"Visualization and Query Modification" screen.  Windows are built through
:class:`WindowCache`, which fingerprints what a window actually shows (the
displayed item order and the node's distances *at those items*) and
re-renders only windows whose fingerprint changed: after a weight change
deep in an OR subtree, the untouched predicate windows are served from the
cache byte-for-byte.

The second half of this module is the **v2 wire model**: a client-side
frame is a plain JSON-able dictionary (statistics + display order + the
windows' cell arrays), :func:`frame_payload` encodes a snapshot as a full
frame, :func:`delta_payload` encodes only what changed against a base
snapshot (cell patches per window, computed through
:meth:`~repro.vis.window.VisualizationWindow.diff_cells`), and
:func:`apply_frame_update` is the reference client: applying a delta
stream reconstructs -- field for field -- the frame a cold full snapshot
would show.  The differential suite in ``tests/test_stream_delta.py``
enforces exactly that equivalence.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.result import FeedbackStatistics, QueryFeedback
from repro.query.expr import NodePath
from repro.query.fingerprint import stable_fingerprint
from repro.vis.arrangement import window_for_node
from repro.vis.layout import MultiWindowLayout
from repro.vis.window import VisualizationWindow

__all__ = [
    "FrameSnapshot",
    "WindowCache",
    "window_fingerprint",
    "FrameGapError",
    "path_key",
    "parse_path_key",
    "window_state",
    "frame_payload",
    "delta_payload",
    "frame_state",
    "apply_frame_update",
]


def _digest(array: np.ndarray) -> str:
    """Content digest of one array (shape- and dtype-qualified)."""
    array = np.ascontiguousarray(array)
    h = hashlib.blake2b(digest_size=12)
    h.update(str(array.dtype).encode())
    h.update(str(array.shape).encode())
    h.update(array.tobytes())
    return h.hexdigest()


def window_fingerprint(feedback: QueryFeedback, path: NodePath,
                       width: int, height: int, pixels_per_item: int) -> str:
    """Identity of everything one window's pixels depend on.

    A window shows the displayed items (in overall relevance order) coloured
    by the node's normalized distances at those items; the geometry adds the
    window size and the pixels-per-item block factor.  Distances of items
    outside the displayed set cannot change the window, so they are
    deliberately not part of the fingerprint -- that is what makes the cache
    hit when an event reshuffles only off-screen items.  The window *title*
    (the node label, which embeds the current bounds) is deliberately not
    covered either: :class:`WindowCache` refreshes a stale title on the hit
    path without re-rendering a single pixel.
    """
    return stable_fingerprint(
        "window", tuple(path), width, height, pixels_per_item,
        _digest(feedback.display_order),
        _digest(feedback.ordered_distances(path)),
    )


@dataclass
class FrameSnapshot:
    """The state handed to a client after one pipeline run."""

    session_id: str
    #: Run number within the session (0 = the initial execution at open).
    sequence: int
    #: Coalesced events applied by this run.
    events_applied: int
    statistics: FeedbackStatistics
    feedback: QueryFeedback
    windows: dict[NodePath, VisualizationWindow]
    #: Paths re-rendered by this run; every other window was a cache hit.
    rendered_fresh: tuple[NodePath, ...]
    run_seconds: float
    #: True when the displayed set (and every window) is provably unchanged
    #: from the previous frame -- the run was served entirely from caches,
    #: so clients may skip re-uploading pixel data.
    display_unchanged: bool = False
    #: Engine frame version of this snapshot (monotonic per session) and
    #: the frame it was derived from; what the v2 delta stream acks.
    frame_id: int = 0
    base_frame_id: int | None = None
    #: The trace of the run that produced this frame (None when tracing is
    #: off).  Kept on the snapshot so the protocol layer can attach its
    #: encode/send spans to the same tree when the frame is pulled.
    trace: object | None = field(default=None, repr=False, compare=False)
    #: Lazily cached wire encoding of the full v2 frame (see
    #: :meth:`payload_bytes`).
    _encoded_payload: bytes | None = field(default=None, repr=False, compare=False)

    def payload_bytes(self) -> bytes:
        """The full v2 frame payload of this snapshot, encoded exactly once.

        Serializing a full frame walks every window's cell arrays
        (O(pixels)); every ``delta`` pull needs the encoded size for the
        delta-vs-snapshot choice, and ``subscribe``/``resync``/gap replies
        send the bytes themselves -- so many streaming clients would
        otherwise re-serialize the same unchanged frame once per pull.
        The snapshot is immutable after construction, and a racing double
        encode would produce identical bytes, so the lazy cache needs no
        lock.
        """
        if self._encoded_payload is None:
            self._encoded_payload = json.dumps(
                {"ok": True, **frame_payload(self)}).encode()
        return self._encoded_payload

    def as_dict(self, top: int = 10) -> dict[str, object]:
        """JSON-serializable summary (protocol form, without pixel data)."""
        overall = self.feedback.ordered_distances(())
        order = self.feedback.display_order
        k = max(0, min(int(top), len(order)))
        return {
            "session": self.session_id,
            "sequence": self.sequence,
            "events_applied": self.events_applied,
            "statistics": self.statistics.as_dict(),
            "run_ms": round(self.run_seconds * 1e3, 3),
            "display_unchanged": self.display_unchanged,
            "frame_id": self.frame_id,
            "base_frame_id": self.base_frame_id,
            "windows": [
                {
                    "path": list(path),
                    "title": window.title,
                    "width": window.width,
                    "height": window.height,
                    "items": window.item_count(),
                    "occupancy": round(window.occupancy, 4),
                    "fresh": path in self.rendered_fresh,
                }
                for path, window in sorted(
                    self.windows.items(), key=lambda item: (len(item[0]), item[0])
                )
            ],
            "top_items": [
                {"row": int(order[i]), "distance": float(overall[i])}
                for i in range(k)
            ],
        }


class WindowCache:
    """Per-session cache of rendered windows, keyed by result fingerprint."""

    def __init__(self, layout: MultiWindowLayout | None = None):
        self.layout = layout or MultiWindowLayout()
        self._cache: dict[NodePath, tuple[str, VisualizationWindow]] = {}
        self.hits = 0
        self.misses = 0

    def windows(self, feedback: QueryFeedback) -> tuple[
            dict[NodePath, VisualizationWindow], tuple[NodePath, ...]]:
        """Overall + top-level windows for ``feedback``; re-renders only changes.

        Returns the window mapping plus the tuple of paths that were
        actually re-rendered this call.
        """
        layout = self.layout
        paths: list[NodePath] = [()]
        paths.extend(p for p in feedback.top_level_paths() if p != ())
        result: dict[NodePath, VisualizationWindow] = {}
        fresh: list[NodePath] = []
        for path in paths:
            fingerprint = window_fingerprint(
                feedback, path, layout.window_width, layout.window_height,
                layout.pixels_per_item,
            )
            cached = self._cache.get(path)
            if cached is not None and cached[0] == fingerprint:
                self.hits += 1
                window = cached[1]
                label = feedback.node_feedback[path].label
                if window.title != label:
                    # Same pixels, new title (a slider move rewrites the
                    # node label every tick): rewrap the cached arrays
                    # instead of re-rendering -- and keep the refreshed
                    # title cached so the next hit compares equal.
                    window = VisualizationWindow(
                        label, window.distances, window.item_ids,
                        dict(window.metadata),
                    )
                    self._cache[path] = (fingerprint, window)
                result[path] = window
                continue
            self.misses += 1
            window = window_for_node(
                feedback, path, layout.window_width, layout.window_height,
                pixels_per_item=layout.pixels_per_item,
            )
            self._cache[path] = (fingerprint, window)
            result[path] = window
            fresh.append(path)
        # Windows of paths that no longer exist (query reshaped) are dropped
        # so the cache cannot grow past the current query's window count.
        for stale in [p for p in self._cache if p not in result]:
            del self._cache[stale]
        return result, tuple(fresh)

    def clear(self) -> None:
        self._cache.clear()


# --------------------------------------------------------------------------- #
# The v2 wire model: full frames, deltas and the reference client
# --------------------------------------------------------------------------- #
class FrameGapError(ValueError):
    """A delta's base frame does not match the client's current frame.

    The reference client raises this instead of guessing; a real client
    answers it with a ``resync`` request for a full frame.
    """


def path_key(path: NodePath) -> str:
    """Wire form of a node path (JSON object keys must be strings)."""
    return "/".join(str(i) for i in path)


def parse_path_key(key: str) -> NodePath:
    """Inverse of :func:`path_key` (the empty string is the root path)."""
    if not key:
        return ()
    return tuple(int(part) for part in key.split("/"))


def _encode_distances(values: np.ndarray) -> list:
    """Flat distance list with ``None`` for NaN (JSON has no NaN literal)."""
    return [None if v != v else v for v in values.reshape(-1).tolist()]


def window_state(window: VisualizationWindow) -> dict:
    """The client-side form of one window: geometry plus flat cell arrays."""
    return {
        "title": window.title,
        "width": window.width,
        "height": window.height,
        "distances": _encode_distances(window.distances),
        "item_ids": window.item_ids.reshape(-1).tolist(),
    }


def frame_payload(snapshot: FrameSnapshot) -> dict:
    """Encode a snapshot as a full v2 frame (``mode: "snapshot"``).

    This is the resync unit: everything a client needs to rebuild its
    frame state from nothing.  The windows dominate the size -- O(pixels)
    per window -- which is exactly what :func:`delta_payload` avoids.
    """
    return {
        "type": "frame",
        "mode": "snapshot",
        "session": snapshot.session_id,
        "sequence": snapshot.sequence,
        "events_applied": snapshot.events_applied,
        "run_ms": round(snapshot.run_seconds * 1e3, 3),
        "frame_id": snapshot.frame_id,
        "base_frame_id": snapshot.base_frame_id,
        "statistics": snapshot.statistics.as_dict(),
        "display_order": snapshot.feedback.display_order.tolist(),
        "windows": {
            path_key(path): window_state(window)
            for path, window in snapshot.windows.items()
        },
    }


def delta_payload(base: FrameSnapshot, snapshot: FrameSnapshot) -> dict:
    """Encode ``snapshot`` as a delta against ``base`` (``mode: "delta"``).

    Per window, the encoding is chosen cell-diff first: an identical window
    object (the render-cache hit that dominates steady drags) costs a
    one-entry ``{"unchanged": true}``, a changed window ships only its
    changed cells, and a window with no cell-level relation (new path,
    resized, retitled) ships wholesale.  The displayed order is included in
    full only when it changed -- it is capacity-bounded, never O(n).

    Applying the result to a client state holding ``base`` reconstructs
    exactly the state :func:`frame_payload` of ``snapshot`` would build.
    """
    base_order = base.feedback.display_order
    new_order = snapshot.feedback.display_order
    if len(base_order) == len(new_order) and np.array_equal(base_order, new_order):
        display: dict = {"unchanged": True}
    else:
        new_sorted = np.sort(new_order)
        old_sorted = np.sort(base_order)
        display = {
            "order": new_order.tolist(),
            "entered": np.setdiff1d(new_sorted, old_sorted,
                                    assume_unique=True).tolist(),
            "left": np.setdiff1d(old_sorted, new_sorted,
                                 assume_unique=True).tolist(),
        }
    windows: dict[str, dict] = {}
    for path, window in snapshot.windows.items():
        key = path_key(path)
        previous = base.windows.get(path)
        diff = window.diff_cells(previous)
        if diff is None:
            windows[key] = {"full": window_state(window)}
            continue
        # A slider move rewrites the node label (the window title) on every
        # tick while usually leaving the pixels alone; titles therefore ride
        # the cell patch as a field instead of forcing a full window.
        title_changed = previous.title != window.title
        if len(diff) == 0 and not title_changed:
            windows[key] = {"unchanged": True}
        else:
            distances = window.distances.reshape(-1)[diff]
            item_ids = window.item_ids.reshape(-1)[diff]
            entry: dict = {"cells": [
                [int(i), None if d != d else float(d), int(item)]
                for i, d, item in zip(diff.tolist(), distances.tolist(),
                                      item_ids.tolist())
            ]}
            if title_changed:
                entry["title"] = window.title
            windows[key] = entry
    removed = [
        path_key(path) for path in base.windows if path not in snapshot.windows
    ]
    payload = {
        "type": "frame",
        "mode": "delta",
        "session": snapshot.session_id,
        "sequence": snapshot.sequence,
        "events_applied": snapshot.events_applied,
        "run_ms": round(snapshot.run_seconds * 1e3, 3),
        "frame_id": snapshot.frame_id,
        "base_frame_id": base.frame_id,
        "statistics": snapshot.statistics.as_dict(),
        "display": display,
        "windows": windows,
    }
    if removed:
        payload["removed_windows"] = removed
    return payload


def frame_state(payload: dict) -> dict:
    """The reconstructable client state carried by a full frame payload."""
    return {
        "frame_id": payload["frame_id"],
        "statistics": payload["statistics"],
        "display_order": payload["display_order"],
        "windows": payload["windows"],
    }


def apply_frame_update(state: dict | None, payload: dict) -> dict:
    """The reference client: fold one v2 payload into the frame state.

    * ``mode: "snapshot"`` replaces the state wholesale (works from None);
    * ``mode: "unchanged"`` (the server's "you are current" answer) keeps
      the state, after checking the frame id actually matches;
    * ``mode: "delta"`` requires ``state["frame_id"] ==
      payload["base_frame_id"]`` -- on any gap or mismatch a
      :class:`FrameGapError` is raised and the client should resync.

    The function never mutates ``state``; unchanged windows are shared
    between the old and new state (they are never mutated in place either).
    """
    mode = payload.get("mode")
    if mode == "snapshot":
        return frame_state(payload)
    if mode == "unchanged":
        if state is None or state["frame_id"] != payload["frame_id"]:
            raise FrameGapError(
                f"server says frame {payload.get('frame_id')} is current but the "
                f"client holds {None if state is None else state['frame_id']}"
            )
        return state
    if mode != "delta":
        raise ValueError(f"unknown frame mode {mode!r}")
    if state is None or state["frame_id"] != payload["base_frame_id"]:
        raise FrameGapError(
            f"delta base {payload.get('base_frame_id')} does not match client "
            f"frame {None if state is None else state['frame_id']}"
        )
    display = payload["display"]
    order = state["display_order"] if display.get("unchanged") else display["order"]
    windows: dict[str, dict] = {}
    for key, entry in payload["windows"].items():
        if "full" in entry:
            windows[key] = entry["full"]
            continue
        previous = state["windows"].get(key)
        if previous is None:
            raise FrameGapError(
                f"delta patches window {key!r} the client does not have"
            )
        if entry.get("unchanged"):
            windows[key] = previous
            continue
        distances = list(previous["distances"])
        item_ids = list(previous["item_ids"])
        for index, distance, item in entry["cells"]:
            distances[index] = distance
            item_ids[index] = item
        windows[key] = {
            "title": entry.get("title", previous["title"]),
            "width": previous["width"],
            "height": previous["height"],
            "distances": distances,
            "item_ids": item_ids,
        }
    return {
        "frame_id": payload["frame_id"],
        "statistics": payload["statistics"],
        "display_order": order,
        "windows": windows,
    }
