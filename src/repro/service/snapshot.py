"""Frame snapshots: the response unit of the feedback service.

One pipeline run produces one :class:`FrameSnapshot` -- the relevance
feedback plus the rendered visualization windows of the paper's
"Visualization and Query Modification" screen.  Windows are built through
:class:`WindowCache`, which fingerprints what a window actually shows (the
displayed item order and the node's distances *at those items*) and
re-renders only windows whose fingerprint changed: after a weight change
deep in an OR subtree, the untouched predicate windows are served from the
cache byte-for-byte.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.result import FeedbackStatistics, QueryFeedback
from repro.query.expr import NodePath
from repro.query.fingerprint import stable_fingerprint
from repro.vis.arrangement import window_for_node
from repro.vis.layout import MultiWindowLayout
from repro.vis.window import VisualizationWindow

__all__ = ["FrameSnapshot", "WindowCache", "window_fingerprint"]


def _digest(array: np.ndarray) -> str:
    """Content digest of one array (shape- and dtype-qualified)."""
    array = np.ascontiguousarray(array)
    h = hashlib.blake2b(digest_size=12)
    h.update(str(array.dtype).encode())
    h.update(str(array.shape).encode())
    h.update(array.tobytes())
    return h.hexdigest()


def window_fingerprint(feedback: QueryFeedback, path: NodePath,
                       width: int, height: int, pixels_per_item: int) -> str:
    """Identity of everything one window's pixels depend on.

    A window shows the displayed items (in overall relevance order) coloured
    by the node's normalized distances at those items; the geometry adds the
    window size and the pixels-per-item block factor.  Distances of items
    outside the displayed set cannot change the window, so they are
    deliberately not part of the fingerprint -- that is what makes the cache
    hit when an event reshuffles only off-screen items.
    """
    return stable_fingerprint(
        "window", tuple(path), width, height, pixels_per_item,
        _digest(feedback.display_order),
        _digest(feedback.ordered_distances(path)),
    )


@dataclass
class FrameSnapshot:
    """The state handed to a client after one pipeline run."""

    session_id: str
    #: Run number within the session (0 = the initial execution at open).
    sequence: int
    #: Coalesced events applied by this run.
    events_applied: int
    statistics: FeedbackStatistics
    feedback: QueryFeedback
    windows: dict[NodePath, VisualizationWindow]
    #: Paths re-rendered by this run; every other window was a cache hit.
    rendered_fresh: tuple[NodePath, ...]
    run_seconds: float
    #: True when the displayed set (and every window) is provably unchanged
    #: from the previous frame -- the run was served entirely from caches,
    #: so clients may skip re-uploading pixel data.
    display_unchanged: bool = False

    def as_dict(self, top: int = 10) -> dict[str, object]:
        """JSON-serializable summary (protocol form, without pixel data)."""
        overall = self.feedback.ordered_distances(())
        order = self.feedback.display_order
        k = max(0, min(int(top), len(order)))
        return {
            "session": self.session_id,
            "sequence": self.sequence,
            "events_applied": self.events_applied,
            "statistics": self.statistics.as_dict(),
            "run_ms": round(self.run_seconds * 1e3, 3),
            "display_unchanged": self.display_unchanged,
            "windows": [
                {
                    "path": list(path),
                    "title": window.title,
                    "width": window.width,
                    "height": window.height,
                    "items": window.item_count(),
                    "occupancy": round(window.occupancy, 4),
                    "fresh": path in self.rendered_fresh,
                }
                for path, window in sorted(
                    self.windows.items(), key=lambda item: (len(item[0]), item[0])
                )
            ],
            "top_items": [
                {"row": int(order[i]), "distance": float(overall[i])}
                for i in range(k)
            ],
        }


class WindowCache:
    """Per-session cache of rendered windows, keyed by result fingerprint."""

    def __init__(self, layout: MultiWindowLayout | None = None):
        self.layout = layout or MultiWindowLayout()
        self._cache: dict[NodePath, tuple[str, VisualizationWindow]] = {}
        self.hits = 0
        self.misses = 0

    def windows(self, feedback: QueryFeedback) -> tuple[
            dict[NodePath, VisualizationWindow], tuple[NodePath, ...]]:
        """Overall + top-level windows for ``feedback``; re-renders only changes.

        Returns the window mapping plus the tuple of paths that were
        actually re-rendered this call.
        """
        layout = self.layout
        paths: list[NodePath] = [()]
        paths.extend(p for p in feedback.top_level_paths() if p != ())
        result: dict[NodePath, VisualizationWindow] = {}
        fresh: list[NodePath] = []
        for path in paths:
            fingerprint = window_fingerprint(
                feedback, path, layout.window_width, layout.window_height,
                layout.pixels_per_item,
            )
            cached = self._cache.get(path)
            if cached is not None and cached[0] == fingerprint:
                self.hits += 1
                result[path] = cached[1]
                continue
            self.misses += 1
            window = window_for_node(
                feedback, path, layout.window_width, layout.window_height,
                pixels_per_item=layout.pixels_per_item,
            )
            self._cache[path] = (fingerprint, window)
            result[path] = window
            fresh.append(path)
        # Windows of paths that no longer exist (query reshaped) are dropped
        # so the cache cannot grow past the current query's window count.
        for stale in [p for p in self._cache if p not in result]:
            del self._cache[stale]
        return result, tuple(fresh)

    def clear(self) -> None:
        self._cache.clear()
