"""The asyncio feedback service: many sessions, one engine, fair turns.

:class:`FeedbackService` multiplexes concurrent interactive sessions over
one shared :class:`~repro.core.engine.QueryEngine`.  The moving parts:

* **admission control** -- at most ``max_sessions`` concurrent sessions;
  an open beyond that is rejected (counted, with a clear error) instead of
  degrading every existing loop;
* **latest-wins queues** -- each session's events coalesce per control
  (:mod:`repro.service.coalesce`), so a 200-event slider drag that arrives
  while the session's previous run is still executing collapses into one
  pending batch;
* **a fair round-robin scheduler** -- ready sessions (pending events, no
  run in flight) are dispatched in rotation, never more than
  ``max_inflight`` pipeline runs at once.  A session with a firehose of
  events cannot starve a session with a single pending slider move: each
  dispatch takes one whole coalesced batch and then goes to the back of
  the rotation;
* **offloaded execution** -- pipeline runs are CPU-bound NumPy work, so
  they run on a dedicated thread pool via ``run_in_executor`` (the shard
  fan-out below them uses the process-shared shard pool); the event loop
  itself only routes events and snapshots;
* **backpressure** -- per-session queue depth is bounded; beyond it the
  queue sheds oldest-coalesced-first and the submit response says so.

Deterministic teardown: :meth:`aclose` stops the scheduler, drains
in-flight runs, joins the dispatch pool and (when the service created the
engine itself) closes the engine, which also shuts the shard pools down.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass

from repro.core.engine import PipelineConfig, QueryEngine
from repro.interact.events import SessionEvent
from repro.obs import MetricsRegistry, Tracer
from repro.obs import trace as obs
from repro.service.metrics import ServiceMetrics
from repro.service.session import ServiceSession, SessionLimitError, SessionRegistry
from repro.service.snapshot import FrameSnapshot
from repro.storage.database import Database
from repro.storage.table import Table
from repro.vis.layout import MultiWindowLayout

__all__ = ["ServiceConfig", "FeedbackService", "SessionLimitError"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the multi-session scheduler."""

    #: Admission control: maximum concurrent sessions.
    max_sessions: int = 64
    #: Maximum pipeline runs in flight at once (dispatch pool size).
    max_inflight: int = 4
    #: Per-session coalescing-queue depth (distinct pending controls).
    max_queue_depth: int = 64
    #: Expire sessions idle longer than this (None disables expiry).
    idle_ttl: float | None = 600.0
    #: Interval between idle-expiry sweeps (they run on schedule regardless
    #: of traffic, so abandoned sessions expire even under constant load).
    sweep_interval: float = 30.0
    #: Keep each session's executed batches for replay/debugging.  Off by
    #: default: the log grows with session lifetime.  The differential
    #: stress tests switch it on to replay sessions serially.
    record_batches: bool = False
    #: Recent frames retained per session for the v2 delta stream: a client
    #: whose acknowledged frame is still in the ring gets a delta, anything
    #: older resyncs with a full snapshot.  Retained frames share their
    #: arrays with the render/node caches, so the footprint is bounded and
    #: small; 1 disables multi-frame catch-up (previous-frame deltas only
    #: happen when the client pulls every frame).
    frame_retention: int = 4
    #: Span tracing of the event path (see :mod:`repro.obs.trace`).  Off by
    #: default: disabled tracing costs one context-variable read per
    #: instrumentation point.
    trace_enabled: bool = False
    #: Fraction of events traced when tracing is on (1.0 = every event).
    trace_sample: float = 1.0
    #: Events slower than this keep their full span tree plus an explain
    #: record in the slow ring, retrievable via the ``trace`` protocol op.
    trace_budget_ms: float = 250.0
    #: Bounded rings of retained traces (recent / over-budget).
    trace_ring: int = 32

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if self.idle_ttl is not None and self.idle_ttl <= 0:
            raise ValueError("idle_ttl must be positive (or None)")
        if self.sweep_interval <= 0:
            raise ValueError("sweep_interval must be positive")
        if self.frame_retention < 1:
            raise ValueError("frame_retention must be at least 1")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError("trace_sample must be in [0, 1]")
        if self.trace_budget_ms < 0:
            raise ValueError("trace_budget_ms must be non-negative")
        if self.trace_ring < 1:
            raise ValueError("trace_ring must be at least 1")


class FeedbackService:
    """Serve many interactive visual-feedback loops over one engine.

    Parameters
    ----------
    source:
        A :class:`~repro.storage.database.Database`/:class:`Table`, or an
        existing :class:`~repro.core.engine.QueryEngine` to share.  When a
        source is given the service creates (and on :meth:`aclose` closes)
        its own engine.
    config:
        Default :class:`~repro.core.engine.PipelineConfig` for the private
        engine (ignored when an engine is passed).
    service_config:
        Scheduler tunables, see :class:`ServiceConfig`.
    layout:
        Window layout used for snapshot rendering (shared by all sessions).

    Use as an async context manager, or call :meth:`start`/:meth:`aclose`.
    """

    def __init__(self, source: Database | Table | QueryEngine,
                 config: PipelineConfig | None = None,
                 service_config: ServiceConfig | None = None,
                 layout: MultiWindowLayout | None = None):
        if isinstance(source, QueryEngine):
            self.engine = source
            self._owns_engine = False
        else:
            self.engine = QueryEngine(source, config)
            self._owns_engine = True
        self.config = service_config or ServiceConfig()
        self.layout = layout or MultiWindowLayout()
        #: The unified metrics registry: service and session counters live
        #: in it directly; the engine's cache/backend stats are report-time
        #: collectors.  ``metrics_report()`` is a view over this.
        self.obs = MetricsRegistry()
        self.obs.register_collector("engine", self.engine.stats)
        self.registry = SessionRegistry(self.engine, metrics_registry=self.obs)
        self.metrics = ServiceMetrics(self.obs)
        self.tracer = Tracer(
            enabled=self.config.trace_enabled,
            sample_rate=self.config.trace_sample,
            budget_ms=self.config.trace_budget_ms,
            ring_size=self.config.trace_ring,
            slow_ring_size=self.config.trace_ring,
        )
        self._rotation: "deque[str]" = deque()
        self._inflight = 0
        #: Sessions admitted and not yet closed/expired, including opens
        #: still awaiting their prepare.  This (not the registry length,
        #: which lags behind while create() runs on a worker thread) is the
        #: admission-control authority; it is only touched from the event
        #: loop, so concurrent opens cannot race past ``max_sessions``.
        self._admitted = 0
        #: Last unexpected scheduler error (the loop keeps going; this is
        #: surfaced for observability rather than silently dropped).
        self.last_scheduler_error: Exception | None = None
        self._wake = asyncio.Event()
        self._scheduler_task: asyncio.Task | None = None
        self._run_tasks: set[asyncio.Task] = set()
        self._executor = None
        self._closing = False
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "FeedbackService":
        if self._started:
            return self
        self._closing = False
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_inflight,
            thread_name_prefix="repro-service",
        )
        self._scheduler_task = asyncio.create_task(
            self._scheduler_loop(), name="repro-service-scheduler"
        )
        self._started = True
        return self

    async def aclose(self) -> None:
        """Stop scheduling, drain in-flight runs, join pools (idempotent)."""
        if not self._started or self._closing:
            self._closing = True
            return
        self._closing = True
        self._wake.set()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
        if self._run_tasks:
            await asyncio.gather(*self._run_tasks, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._owns_engine:
            # close() may drain shard-pool users of other engines; keep the
            # event loop free while it does.
            await asyncio.get_running_loop().run_in_executor(None, self.engine.close)
        self._started = False

    async def __aenter__(self) -> "FeedbackService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def _require_started(self) -> None:
        if not self._started or self._closing:
            raise RuntimeError("FeedbackService is not running (use 'async with' or start())")

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #
    async def open_session(self, query, **overrides) -> str:
        """Admit a new session, run its initial execution, return its id.

        ``overrides`` are per-session pipeline-config overrides.  Raises
        :class:`SessionLimitError` when the session cap is reached.
        """
        self._require_started()
        if self._admitted >= self.config.max_sessions:
            self.metrics.inc("sessions_rejected")
            raise SessionLimitError(
                f"session limit reached ({self.config.max_sessions}); retry later"
            )
        loop = asyncio.get_running_loop()
        self._admitted += 1
        session = None
        try:
            # Only the CPU-heavy prepare runs on the worker thread; the
            # registry itself is touched exclusively from the event loop
            # (metrics_report and the expiry sweep iterate it there).
            prepared = await loop.run_in_executor(
                self._executor,
                lambda: self.engine.prepare(query, **overrides),
            )
            session = self.registry.add(
                prepared, max_queue_depth=self.config.max_queue_depth,
                layout=self.layout, record_batches=self.config.record_batches,
                frame_retention=self.config.frame_retention,
            )
            self._rotation.append(session.id)
            # The initial run gives the client its first frame and warms
            # the session's plan against the shared caches.  It is traced
            # like any event: the cold execution is exactly the run worth
            # explaining when it blows the budget.
            trace = self.tracer.start("open", session=session.id)
            await loop.run_in_executor(
                self._executor,
                (lambda: session.execute_batch([])) if trace is None
                else (lambda: session.execute_batch([], trace=trace)),
            )
            self.tracer.finish(trace)
        except Exception:
            # A session whose very first prepare/execution fails is not
            # admitted (and never counted as opened or closed).
            self._admitted -= 1
            if session is not None:
                self.registry.close(session.id)
                try:
                    self._rotation.remove(session.id)
                except ValueError:
                    pass
            raise
        self.metrics.inc("sessions_opened")
        session.idle.set()
        return session.id

    async def submit(self, session_id: str, event: SessionEvent,
                     received_at: float | None = None) -> dict[str, object]:
        """Enqueue one event; returns the queue verdict immediately.

        The response never waits for execution: feedback is pulled with
        :meth:`snapshot` (typically at the client's frame rate), which is
        what lets bursts coalesce behind the running frame.

        ``received_at`` (a ``perf_counter`` timestamp) lets the protocol
        layer backdate the trace to when the wire bytes arrived, so the
        span tree covers parse + routing, not just the queue.
        """
        self._require_started()
        session = self.registry.attach(session_id)
        status = session.enqueue(event)
        self.metrics.inc("events_received")
        if status == "coalesced":
            self.metrics.inc("events_coalesced")
        elif status == "shed":
            self.metrics.inc("events_shed")
        # Trace lifecycle: the first submit after a dispatch opens the
        # batch's trace (root backdated to the wire receive) and starts the
        # coalesce-wait span; later submits coalescing into the same batch
        # only mark themselves on it.  The scheduler takes the pending
        # trace when it drains the batch.
        if session.pending_trace is None:
            trace = self.tracer.start(
                "event", t0=received_at, session=session_id)
            if trace is not None:
                recv = trace.begin("protocol.receive", t0=received_at,
                                   event=type(event).__name__, status=status)
                trace.end(recv)
                wait = trace.begin("coalesce.wait")
                session.pending_trace = (trace, wait)
        else:
            trace, _ = session.pending_trace
            recv = trace.begin("protocol.receive", t0=received_at,
                               event=type(event).__name__, status=status)
            trace.end(recv)
        self._wake.set()
        return {"status": status, "queue_depth": session.queue.depth}

    async def snapshot(self, session_id: str, wait: bool = True) -> FrameSnapshot:
        """The latest frame of a session; with ``wait`` the *settled* frame.

        ``wait=True`` awaits until every event submitted so far has been
        executed (the queue is empty and no run is in flight) -- the state
        a user sees when they stop dragging.  ``wait=False`` returns the
        newest completed frame immediately.
        """
        self._require_started()
        session = self.registry.attach(session_id)
        if wait:
            await session.idle.wait()
            if session.closed:
                # Closed/expired while we waited: pending events were
                # dropped, so the last frame would masquerade as settled.
                raise SessionLimitError(
                    f"session {session_id!r} was closed while awaiting its snapshot"
                )
        if session.error is not None:
            raise session.error
        if session.snapshot is None:
            raise RuntimeError(f"session {session_id!r} has no snapshot yet")
        return session.snapshot

    async def close_session(self, session_id: str) -> None:
        self._require_started()
        self.registry.close(session_id)
        self.metrics.inc("sessions_closed")
        self._admitted -= 1
        try:
            self._rotation.remove(session_id)
        except ValueError:
            pass

    def metrics_report(self) -> dict[str, object]:
        """Global, per-session and engine-cache counters in one dictionary.

        ``incremental`` breaks the shard-slice cache and dirty-shard
        counters out of the engine totals so latency regressions can be
        attributed: a p95 increase with a falling ``shards_reused`` share
        means events stopped patching and fell back to full recomputes.
        """
        engine = self.engine.stats()
        return {
            "service": self.metrics.snapshot(),
            "sessions": {
                session.id: session.metrics_snapshot() for session in self.registry
            },
            "engine": engine,
            # Execution-backend health: which backend serves shard work,
            # worker liveness, and how often events fell back in-process.
            "backend": engine.get("backend"),
            "incremental": {
                "events": engine["incremental_events"],
                "slice_hits": engine["slice_hits"],
                "slice_misses": engine["slice_misses"],
                "shards_recomputed": engine["shards_recomputed"],
                "shards_reused": engine["shards_reused"],
                "bounds_shortcircuits": engine["bounds_shortcircuits"],
                "displayed_patches": engine["displayed_patches"],
                "result_count_patches": engine["result_count_patches"],
                "chunks_patched": engine["chunks_patched"],
                "chunks_shared": engine["chunks_shared"],
                "quantile_certified": engine["quantile_certified"],
                "quantile_fallbacks": engine["quantile_fallbacks"],
            },
        }

    def trace_report(self, session_id: str | None = None,
                     include_recent: bool = False,
                     limit: int = 16) -> list[dict[str, object]]:
        """Retained traces, newest last (what the ``trace`` protocol op serves).

        By default only the *slow* ring (events over
        :attr:`ServiceConfig.trace_budget_ms`, each carrying its explain
        record); ``include_recent`` adds the ring of recent traces.
        ``session_id`` filters to one session's traces.
        """
        traces = self.tracer.slow_traces()
        if include_recent:
            seen = {id(t) for t in traces}
            traces = [
                t for t in self.tracer.recent_traces() if id(t) not in seen
            ] + traces
        if session_id is not None:
            traces = [
                t for t in traces if t.attrs.get("session") == session_id
            ]
        traces.sort(key=lambda t: t.trace_id)
        if limit > 0:
            traces = traces[-limit:]
        return [t.to_dict() for t in traces]

    # ------------------------------------------------------------------ #
    # Scheduler
    # ------------------------------------------------------------------ #
    async def _scheduler_loop(self) -> None:
        loop = asyncio.get_running_loop()
        next_sweep = loop.time() + self.config.sweep_interval
        while not self._closing:
            self._wake.clear()
            try:
                self._dispatch_ready()
                # Expiry runs on its own schedule: under steady traffic the
                # wake event fires constantly, so the sweep must not depend
                # on a wait timing out.
                if self.config.idle_ttl is not None and loop.time() >= next_sweep:
                    next_sweep = loop.time() + self.config.sweep_interval
                    for session in self.registry.expire_idle(self.config.idle_ttl):
                        self.metrics.inc("sessions_expired")
                        self._admitted -= 1
                        try:
                            self._rotation.remove(session.id)
                        except ValueError:
                            pass
            except Exception as exc:  # noqa: BLE001 - scheduler must survive
                # A bug in dispatch/expiry must not silently stop all
                # scheduling; record it and keep serving.
                self.last_scheduler_error = exc
            try:
                if self.config.idle_ttl is None:
                    await self._wake.wait()
                else:
                    await asyncio.wait_for(
                        self._wake.wait(),
                        timeout=max(0.0, next_sweep - loop.time()),
                    )
            except asyncio.TimeoutError:
                pass

    def _dispatch_ready(self) -> None:
        """One fair pass: dispatch ready sessions in rotation order.

        Each visited session moves to the back of the rotation whether or
        not it was ready, so over consecutive passes every ready session is
        served before any session is served twice.
        """
        for _ in range(len(self._rotation)):
            if self._inflight >= self.config.max_inflight:
                return
            session_id = self._rotation[0]
            self._rotation.rotate(-1)
            session = self.registry.get(session_id)
            if session is None:
                # Closed session still in rotation: drop it from the back.
                try:
                    self._rotation.remove(session_id)
                except ValueError:
                    pass
                continue
            if not session.ready:
                continue
            batch = session.take_batch()
            session.running = True
            self._inflight += 1
            # The batch's trace leaves the queue with the batch: close the
            # coalesce-wait span, open the scheduler-queue span (ends when
            # an executor thread actually picks the batch up).
            trace = dispatch_span = None
            if session.pending_trace is not None:
                trace, wait_span = session.pending_trace
                session.pending_trace = None
                trace.end(wait_span, events=len(batch))
                dispatch_span = trace.begin("scheduler.queue")
            task = asyncio.create_task(self._run(session, batch, trace,
                                                 dispatch_span))
            self._run_tasks.add(task)
            task.add_done_callback(self._run_tasks.discard)

    async def _run(self, session: ServiceSession, batch: list[SessionEvent],
                   trace: "obs.Trace | None" = None,
                   dispatch_span: int | None = None) -> None:
        loop = asyncio.get_running_loop()

        def _execute():
            # Untraced runs keep the historical one-argument call so test
            # doubles and wrappers around execute_batch stay compatible.
            if trace is None:
                return session.execute_batch(batch)
            if dispatch_span is not None:
                # Executor pickup: the scheduler-queue span ends here, on
                # the worker thread, the instant before execution starts.
                trace.end(dispatch_span)
            return session.execute_batch(batch, trace=trace)

        try:
            snapshot = await loop.run_in_executor(self._executor, _execute)
            self.metrics.inc("runs")
            self.metrics.inc("events_executed", len(batch))
            self.metrics.run_latency.record(snapshot.run_seconds)
            self.tracer.finish(trace, run_seconds=snapshot.run_seconds)
        except Exception as exc:  # noqa: BLE001 - surfaced via snapshot()
            # A failed batch poisons only this session's next snapshot; the
            # service keeps serving everyone else.
            session.error = exc
            self.tracer.finish(trace, error=repr(exc))
        finally:
            session.running = False
            self._inflight -= 1
            if not session.queue:
                session.idle.set()
            self._wake.set()
