"""Counters and latency quantiles for the feedback service.

Everything here is deliberately cheap -- plain ints and a bounded sample
window -- because the metrics are updated on the hot path of every event
and every pipeline run.  Percentiles are computed on demand from the most
recent samples (a full-precision histogram would be overkill for a p50/p95
readout of an interactive loop).
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["LatencyWindow", "SessionMetrics", "ServiceMetrics"]


class LatencyWindow:
    """A bounded window of recent durations with nearest-rank percentiles."""

    def __init__(self, maxlen: int = 512):
        self._samples: "deque[float]" = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self.count = 0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self.count += 1

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the window, in seconds."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        rank = max(1, int(-(-q * len(samples) // 100)))  # ceil without floats
        return samples[min(rank, len(samples)) - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)


class SessionMetrics:
    """Per-session counters, updated by the queue, scheduler and executor."""

    def __init__(self):
        self.events_received = 0
        self.events_coalesced = 0
        self.events_shed = 0
        self.events_executed = 0
        self.runs = 0
        self.render_hits = 0
        self.render_misses = 0
        #: Runs whose displayed set (hence every window) was provably
        #: unchanged -- the frame was served without re-rendering anything.
        self.snapshots_reused = 0
        self.run_latency = LatencyWindow()

    def snapshot(self, queue_depth: int = 0) -> dict[str, object]:
        """One row of the metrics report (all durations in milliseconds)."""
        return {
            "events_received": self.events_received,
            "events_coalesced": self.events_coalesced,
            "events_shed": self.events_shed,
            "events_executed": self.events_executed,
            "runs": self.runs,
            "queue_depth": queue_depth,
            "render_hits": self.render_hits,
            "render_misses": self.render_misses,
            "snapshots_reused": self.snapshots_reused,
            "run_p50_ms": round(self.run_latency.p50 * 1e3, 3),
            "run_p95_ms": round(self.run_latency.p95 * 1e3, 3),
        }


class ServiceMetrics:
    """Global counters of one :class:`~repro.service.service.FeedbackService`."""

    def __init__(self):
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_expired = 0
        self.sessions_rejected = 0
        self.events_received = 0
        self.events_coalesced = 0
        self.events_shed = 0
        self.events_executed = 0
        self.runs = 0
        self.run_latency = LatencyWindow()

    def snapshot(self) -> dict[str, object]:
        return {
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "sessions_expired": self.sessions_expired,
            "sessions_rejected": self.sessions_rejected,
            "events_received": self.events_received,
            "events_coalesced": self.events_coalesced,
            "events_shed": self.events_shed,
            "events_executed": self.events_executed,
            "runs": self.runs,
            "run_p50_ms": round(self.run_latency.p50 * 1e3, 3),
            "run_p95_ms": round(self.run_latency.p95 * 1e3, 3),
        }
