"""Counters and latency quantiles for the feedback service.

Storage lives in :mod:`repro.obs.metrics`: every counter here is an atomic
:class:`~repro.obs.metrics.Counter` in a shared
:class:`~repro.obs.metrics.MetricsRegistry`, because the same counter is
bumped from the scheduler loop *and* executor threads (a bare ``+= 1``
races).  :class:`SessionMetrics`/:class:`ServiceMetrics` are views: they
expose the historical attribute names read-only (tests and callers keep
reading ``metrics.events_received``) and their ``snapshot()`` dictionaries
keep the exact keys CI asserts on; writers go through :meth:`inc`.

Latency quantiles come from :class:`~repro.obs.metrics.Histogram`, whose
``percentile`` copies the sample window under the lock and sorts the copy
outside it -- the metrics read path must not hold the lock for an
O(n log n) sort while ``record()`` contends from executor threads.
"""

from __future__ import annotations

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["LatencyWindow", "SessionMetrics", "ServiceMetrics"]


class LatencyWindow(Histogram):
    """A bounded window of recent durations with nearest-rank percentiles."""

    def __init__(self, maxlen: int = 512):
        super().__init__(window=maxlen)

    def record(self, seconds: float) -> None:
        self.observe(seconds)


class _CounterView:
    """Shared machinery: named atomic counters + read-only attribute views."""

    #: Counter names, in report order; subclasses define them.
    COUNTERS: tuple[str, ...] = ()
    #: Registry name prefix (``session``/``service``).
    PREFIX = ""

    def __init__(self, registry: MetricsRegistry | None = None, **labels: str):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = labels
        self._counters = {
            name: self.registry.counter(f"{self.PREFIX}_{name}", **labels)
            for name in self.COUNTERS
        }
        self.run_latency = LatencyWindow()

    def inc(self, name: str, amount: int = 1) -> None:
        """Atomically bump one counter (the only mutation path)."""
        self._counters[name].inc(amount)

    def set(self, name: str, value: int) -> None:
        """Overwrite a counter mirroring an external total (render cache)."""
        self._counters[name].set(value)

    def __getattr__(self, name: str):
        # Only consulted for names missing from the instance dict: serve
        # the counter values so ``metrics.events_received`` keeps reading.
        try:
            return self.__dict__["_counters"][name].value
        except KeyError:
            raise AttributeError(name) from None

    def release(self) -> None:
        """Drop this view's counters from the registry (session closed)."""
        for name in self.COUNTERS:
            self.registry.remove(f"{self.PREFIX}_{name}", **self.labels)


class SessionMetrics(_CounterView):
    """Per-session counters, updated by the queue, scheduler and executor."""

    PREFIX = "session"
    COUNTERS = (
        "events_received",
        "events_coalesced",
        "events_shed",
        "events_executed",
        "runs",
        "render_hits",
        "render_misses",
        # Runs whose displayed set (hence every window) was provably
        # unchanged -- the frame was served without re-rendering anything.
        "snapshots_reused",
    )

    def snapshot(self, queue_depth: int = 0) -> dict[str, object]:
        """One row of the metrics report (all durations in milliseconds)."""
        counters = self._counters
        return {
            "events_received": counters["events_received"].value,
            "events_coalesced": counters["events_coalesced"].value,
            "events_shed": counters["events_shed"].value,
            "events_executed": counters["events_executed"].value,
            "runs": counters["runs"].value,
            "queue_depth": queue_depth,
            "render_hits": counters["render_hits"].value,
            "render_misses": counters["render_misses"].value,
            "snapshots_reused": counters["snapshots_reused"].value,
            "run_p50_ms": round(self.run_latency.p50 * 1e3, 3),
            "run_p95_ms": round(self.run_latency.p95 * 1e3, 3),
        }


class ServiceMetrics(_CounterView):
    """Global counters of one :class:`~repro.service.service.FeedbackService`."""

    PREFIX = "service"
    COUNTERS = (
        "sessions_opened",
        "sessions_closed",
        "sessions_expired",
        "sessions_rejected",
        "events_received",
        "events_coalesced",
        "events_shed",
        "events_executed",
        "runs",
    )

    def snapshot(self) -> dict[str, object]:
        counters = self._counters
        return {
            "sessions_opened": counters["sessions_opened"].value,
            "sessions_closed": counters["sessions_closed"].value,
            "sessions_expired": counters["sessions_expired"].value,
            "sessions_rejected": counters["sessions_rejected"].value,
            "events_received": counters["events_received"].value,
            "events_coalesced": counters["events_coalesced"].value,
            "events_shed": counters["events_shed"].value,
            "events_executed": counters["events_executed"].value,
            "runs": counters["runs"].value,
            "run_p50_ms": round(self.run_latency.p50 * 1e3, 3),
            "run_p95_ms": round(self.run_latency.p95 * 1e3, 3),
        }
