"""JSON-lines protocol adapter: the feedback service as a real server.

Stdlib-only (``asyncio`` streams + ``json``): one JSON object per line in
each direction, so the protocol can be driven by ``nc``, a five-line
client, or the bundled example.  Requests carry an ``op``.

**v1 operations** (the request/response summary protocol):

``{"op": "open", "query": "...", "config": {"percentage": 0.4}}``
    Prepare a session; replies ``{"ok": true, "session": "s1", ...}`` with
    the initial frame summary.  ``"protocol": 2`` in the request negotiates
    the v2 frame stream; the reply echoes the granted ``protocol`` and the
    session's current ``frame_id`` either way.
``{"op": "event", "session": "s1", "event": {"type": "range", "path": [0],
"low": 10, "high": 20}}``
    Enqueue one modification; replies immediately with the queue verdict
    (``queued`` / ``coalesced`` / ``shed``) -- this is the firehose path a
    client calls on every slider tick.  Event types: ``range``,
    ``threshold`` (``value``), ``weight`` (``weight``), ``percentage``
    (``value``).
``{"op": "snapshot", "session": "s1", "wait": true, "top": 5,
"render": false}``
    The settled frame after every submitted event executed (or, with
    ``wait: false``, the newest completed frame).  With ``render: true``
    each window summary additionally carries a base64 PNG of its pixels.
``{"op": "metrics"}``, ``{"op": "close", "session": "s1"}``,
``{"op": "ping"}``
    Introspection and lifecycle.
``{"op": "trace", "session": "s1", "include_recent": false, "limit": 16,
"format": "chrome"}``
    Slow-event forensics: the retained traces of events that blew
    ``ServiceConfig.trace_budget_ms`` (full span tree + explain record),
    newest last.  All arguments optional -- ``session`` filters to one
    session, ``include_recent`` adds the ring of recent (fast) traces,
    ``format: "chrome"`` returns Chrome trace-event JSON that loads
    straight into Perfetto.  Requires the service to run with
    ``ServiceConfig(trace_enabled=True)``; otherwise replies with zero
    traces.

**v2 operations** (the versioned delta-frame stream; see
``docs/protocol.md`` for the full message reference):

``{"op": "subscribe", "session": "s1"}``
    Reply with a full frame (``mode: "snapshot"``: statistics, display
    order and every window's cell arrays) and start tracking this
    connection's acknowledged ``frame_id`` for the session.
``{"op": "delta", "session": "s1", "wait": true}``
    The streaming pull.  When the client's acknowledged frame is still in
    the session's retention ring (``ServiceConfig.frame_retention`` recent
    frames; the previous frame always is), the reply is ``mode: "delta"``
    -- changed window cells, displayed-set changes, fresh statistics --
    *unless* the full frame would be smaller on the wire (degenerate
    drags), in which case ``mode: "snapshot"`` is sent; a base that fell
    out of the ring or mismatches also resyncs with a full frame.  A
    client already holding the current frame gets the tiny ``mode:
    "unchanged"`` answer.  ``base_frame_id`` may be passed to override the
    tracked ack.
``{"op": "resync", "session": "s1"}``
    Unconditionally reply with a full frame and re-ack it.

Errors never kill the connection: a malformed line, a bad ``frame_id`` or
an unknown session replies with a structured error frame ``{"ok": false,
"code": "...", "error": "..."}`` and the stream continues.  Error codes:
``parse-error`` (the line was not JSON), ``bad-request`` (missing/invalid
fields, unknown event types), ``unknown-op``, ``unknown-session``,
``bad-frame-id``, ``session-limit`` and ``internal``.
"""

from __future__ import annotations

import asyncio
import base64
import json
import time

from repro.interact.events import (
    SessionEvent,
    SetPercentageDisplayed,
    SetQueryRange,
    SetThreshold,
    SetWeight,
)
from repro.obs import chrome_trace_events
from repro.service.service import FeedbackService, SessionLimitError
from repro.service.session import UnknownSessionError
from repro.service.snapshot import delta_payload
from repro.vis.colormap import VisDBColormap
from repro.vis.render import png_bytes

__all__ = ["FeedbackProtocolServer", "ProtocolError", "parse_event", "serve"]

#: Pipeline-config fields a remote client may override per session.
_ALLOWED_CONFIG = {
    "percentage", "pixels_per_item", "shard_count", "max_workers",
    "multipeak_z", "target_max",
}

#: Protocol versions the server can grant.
_PROTOCOL_VERSIONS = (1, 2)


class ProtocolError(ValueError):
    """A malformed or unserviceable request, answered with an error frame.

    ``code`` is the machine-readable error class (stable across releases);
    the message stays human-oriented.  Raising this never drops the
    connection -- the handler turns it into ``{"ok": false, "code": ...,
    "error": ...}`` and keeps reading.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class _SessionRunError(Exception):
    """A pipeline failure surfaced through a well-formed request.

    Wraps errors re-raised by ``FeedbackService.snapshot()`` (a poisoned
    session's last run) so the error frame reports ``internal`` -- the
    client's request was fine; the server-side run was not.  Without the
    wrapper a pipeline ``ValueError`` would hit the generic bad-request
    mapping and tell a correct client to fix its message.
    """

    def __init__(self, cause: Exception):
        super().__init__(f"{type(cause).__name__}: {cause}")
        self.cause = cause


def parse_event(payload: dict) -> SessionEvent:
    """Build a session event from its wire form (raises ``ValueError``)."""
    if not isinstance(payload, dict):
        raise ValueError("event must be an object")
    kind = payload.get("type")
    path = tuple(payload.get("path", ()))
    try:
        if kind in ("range", "SetQueryRange"):
            return SetQueryRange(path, float(payload["low"]), float(payload["high"]))
        if kind in ("threshold", "SetThreshold"):
            return SetThreshold(path, float(payload["value"]))
        if kind in ("weight", "SetWeight"):
            return SetWeight(path, float(payload["weight"]))
        if kind in ("percentage", "SetPercentageDisplayed"):
            return SetPercentageDisplayed(float(payload["value"]))
    except KeyError as exc:
        raise ValueError(f"event {kind!r} is missing field {exc.args[0]!r}") from None
    raise ValueError(f"unknown event type {kind!r}")


class FeedbackProtocolServer:
    """Serve a :class:`FeedbackService` over newline-delimited JSON."""

    #: Stream buffer limit for connections (both directions).  Full v2
    #: frames carry whole window cell arrays on one line, which overflows
    #: asyncio's 64 KiB default; clients reading frames should open their
    #: connection with (at least) this same limit.
    STREAM_LIMIT = 2 ** 24

    def __init__(self, service: FeedbackService, host: str = "127.0.0.1",
                 port: int = 0, limit: int = STREAM_LIMIT):
        self.service = service
        self.host = host
        self.port = port
        self.limit = limit
        self._server: asyncio.AbstractServer | None = None
        self._colormap = VisDBColormap()
        #: Wire accounting of the v2 stream: how many updates went out as
        #: deltas vs full frames, their encoded sizes, and the bytes the
        #: size-based choice saved against always-full snapshots.  Served
        #: by the ``metrics`` op so the payoff is observable in production.
        self.wire_stats: dict[str, int] = {
            "deltas_sent": 0,
            "snapshots_sent": 0,
            "unchanged_sent": 0,
            "resyncs": 0,
            "delta_bytes": 0,
            "snapshot_bytes": 0,
            "bytes_saved": 0,
            "errors_sent": 0,
        }

    # ------------------------------------------------------------------ #
    async def start(self) -> "FeedbackProtocolServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=self.limit
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "FeedbackProtocolServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        # Per-connection v2 state: the last frame id this client
        # acknowledged (was sent a frame for), per session.
        acked: dict[str, int] = {}
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                # Timestamp the receive before any parsing: event traces
                # backdate their root span to this instant, so queueing and
                # JSON decode are visible inside the trace, not before it.
                received_at = time.perf_counter()
                pending_trace = None
                try:
                    try:
                        request = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise ProtocolError(
                            "parse-error", f"line is not valid JSON: {exc}"
                        ) from None
                    encoded, pending_trace = await self._dispatch(
                        request, acked, received_at)
                except Exception as exc:  # noqa: BLE001 - protocol boundary
                    encoded = json.dumps(self._error_frame(exc)).encode()
                    self.wire_stats["errors_sent"] += 1
                send_t0 = time.perf_counter()
                writer.write(encoded + b"\n")
                await writer.drain()
                if pending_trace is not None:
                    span_id = pending_trace.begin(
                        "wire.send", t0=send_t0, bytes=len(encoded) + 1)
                    pending_trace.end(span_id)
        finally:
            # No await here: the handler may be ending because the server is
            # closing (task cancellation), and awaiting wait_closed() inside
            # a cancelled task just re-raises into the loop's exception hook.
            writer.close()

    @staticmethod
    def _error_frame(exc: Exception) -> dict:
        """Structured error frame for any failure behind one request.

        Every malformed or unserviceable message -- unknown op, bad frame
        id, non-JSON line, unknown session -- answers with a frame instead
        of dropping the connection; ``code`` gives clients a stable switch.
        """
        if isinstance(exc, ProtocolError):
            code = exc.code
        elif isinstance(exc, SessionLimitError):
            code = "session-limit"
        elif isinstance(exc, UnknownSessionError):
            code = "unknown-session"
        elif isinstance(exc, _SessionRunError):
            return {"ok": False, "code": "internal", "error": str(exc)}
        elif isinstance(exc, (KeyError, ValueError, TypeError)):
            # A missing request field raises KeyError('field').
            code = "bad-request"
        else:
            code = "internal"
        return {"ok": False, "code": code,
                "error": f"{type(exc).__name__}: {exc}"}

    async def _settled_snapshot(self, session_id: str, wait: bool):
        """A session's snapshot with failures mapped to stable wire codes.

        A session that was closed or expired while the wait was pending is
        gone from the client's point of view (``unknown-session``, not the
        admission-control ``session-limit`` its exception type suggests);
        any error a pipeline run left behind is a server-side failure
        (``internal``), not a malformed request.
        """
        try:
            return await self.service.snapshot(session_id, wait=wait)
        except UnknownSessionError:
            raise
        except SessionLimitError as exc:
            raise UnknownSessionError(str(exc)) from exc
        except Exception as exc:  # noqa: BLE001 - session-run boundary
            raise _SessionRunError(exc) from exc

    @staticmethod
    def _take_trace(snapshot):
        """Detach a snapshot's trace for encode/send span attachment.

        The first pull that delivers a frame claims its trace: subsequent
        pulls of the same settled snapshot (a polling client) would
        otherwise append an encode+send leg per poll and grow ring traces
        without bound.
        """
        trace = snapshot.trace
        snapshot.trace = None
        return trace

    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: dict, acked: dict[str, int],
                        received_at: float | None = None):
        """Serve one request; returns ``(encoded_response, trace_or_None)``.

        The second element is the pipeline trace of the frame being
        delivered (when one exists): the connection handler closes the
        loop by timing the actual socket write into it as ``wire.send``.
        """
        if not isinstance(request, dict):
            raise ProtocolError("bad-request", "request must be a JSON object")
        op = request.get("op")
        if op in ("subscribe", "delta", "resync"):
            return await self._dispatch_v2(op, request, acked)
        response, trace = await self._dispatch_v1(
            op, request, acked, received_at)
        if trace is not None:
            t0 = time.perf_counter()
            encoded = json.dumps(response).encode()
            span_id = trace.begin("frame.encode", t0=t0, mode="summary",
                                  bytes=len(encoded))
            trace.end(span_id)
        else:
            encoded = json.dumps(response).encode()
        return encoded, trace

    async def _dispatch_v1(self, op, request: dict, acked: dict[str, int],
                           received_at: float | None = None):
        """Serve one v1 request; returns ``(response_dict, trace_or_None)``."""
        if op == "ping":
            return {"ok": True, "pong": True}, None
        if op == "open":
            protocol = request.get("protocol", 1)
            if protocol not in _PROTOCOL_VERSIONS:
                raise ProtocolError(
                    "bad-request",
                    f"unsupported protocol {protocol!r} (supported: "
                    f"{list(_PROTOCOL_VERSIONS)})",
                )
            overrides = {
                key: value
                for key, value in (request.get("config") or {}).items()
                if key in _ALLOWED_CONFIG
            }
            session_id = await self.service.open_session(
                request["query"], **overrides
            )
            snapshot = await self.service.snapshot(session_id)
            return ({"ok": True, "session": session_id, "protocol": protocol,
                     **snapshot.as_dict(top=int(request.get("top", 0)))},
                    self._take_trace(snapshot))
        if op == "event":
            event = parse_event(request.get("event"))
            verdict = await self.service.submit(
                request["session"], event, received_at=received_at)
            return {"ok": True, **verdict}, None
        if op == "snapshot":
            snapshot = await self._settled_snapshot(
                request["session"], wait=bool(request.get("wait", True))
            )
            body = snapshot.as_dict(top=int(request.get("top", 10)))
            if request.get("render"):
                # Colormapping + zlib + base64 is real CPU work: run it off
                # the event loop so one rendering client does not stall
                # every other connection's event stream.
                colormap, windows = self._colormap, snapshot.windows

                def encode() -> dict[tuple, str]:
                    return {
                        path: base64.b64encode(
                            png_bytes(window.to_rgb(colormap))
                        ).decode("ascii")
                        for path, window in windows.items()
                    }

                encoded = await asyncio.get_running_loop().run_in_executor(None, encode)
                for entry in body["windows"]:
                    entry["png"] = encoded[tuple(entry["path"])]
            return {"ok": True, **body}, self._take_trace(snapshot)
        if op == "metrics":
            return {"ok": True,
                    "metrics": {**self.service.metrics_report(),
                                "wire": dict(self.wire_stats)}}, None
        if op == "trace":
            traces = self.service.trace_report(
                session_id=request.get("session"),
                include_recent=bool(request.get("include_recent", False)),
                limit=int(request.get("limit", 16)),
            )
            if request.get("format") == "chrome":
                return {"ok": True, "chrome": chrome_trace_events(traces),
                        "count": len(traces)}, None
            return {"ok": True, "traces": traces,
                    "count": len(traces)}, None
        if op == "close":
            await self.service.close_session(request["session"])
            acked.pop(request["session"], None)
            return {"ok": True}, None
        raise ProtocolError("unknown-op", f"unknown op {op!r}")

    async def _dispatch_v2(self, op: str, request: dict,
                           acked: dict[str, int]):
        """The v2 frame stream: subscribe / delta / resync.

        Returns ``(encoded_frame, trace_or_None)`` like :meth:`_dispatch`.
        """
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ProtocolError("bad-request", "'session' must be a string")
        wait = bool(request.get("wait", True))
        # Validate before awaiting: a rejectable request must not first
        # block behind the session's queued pipeline runs (the connection
        # is a serial request/response line).
        base_given = "base_frame_id" in request
        base = request.get("base_frame_id")
        if op == "delta" and base is not None and (
                isinstance(base, bool) or not isinstance(base, int) or base < 0):
            raise ProtocolError(
                "bad-frame-id",
                f"'base_frame_id' must be a non-negative integer, got {base!r}",
            )
        snapshot = await self._settled_snapshot(session_id, wait=wait)
        # Frame serialization walks whole window cell arrays (O(pixels),
        # several ms for real layouts): run it off the event loop like the
        # PNG path above, so one streaming client's pull cannot stall every
        # other connection's event firehose.
        loop = asyncio.get_running_loop()
        trace = self._take_trace(snapshot)

        def timed_encode(name, fn, **attrs):
            t0 = time.perf_counter()
            payload = fn()
            if trace is not None:
                span_id = trace.begin(name, t0=t0, bytes=len(payload),
                                      **attrs)
                trace.end(span_id)
            return payload

        if op in ("subscribe", "resync"):
            encoded = await loop.run_in_executor(
                None, lambda: timed_encode(
                    "frame.encode", snapshot.payload_bytes, mode="snapshot"))
            acked[session_id] = snapshot.frame_id
            self.wire_stats["snapshots_sent"] += 1
            if op == "resync":
                self.wire_stats["resyncs"] += 1
            self.wire_stats["snapshot_bytes"] += len(encoded)
            return encoded, trace
        # op == "delta"
        if not base_given:
            base = acked.get(session_id)
        if base == snapshot.frame_id:
            self.wire_stats["unchanged_sent"] += 1
            return json.dumps({
                "ok": True, "type": "frame", "mode": "unchanged",
                "session": session_id, "frame_id": snapshot.frame_id,
                "statistics": snapshot.statistics.as_dict(),
            }).encode(), None
        session = self.service.registry.get(session_id)
        base_snapshot = None
        if session is not None and base is not None:
            base_snapshot = session.retained_frame(base)
        full = await loop.run_in_executor(
            None, lambda: timed_encode(
                "frame.encode", snapshot.payload_bytes, mode="snapshot"))
        if base_snapshot is not None and base_snapshot is not snapshot:
            # The client's acked frame is still retained: encode the delta
            # against it, then let payload size pick the winner.  A
            # degenerate drag (most cells changed) can make the delta
            # *larger* than the frame -- sending the smaller one keeps the
            # wire optimal either way.  Cell diffing + encoding is CPU work
            # too; same off-loop treatment.
            delta = await loop.run_in_executor(
                None, lambda: timed_encode(
                    "delta.encode",
                    lambda: json.dumps({
                        "ok": True,
                        **delta_payload(base_snapshot, snapshot),
                    }).encode(),
                    base_frame=base_snapshot.frame_id))
            if len(delta) <= len(full):
                acked[session_id] = snapshot.frame_id
                self.wire_stats["deltas_sent"] += 1
                self.wire_stats["delta_bytes"] += len(delta)
                self.wire_stats["bytes_saved"] += len(full) - len(delta)
                return delta, trace
        # Gap (the base fell out of the retention ring), mismatch, or the
        # delta lost on size: resync with the full frame.
        acked[session_id] = snapshot.frame_id
        self.wire_stats["snapshots_sent"] += 1
        self.wire_stats["snapshot_bytes"] += len(full)
        return full, trace


async def serve(service: FeedbackService, host: str = "127.0.0.1",
                port: int = 0) -> FeedbackProtocolServer:
    """Start a protocol server for ``service``; returns it (bound port set)."""
    return await FeedbackProtocolServer(service, host, port).start()
