"""JSON-lines protocol adapter: the feedback service as a real server.

Stdlib-only (``asyncio`` streams + ``json``): one JSON object per line in
each direction, so the protocol can be driven by ``nc``, a five-line
client, or the bundled example.  Requests carry an ``op``:

``{"op": "open", "query": "...", "config": {"percentage": 0.4}}``
    Prepare a session; replies ``{"ok": true, "session": "s1", ...}`` with
    the initial frame summary.
``{"op": "event", "session": "s1", "event": {"type": "range", "path": [0],
"low": 10, "high": 20}}``
    Enqueue one modification; replies immediately with the queue verdict
    (``queued`` / ``coalesced`` / ``shed``) -- this is the firehose path a
    client calls on every slider tick.  Event types: ``range``,
    ``threshold`` (``value``), ``weight`` (``weight``), ``percentage``
    (``value``).
``{"op": "snapshot", "session": "s1", "wait": true, "top": 5,
"render": false}``
    The settled frame after every submitted event executed (or, with
    ``wait: false``, the newest completed frame).  With ``render: true``
    each window summary additionally carries a base64 PNG of its pixels.
``{"op": "metrics"}``, ``{"op": "close", "session": "s1"}``,
``{"op": "ping"}``
    Introspection and lifecycle.

Errors never kill the connection: a malformed line or an unknown session
replies ``{"ok": false, "error": "..."}`` and the stream continues.
"""

from __future__ import annotations

import asyncio
import base64
import json

from repro.interact.events import (
    SessionEvent,
    SetPercentageDisplayed,
    SetQueryRange,
    SetThreshold,
    SetWeight,
)
from repro.service.service import FeedbackService
from repro.vis.colormap import VisDBColormap
from repro.vis.render import png_bytes

__all__ = ["FeedbackProtocolServer", "parse_event", "serve"]

#: Pipeline-config fields a remote client may override per session.
_ALLOWED_CONFIG = {
    "percentage", "pixels_per_item", "shard_count", "max_workers",
    "multipeak_z", "target_max",
}


def parse_event(payload: dict) -> SessionEvent:
    """Build a session event from its wire form (raises ``ValueError``)."""
    if not isinstance(payload, dict):
        raise ValueError("event must be an object")
    kind = payload.get("type")
    path = tuple(payload.get("path", ()))
    try:
        if kind in ("range", "SetQueryRange"):
            return SetQueryRange(path, float(payload["low"]), float(payload["high"]))
        if kind in ("threshold", "SetThreshold"):
            return SetThreshold(path, float(payload["value"]))
        if kind in ("weight", "SetWeight"):
            return SetWeight(path, float(payload["weight"]))
        if kind in ("percentage", "SetPercentageDisplayed"):
            return SetPercentageDisplayed(float(payload["value"]))
    except KeyError as exc:
        raise ValueError(f"event {kind!r} is missing field {exc.args[0]!r}") from None
    raise ValueError(f"unknown event type {kind!r}")


class FeedbackProtocolServer:
    """Serve a :class:`FeedbackService` over newline-delimited JSON."""

    def __init__(self, service: FeedbackService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._colormap = VisDBColormap()

    # ------------------------------------------------------------------ #
    async def start(self) -> "FeedbackProtocolServer":
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "FeedbackProtocolServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    response = await self._dispatch(request)
                except Exception as exc:  # noqa: BLE001 - protocol boundary
                    response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            # No await here: the handler may be ending because the server is
            # closing (task cancellation), and awaiting wait_closed() inside
            # a cancelled task just re-raises into the loop's exception hook.
            writer.close()

    async def _dispatch(self, request: dict) -> dict:
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "open":
            overrides = {
                key: value
                for key, value in (request.get("config") or {}).items()
                if key in _ALLOWED_CONFIG
            }
            session_id = await self.service.open_session(
                request["query"], **overrides
            )
            snapshot = await self.service.snapshot(session_id)
            return {"ok": True, "session": session_id,
                    **snapshot.as_dict(top=int(request.get("top", 0)))}
        if op == "event":
            event = parse_event(request.get("event"))
            verdict = await self.service.submit(request["session"], event)
            return {"ok": True, **verdict}
        if op == "snapshot":
            snapshot = await self.service.snapshot(
                request["session"], wait=bool(request.get("wait", True))
            )
            body = snapshot.as_dict(top=int(request.get("top", 10)))
            if request.get("render"):
                # Colormapping + zlib + base64 is real CPU work: run it off
                # the event loop so one rendering client does not stall
                # every other connection's event stream.
                colormap, windows = self._colormap, snapshot.windows

                def encode() -> dict[tuple, str]:
                    return {
                        path: base64.b64encode(
                            png_bytes(window.to_rgb(colormap))
                        ).decode("ascii")
                        for path, window in windows.items()
                    }

                encoded = await asyncio.get_running_loop().run_in_executor(None, encode)
                for entry in body["windows"]:
                    entry["png"] = encoded[tuple(entry["path"])]
            return {"ok": True, **body}
        if op == "metrics":
            return {"ok": True, "metrics": self.service.metrics_report()}
        if op == "close":
            await self.service.close_session(request["session"])
            return {"ok": True}
        raise ValueError(f"unknown op {op!r}")


async def serve(service: FeedbackService, host: str = "127.0.0.1",
                port: int = 0) -> FeedbackProtocolServer:
    """Start a protocol server for ``service``; returns it (bound port set)."""
    return await FeedbackProtocolServer(service, host, port).start()
