"""Multi-session serving of interactive visual-feedback loops.

The paper's system is one user at one X terminal; this subsystem is the
seam that turns the reproduction into a server: many concurrent sessions
multiplexed over one shared :class:`~repro.core.engine.QueryEngine` and
its shard worker pool, with the feedback loop's latest-wins semantics
(only the newest position of a dragged slider matters) made explicit as
per-session event coalescing.

Entry points:

* :class:`FeedbackService` -- the asyncio scheduler (sessions, fairness,
  admission control, backpressure);
* :class:`FeedbackProtocolServer` -- a JSON-lines network adapter over it;
* :class:`CoalescingQueue`, :class:`FrameSnapshot`, :class:`WindowCache`,
  :class:`SessionRegistry` -- the pieces, reusable on their own.
"""

from repro.service.coalesce import CoalescingQueue
from repro.service.metrics import LatencyWindow, ServiceMetrics, SessionMetrics
from repro.service.protocol import (
    FeedbackProtocolServer,
    ProtocolError,
    parse_event,
    serve,
)
from repro.service.service import FeedbackService, ServiceConfig
from repro.service.session import (
    ServiceSession,
    SessionLimitError,
    SessionRegistry,
    UnknownSessionError,
)
from repro.service.snapshot import (
    FrameGapError,
    FrameSnapshot,
    WindowCache,
    apply_frame_update,
    delta_payload,
    frame_payload,
    frame_state,
    window_fingerprint,
)

__all__ = [
    "FeedbackService",
    "ServiceConfig",
    "FeedbackProtocolServer",
    "ProtocolError",
    "serve",
    "parse_event",
    "CoalescingQueue",
    "SessionRegistry",
    "ServiceSession",
    "SessionLimitError",
    "UnknownSessionError",
    "FrameSnapshot",
    "FrameGapError",
    "WindowCache",
    "window_fingerprint",
    "frame_payload",
    "delta_payload",
    "frame_state",
    "apply_frame_update",
    "LatencyWindow",
    "SessionMetrics",
    "ServiceMetrics",
]
