"""Latest-wins event coalescing for interactive feedback streams.

A slider drag is a burst of hundreds of :class:`SetQueryRange` events on
one control, of which only the newest matters -- the paper's premise is
that the user steers the query by the *current* slider position, never by
an intermediate one.  :class:`CoalescingQueue` makes that semantics
explicit: events are keyed by the control they came from
(:meth:`~repro.interact.events.SessionEvent.coalesce_key`), and a new
event on a pending control replaces the pending one in place.  The queue
depth is therefore bounded by the number of *distinct controls* touched,
not by the event rate.

Draining preserves the arrival order of each control's first pending
event.  Controls are independent state (one leaf predicate -- range and
threshold moves on the same leaf share a slot, since either replaces the
predicate wholesale -- one node weight, the display percentage), so for
any stream that replays without error, a drained batch produces the same
final query state as the full uncoalesced stream.  Streams that are
*invalid* (e.g. a threshold move sent for a leaf an earlier event already
converted to a range predicate) may coalesce into a valid one instead of
reproducing the error; the binding contract is therefore the replay of
the *executed* batches, which the service stress test enforces
bit-identically.

When a session still outruns its executor, the queue sheds under a depth
limit: the *oldest already-coalesced* entry goes first (a control that was
superseded at least once is demonstrably rapid-fire; its latest value is
the most likely to be superseded again), falling back to the oldest entry
outright.  Sheds are counted, never silent.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.interact.events import SessionEvent

__all__ = ["CoalescingQueue", "QueueEntry"]


@dataclass
class QueueEntry:
    """The pending (newest) event of one control, plus how it got there.

    Arrival order is the entry's position in the queue's ordered mapping;
    no separate sequence number is kept.
    """

    event: SessionEvent
    #: How many earlier events this entry absorbed (0 = never superseded).
    coalesced: int = 0


class CoalescingQueue:
    """A per-session queue that keeps only the newest event per control.

    Not thread-safe by itself: the service touches it exclusively from the
    event-loop thread (``submit`` enqueues, the scheduler drains), which is
    the intended single-writer discipline.

    Parameters
    ----------
    max_depth:
        Maximum number of pending entries (distinct controls).  Enqueueing
        a *new* control beyond it sheds an old entry first (see module
        docstring); updating an already-pending control never sheds.
    """

    def __init__(self, max_depth: int = 64):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self._entries: "OrderedDict[tuple, QueueEntry]" = OrderedDict()
        self.received = 0
        self.coalesced = 0
        self.shed = 0

    # ------------------------------------------------------------------ #
    def put(self, event: SessionEvent) -> str:
        """Enqueue one event; returns ``"queued"``, ``"coalesced"`` or ``"shed"``.

        ``"shed"`` means the event itself was admitted but an older pending
        entry was dropped to make room for it.
        """
        self.received += 1
        key = event.coalesce_key()
        entry = self._entries.get(key)
        if entry is not None:
            entry.event = event
            entry.coalesced += 1
            self.coalesced += 1
            return "coalesced"
        shed = False
        if len(self._entries) >= self.max_depth:
            self._shed_one()
            shed = True
        self._entries[key] = QueueEntry(event=event)
        return "shed" if shed else "queued"

    def _shed_one(self) -> None:
        victim = next(
            (key for key, entry in self._entries.items() if entry.coalesced > 0),
            None,
        )
        if victim is None:
            victim = next(iter(self._entries))
        del self._entries[victim]
        self.shed += 1

    # ------------------------------------------------------------------ #
    def drain(self) -> list[SessionEvent]:
        """Pop every pending event, in first-arrival order of its control."""
        events = [entry.event for entry in self._entries.values()]
        self._entries.clear()
        return events

    def peek(self) -> list[SessionEvent]:
        """The pending events without removing them (tests, introspection)."""
        return [entry.event for entry in self._entries.values()]

    @property
    def depth(self) -> int:
        """Number of pending entries (distinct controls)."""
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def clear(self) -> None:
        """Drop pending entries; counters are kept."""
        self._entries.clear()
