"""Session lifecycle for the multi-session feedback service.

A :class:`ServiceSession` is one user's interactive feedback loop: a
:class:`~repro.core.engine.PreparedQuery` on the shared engine, the
session's :class:`~repro.service.coalesce.CoalescingQueue`, its rendered
window cache and its metrics.  The :class:`SessionRegistry` owns the id
space and the create/attach/expire lifecycle; the scheduler in
:mod:`repro.service.service` decides when a session actually runs.

Threading contract: queue and lifecycle state are touched only from the
event-loop thread; :meth:`ServiceSession.execute_batch` is the only method
that runs on an executor thread, and it touches only the prepared query,
the window cache and the metrics (all session-private -- cross-session
state lives in the engine's thread-safe caches).
"""

from __future__ import annotations

import asyncio
import copy
import itertools
import time
from typing import Iterator

import numpy as np

from repro.core.engine import PreparedQuery, QueryEngine
from repro.core.result import QueryFeedback
from repro.obs import MetricsRegistry
from repro.obs import trace as obs
from repro.interact.events import (
    SessionEvent,
    SetPercentageDisplayed,
    SetQueryRange,
    SetThreshold,
    SetWeight,
)
from repro.service.coalesce import CoalescingQueue
from repro.service.metrics import SessionMetrics
from repro.service.snapshot import FrameSnapshot, WindowCache
from repro.vis.layout import MultiWindowLayout

__all__ = ["ServiceSession", "SessionRegistry", "SessionLimitError",
           "UnknownSessionError"]

#: Event types a service session executes (they modify the prepared query).
QUERY_EVENTS = (SetQueryRange, SetThreshold, SetWeight, SetPercentageDisplayed)


class SessionLimitError(RuntimeError):
    """Raised when admission control refuses a new session."""


class UnknownSessionError(KeyError):
    """A session id that does not exist (closed, expired, or never opened).

    A ``KeyError`` subclass so callers treating registry lookups as plain
    mapping access keep working; the protocol adapter maps it by *type* to
    the stable ``unknown-session`` wire error code.
    """

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0] if self.args else ""


class ServiceSession:
    """One interactive session multiplexed onto the shared engine."""

    def __init__(self, session_id: str, prepared: PreparedQuery,
                 max_queue_depth: int = 64,
                 layout: MultiWindowLayout | None = None,
                 record_batches: bool = False,
                 frame_retention: int = 4,
                 clock=time.monotonic,
                 metrics_registry: MetricsRegistry | None = None):
        self.id = session_id
        self.prepared = prepared
        self.queue = CoalescingQueue(max_depth=max_queue_depth)
        self.metrics = SessionMetrics(metrics_registry, session=session_id)
        self.window_cache = WindowCache(layout)
        self._clock = clock
        self.created_at = clock()
        self.last_active = self.created_at
        self.sequence = -1
        self.running = False
        self.closed = False
        #: Last error raised by a pipeline run (cleared by the next success).
        self.error: Exception | None = None
        self.feedback: QueryFeedback | None = None
        self.snapshot: FrameSnapshot | None = None
        #: Recent snapshots, newest last, replaced in one assignment so the
        #: protocol layer (event-loop side) always reads a consistent ring
        #: while runs complete on worker threads.  Retention bounds how far
        #: a streaming client may lag and still be served a delta instead
        #: of a full resync; the ring shares its arrays with the render and
        #: node caches, so retained frames are cheap.
        self.frame_retention = max(1, int(frame_retention))
        self.frame_history: tuple[FrameSnapshot, ...] = ()
        #: With ``record_batches``: the batches actually executed, in order
        #: -- a serial replay of their concatenation is the session's
        #: reference semantics (what the differential stress test replays).
        #: Off by default; the log grows for the life of the session.
        self.record_batches = record_batches
        self.executed_batches: list[list[SessionEvent]] = []
        #: ``(trace, coalesce_wait_span_id)`` of the events waiting in the
        #: queue; started by the first submit after a dispatch, taken by
        #: the scheduler when it drains the batch.  Loop-confined.
        self.pending_trace: tuple | None = None
        #: Set while the session has no pending events and no running batch.
        self.idle = asyncio.Event()

    # ------------------------------------------------------------------ #
    # Event-loop side
    # ------------------------------------------------------------------ #
    def touch(self) -> None:
        self.last_active = self._clock()

    def enqueue(self, event: SessionEvent) -> str:
        """Admit one event into the coalescing queue; returns the queue verdict."""
        if self.closed:
            raise SessionLimitError(f"session {self.id!r} is closed")
        if not isinstance(event, QUERY_EVENTS):
            raise TypeError(
                f"the feedback service executes query-modification events "
                f"({', '.join(t.__name__ for t in QUERY_EVENTS)}); "
                f"got {type(event).__name__}"
            )
        self.touch()
        status = self.queue.put(event)
        self.metrics.inc("events_received")
        if status == "coalesced":
            self.metrics.inc("events_coalesced")
        elif status == "shed":
            self.metrics.inc("events_shed")
        self.idle.clear()
        return status

    @property
    def ready(self) -> bool:
        """True if the session has pending events and no batch in flight."""
        return not self.closed and not self.running and bool(self.queue)

    @property
    def frames(self) -> tuple[FrameSnapshot | None, FrameSnapshot | None]:
        """The ``(previous, current)`` snapshot pair (None-padded)."""
        history = self.frame_history
        if not history:
            return (None, None)
        if len(history) == 1:
            return (None, history[0])
        return (history[-2], history[-1])

    def retained_frame(self, frame_id: int) -> FrameSnapshot | None:
        """The retained snapshot with ``frame_id``, if still in the ring."""
        for snapshot in self.frame_history:
            if snapshot.frame_id == frame_id:
                return snapshot
        return None

    def take_batch(self) -> list[SessionEvent]:
        """Drain the queue for one pipeline run (scheduler only)."""
        return self.queue.drain()

    # ------------------------------------------------------------------ #
    # Executor side
    # ------------------------------------------------------------------ #
    def execute_batch(self, batch: list[SessionEvent],
                      trace: "obs.Trace | None" = None) -> FrameSnapshot:
        """Apply one coalesced batch and produce the next snapshot.

        Runs on a worker thread.  The batch may be empty (the initial run
        at session open).  Raises whatever the pipeline raises; the caller
        records the error on the session.  A failing batch is rolled back
        wholesale (condition tree and config restored), so the live query
        state always equals the serial replay of the *recorded* batches --
        a half-applied batch can neither linger nor hide.

        ``trace`` is the event's active trace, handed over explicitly
        because contextvars do not cross ``run_in_executor``; it becomes
        ambient here so the engine/backend spans parent correctly.
        """
        start = time.perf_counter()
        with obs.use_trace(trace), \
                obs.span("session.execute_batch",
                         session=self.id, events=len(batch)):
            if batch:
                condition_backup = copy.deepcopy(self.prepared.query.condition)
                config_backup = self.prepared.config
                try:
                    feedback = self.prepared.execute(changes=batch)
                except Exception:
                    self.prepared.query.condition = condition_backup
                    self.prepared.config = config_backup
                    raise
            else:
                feedback = self.prepared.execute()
            with obs.span("frame.build") as frame_span:
                windows, fresh = self.window_cache.windows(feedback)
                frame_span.annotate(
                    windows=len(windows), rendered_fresh=len(fresh))
        # The displayed set is provably unchanged when every window came
        # from the render cache (their fingerprints cover the display order
        # and all per-node distances at the displayed items) and the
        # displayed rows themselves are identical.  The previous frame's
        # pixel state is then exactly reusable by the client.
        display_unchanged = bool(
            not fresh
            and self.snapshot is not None
            and np.array_equal(self.snapshot.feedback.display_order,
                               feedback.display_order)
        )
        elapsed = time.perf_counter() - start
        self.sequence += 1
        if self.record_batches:
            self.executed_batches.append(list(batch))
        snapshot = FrameSnapshot(
            session_id=self.id,
            sequence=self.sequence,
            events_applied=len(batch),
            statistics=feedback.statistics,
            feedback=feedback,
            windows=windows,
            rendered_fresh=fresh,
            run_seconds=elapsed,
            display_unchanged=display_unchanged,
            frame_id=getattr(feedback, "frame_id", self.sequence),
            base_frame_id=getattr(feedback, "base_frame_id", None),
            trace=trace,
        )
        if display_unchanged:
            self.metrics.inc("snapshots_reused")
        self.feedback = feedback
        self.frame_history = (
            self.frame_history + (snapshot,))[-self.frame_retention:]
        self.snapshot = snapshot
        self.error = None
        self.metrics.inc("runs")
        self.metrics.inc("events_executed", len(batch))
        self.metrics.set("render_hits", self.window_cache.hits)
        self.metrics.set("render_misses", self.window_cache.misses)
        self.metrics.run_latency.record(elapsed)
        return snapshot

    # ------------------------------------------------------------------ #
    def metrics_snapshot(self) -> dict[str, object]:
        return self.metrics.snapshot(queue_depth=self.queue.depth)


class SessionRegistry:
    """Id space and lifecycle (create / attach / expire) of service sessions."""

    def __init__(self, engine: QueryEngine, clock=time.monotonic,
                 metrics_registry: MetricsRegistry | None = None):
        self.engine = engine
        self._clock = clock
        self.metrics_registry = metrics_registry
        self._sessions: dict[str, ServiceSession] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    def create(self, query, *, max_queue_depth: int = 64,
               layout: MultiWindowLayout | None = None,
               record_batches: bool = False,
               frame_retention: int = 4,
               session_id: str | None = None, **overrides) -> ServiceSession:
        """Prepare a query on the shared engine and register a session for it.

        ``overrides`` are per-session :class:`~repro.core.engine.PipelineConfig`
        field overrides (``percentage=0.4`` and friends).  Caller is
        responsible for admission control; the registry only enforces id
        uniqueness.  The service prepares on a worker thread and registers
        with :meth:`add` on the event loop instead, keeping the session
        dictionary loop-confined.
        """
        prepared = self.engine.prepare(query, **overrides)
        return self.add(
            prepared, max_queue_depth=max_queue_depth, layout=layout,
            record_batches=record_batches, frame_retention=frame_retention,
            session_id=session_id,
        )

    def add(self, prepared: PreparedQuery, *, max_queue_depth: int = 64,
            layout: MultiWindowLayout | None = None,
            record_batches: bool = False,
            frame_retention: int = 4,
            session_id: str | None = None) -> ServiceSession:
        """Register a session for an already-prepared query (loop-side, no I/O)."""
        if session_id is None:
            session_id = f"s{next(self._ids)}"
        if session_id in self._sessions:
            raise ValueError(f"session id {session_id!r} already exists")
        session = ServiceSession(
            session_id, prepared, max_queue_depth=max_queue_depth,
            layout=layout, record_batches=record_batches,
            frame_retention=frame_retention, clock=self._clock,
            metrics_registry=self.metrics_registry,
        )
        self._sessions[session_id] = session
        return session

    def attach(self, session_id: str) -> ServiceSession:
        """Look a session up and refresh its idle timer."""
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(f"unknown session {session_id!r}")
        session.touch()
        return session

    def get(self, session_id: str) -> ServiceSession | None:
        return self._sessions.get(session_id)

    def close(self, session_id: str) -> ServiceSession:
        """Remove a session; its in-flight run (if any) finishes harmlessly."""
        session = self._sessions.pop(session_id, None)
        if session is None:
            raise UnknownSessionError(f"unknown session {session_id!r}")
        session.closed = True
        session.queue.clear()
        session.idle.set()
        # Closed sessions must not leak label sets in the shared registry.
        session.metrics.release()
        return session

    def expire_idle(self, ttl_seconds: float) -> list[ServiceSession]:
        """Close every session idle (no events, nothing running) beyond the TTL."""
        now = self._clock()
        expired = [
            session for session in list(self._sessions.values())
            if not session.running and not session.queue
            and now - session.last_active > ttl_seconds
        ]
        for session in expired:
            self.close(session.id)
        return expired

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[ServiceSession]:
        return iter(self._sessions.values())

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions
