"""Cluster-analysis baseline (k-means).

The paper (section 2.2): "An exhaustive cluster analysis of multidimensional
data ... is computationally intractable for large data sets" and
"statistical methods do not help to find single exceptional data, so-called
hot spots".  This module provides a straightforward k-means implementation
so benchmarks can quantify both points against the visual-feedback
pipeline: runtime scaling and hot-spot recall.
"""

from __future__ import annotations

import numpy as np

from repro.storage.table import Table

__all__ = ["kmeans", "cluster_outlier_scores", "clustering_hotspot_recall"]


def kmeans(data: np.ndarray, k: int, iterations: int = 25, seed: int = 0
           ) -> tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means.

    Returns ``(labels, centers)``.  Deterministic for a given seed; empty
    clusters are re-seeded to the point farthest from its assigned centre.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("data must be 2-dimensional (items x features)")
    n = len(data)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)
    centers = data[rng.choice(n, size=k, replace=False)].copy()
    labels = np.zeros(n, dtype=int)
    for iteration in range(iterations):
        distances = np.linalg.norm(data[:, None, :] - centers[None, :, :], axis=2)
        new_labels = np.argmin(distances, axis=1)
        if iteration > 0 and np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for cluster in range(k):
            members = data[labels == cluster]
            if len(members) == 0:
                assigned_distance = distances[np.arange(n), labels]
                centers[cluster] = data[np.argmax(assigned_distance)]
            else:
                centers[cluster] = members.mean(axis=0)
    return labels, centers


def cluster_outlier_scores(data: np.ndarray, k: int = 8, iterations: int = 25,
                           seed: int = 0) -> np.ndarray:
    """Outlier score per item: distance to its assigned cluster centre."""
    data = np.asarray(data, dtype=float)
    labels, centers = kmeans(data, k=k, iterations=iterations, seed=seed)
    return np.linalg.norm(data - centers[labels], axis=1)


def clustering_hotspot_recall(table: Table, columns: list[str], planted_rows: np.ndarray,
                              k: int = 8, top_fraction: float = 0.001, seed: int = 0) -> float:
    """Fraction of planted hot spots found among the top-scored items by clustering.

    ``top_fraction`` of the items with the largest distance to their cluster
    centre are flagged as candidates; the recall of the planted rows among
    them is returned.  Cluster analysis typically has to flag a large
    fraction to catch single exceptional values, which is the contrast the
    benchmarks draw.
    """
    planted_rows = np.asarray(planted_rows)
    if len(planted_rows) == 0:
        return 1.0
    data = np.column_stack([table.column(c) for c in columns]).astype(float)
    # Standardise so no single attribute dominates the Euclidean distance.
    std = data.std(axis=0)
    std[std == 0.0] = 1.0
    data = (data - data.mean(axis=0)) / std
    scores = cluster_outlier_scores(data, k=k, seed=seed)
    n_flagged = max(1, int(round(top_fraction * len(table))))
    flagged = np.argsort(scores)[::-1][:n_flagged]
    found = np.intersect1d(flagged, planted_rows)
    return float(len(found) / len(planted_rows))
