"""Information-retrieval style weighted ranking baseline.

Ranking functions and weighted queries from IR (the paper cites Salton's
work) produce a top-k list from a weighted sum of raw per-predicate
distances.  Unlike the VisDB pipeline this baseline performs no
per-predicate range reduction or normalization, so attributes on large
scales (or containing a single extreme outlier) dominate the ranking -- the
failure mode section 5.2 describes and fixes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.query.predicates import Predicate
from repro.storage.table import Table

__all__ = ["weighted_linear_ranking", "top_k_indices"]


def weighted_linear_ranking(table: Table, predicates: Sequence[Predicate],
                            weights: Sequence[float] | None = None) -> np.ndarray:
    """Score per item: weighted sum of *raw* absolute predicate distances.

    Lower scores mean better matches.  NaN distances (undefined) are
    replaced by the largest finite distance of that predicate.
    """
    if not predicates:
        raise ValueError("at least one predicate is required")
    if weights is None:
        weights = [1.0] * len(predicates)
    weights = np.asarray(list(weights), dtype=float)
    if len(weights) != len(predicates):
        raise ValueError("weights must match the number of predicates")
    scores = np.zeros(len(table), dtype=float)
    for predicate, weight in zip(predicates, weights):
        distances = np.asarray(predicate.distances(table), dtype=float)
        finite = distances[np.isfinite(distances)]
        fallback = float(finite.max()) if len(finite) else 0.0
        distances = np.where(np.isfinite(distances), distances, fallback)
        scores += weight * distances
    return scores


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` best (lowest) scores, best first."""
    if k <= 0:
        raise ValueError("k must be positive")
    scores = np.asarray(scores, dtype=float)
    k = min(k, len(scores))
    order = np.argsort(scores, kind="stable")
    return order[:k]
