"""Baseline approaches the paper positions VisDB against.

* :mod:`~repro.baselines.boolean_query` -- traditional exact query
  evaluation, which flips between NULL results and result floods.
* :mod:`~repro.baselines.cluster` -- a k-means style cluster analysis, the
  statistics route to finding structure (and its blind spot for single
  exceptional items).
* :mod:`~repro.baselines.ranking` -- an information-retrieval style weighted
  linear ranking without VisDB's per-predicate normalization.
"""

from repro.baselines.boolean_query import exact_query, result_size_profile, classify_result_size
from repro.baselines.cluster import kmeans, cluster_outlier_scores, clustering_hotspot_recall
from repro.baselines.ranking import weighted_linear_ranking, top_k_indices

__all__ = [
    "exact_query",
    "result_size_profile",
    "classify_result_size",
    "kmeans",
    "cluster_outlier_scores",
    "clustering_hotspot_recall",
    "weighted_linear_ranking",
    "top_k_indices",
]
