"""Traditional exact (boolean) query evaluation.

This is the baseline the introduction argues against: "The result for most
queries will contain either less data than expected, sometimes even no
answers, so-called 'NULL' results, or more data than expected, at least
more than the user is willing to deal with."  The helpers here make that
behaviour measurable so benchmarks can contrast it with the graceful
degradation of visual feedback queries.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.query.expr import QueryNode
from repro.storage.table import Table

__all__ = ["exact_query", "result_size_profile", "classify_result_size"]


def exact_query(table: Table, condition: QueryNode) -> np.ndarray:
    """Row indices exactly fulfilling the condition (classical SQL semantics)."""
    mask = condition.exact_mask(table)
    return np.nonzero(mask)[0]


def classify_result_size(result_count: int, total: int, null_threshold: int = 0,
                         flood_fraction: float = 0.2) -> str:
    """Classify a result set as ``"null"``, ``"flood"`` or ``"useful"``.

    ``null``: at most ``null_threshold`` answers; ``flood``: more than
    ``flood_fraction`` of the database; otherwise ``useful``.
    """
    if result_count <= null_threshold:
        return "null"
    if total > 0 and result_count > flood_fraction * total:
        return "flood"
    return "useful"


def result_size_profile(table: Table, condition_factory: Callable[[float], QueryNode],
                        parameters: Sequence[float], null_threshold: int = 0,
                        flood_fraction: float = 0.2) -> list[dict]:
    """Sweep a query parameter and record how the exact result size behaves.

    ``condition_factory`` maps a parameter value (e.g. a temperature
    threshold) to a condition tree.  The returned rows contain the result
    count and its null/flood/useful classification -- the "many queries may
    be needed" phenomenon the paper motivates visual feedback with.
    """
    rows = []
    total = len(table)
    for parameter in parameters:
        condition = condition_factory(parameter)
        count = int(len(exact_query(table, condition)))
        rows.append(
            {
                "parameter": parameter,
                "results": count,
                "classification": classify_result_size(
                    count, total, null_threshold=null_threshold, flood_fraction=flood_fraction
                ),
            }
        )
    return rows
