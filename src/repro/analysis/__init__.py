"""Analysis utilities: window metrics, hot-spot detection, lagged correlations.

These helpers quantify what a user would read off the visualizations --
how restrictive each predicate is, how large the yellow region is, which
items stand out as exceptional -- so tests and benchmarks can assert on
them, and so the examples can report findings numerically alongside the
pixel images.
"""

from repro.analysis.metrics import (
    window_statistics,
    restrictiveness_ranking,
    color_usage,
    selectivity,
)
from repro.analysis.hotspots import exceptional_items, hotspot_recall, relevance_hotspots
from repro.analysis.correlation import lagged_correlation, best_lag

__all__ = [
    "window_statistics",
    "restrictiveness_ranking",
    "color_usage",
    "selectivity",
    "exceptional_items",
    "hotspot_recall",
    "relevance_hotspots",
    "lagged_correlation",
    "best_lag",
]
