"""Time-lagged correlation analysis.

The motivating discovery of the environmental example is "a time-lagged
increase of temperature and ozone".  These helpers compute the Pearson
correlation of two series for a sweep of lags so examples and benchmarks
can verify that the synthetic data really contains the planted 2-hour lag
and that the visual-feedback query surfaces it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lagged_correlation", "best_lag"]


def _pearson(x: np.ndarray, y: np.ndarray) -> float:
    if len(x) < 2:
        return float("nan")
    x = x - x.mean()
    y = y - y.mean()
    denominator = np.sqrt(np.sum(x * x) * np.sum(y * y))
    if denominator == 0.0:
        return float("nan")
    return float(np.sum(x * y) / denominator)


def lagged_correlation(x: np.ndarray, y: np.ndarray, lags: np.ndarray | list[int]
                       ) -> dict[int, float]:
    """Correlation of ``x[t]`` with ``y[t + lag]`` for every lag (in samples).

    Positive lags mean ``y`` *follows* ``x`` (e.g. ozone follows
    temperature).  Lags larger than the series length yield NaN.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError("series must have the same length")
    results: dict[int, float] = {}
    n = len(x)
    for lag in lags:
        lag = int(lag)
        if abs(lag) >= n:
            results[lag] = float("nan")
            continue
        if lag >= 0:
            results[lag] = _pearson(x[: n - lag], y[lag:])
        else:
            results[lag] = _pearson(x[-lag:], y[: n + lag])
    return results


def best_lag(x: np.ndarray, y: np.ndarray, lags: np.ndarray | list[int]) -> tuple[int, float]:
    """The lag with the largest correlation, and that correlation."""
    correlations = lagged_correlation(x, y, lags)
    finite = {lag: value for lag, value in correlations.items() if np.isfinite(value)}
    if not finite:
        raise ValueError("no finite correlations for the given lags")
    lag = max(finite, key=finite.get)
    return lag, finite[lag]
