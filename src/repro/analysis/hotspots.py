"""Hot-spot (single exceptional data item) detection.

The paper defines hot spots as results with ``|D'| = 1`` or sufficiently
small compared to ``|D|`` -- single exceptional data items -- and stresses
that VisDB "allows the user to find results which, otherwise, would remain
hidden in the database".  In the headless reproduction the "user looking at
a colour spot in an area of different colour" is replaced by simple
detectors over the same quantities the user would see.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import QueryFeedback
from repro.storage.table import Table

__all__ = ["exceptional_items", "hotspot_recall", "relevance_hotspots"]


def exceptional_items(table: Table, columns: list[str], z_threshold: float = 6.0) -> np.ndarray:
    """Row indices of items that are extreme in at least one of the columns.

    Uses the modified z-score (median / MAD), which is robust against the
    outliers it is trying to find.  ``z_threshold`` of 6 flags only very
    clear exceptions, matching the "single exceptional values" notion.
    """
    if not columns:
        raise ValueError("at least one column is required")
    flagged = np.zeros(len(table), dtype=bool)
    for column in columns:
        values = np.asarray(table.column(column), dtype=float)
        median = np.nanmedian(values)
        mad = np.nanmedian(np.abs(values - median))
        if mad == 0.0 or np.isnan(mad):
            continue
        modified_z = 0.6745 * (values - median) / mad
        flagged |= np.abs(modified_z) > z_threshold
    return np.nonzero(flagged)[0]


def relevance_hotspots(feedback: QueryFeedback, path: tuple = (), max_items: int = 20,
                       isolation_quantile: float = 0.99) -> np.ndarray:
    """Items whose distance for ``path`` is strikingly different from their display
    neighbours -- the "color spot in an area of different color" a user would click.

    The displayed items are scanned in display order; an item is a hot spot
    candidate when the absolute difference between its distance and the
    median distance of its 8 neighbours in display order exceeds the
    ``isolation_quantile`` of all such differences.  At most ``max_items``
    (the most isolated ones) are returned, as table row indices.
    """
    distances = feedback.ordered_distances(path)
    n = len(distances)
    if n < 3:
        return np.empty(0, dtype=np.intp)
    window = 4
    padded = np.pad(distances, window, mode="edge")
    neighbour_median = np.empty(n)
    for i in range(n):
        neighbourhood = np.concatenate(
            [padded[i:i + window], padded[i + window + 1:i + 2 * window + 1]]
        )
        neighbour_median[i] = np.median(neighbourhood)
    isolation = np.abs(distances - neighbour_median)
    threshold = np.quantile(isolation, isolation_quantile)
    if threshold <= 0:
        return np.empty(0, dtype=np.intp)
    candidates = np.nonzero(isolation >= threshold)[0]
    best = candidates[np.argsort(isolation[candidates])[::-1][:max_items]]
    return feedback.display_order[best]


def hotspot_recall(detected_rows: np.ndarray, planted_rows: np.ndarray) -> float:
    """Fraction of planted hot spots present among the detected rows."""
    planted_rows = np.asarray(planted_rows)
    if len(planted_rows) == 0:
        return 1.0
    detected_rows = np.asarray(detected_rows)
    found = np.intersect1d(detected_rows, planted_rows)
    return float(len(found) / len(planted_rows))
