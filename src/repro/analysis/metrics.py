"""Quantitative metrics over query feedback and visualization windows."""

from __future__ import annotations

import numpy as np

from repro.core.result import QueryFeedback
from repro.query.expr import NodePath
from repro.storage.table import Table

__all__ = ["window_statistics", "restrictiveness_ranking", "color_usage", "selectivity"]


def window_statistics(feedback: QueryFeedback) -> dict[str, dict[str, float]]:
    """Per-window statistics: restrictiveness, yellow share, result count.

    A thin wrapper around :meth:`QueryFeedback.window_summary` kept here so
    analysis code has one import point for metrics.
    """
    return feedback.window_summary()


def restrictiveness_ranking(feedback: QueryFeedback,
                            paths: list[NodePath] | None = None) -> list[tuple[str, float]]:
    """Predicates ordered from most to least restrictive (darkest to brightest window).

    "By the visual color impression of the single screens, the user gets
    information on how restrictive each of the selection predicates is."
    """
    if paths is None:
        paths = [p for p in feedback.paths if p != ()]
    ranked = [
        (feedback.node_feedback[p].label, feedback.node_feedback[p].restrictiveness())
        for p in paths
    ]
    return sorted(ranked, key=lambda pair: pair[1], reverse=True)


def color_usage(feedback: QueryFeedback, path: NodePath = (), levels: int = 64) -> float:
    """Fraction of distinct colour levels actually used by a window's distances.

    A window using only a couple of levels conveys little information; the
    normalization is designed to spread the displayed distances over the
    whole colour scale.
    """
    if levels < 2:
        raise ValueError("levels must be at least 2")
    distances = feedback.ordered_distances(path)
    if len(distances) == 0:
        return 0.0
    buckets = np.clip((distances / 255.0 * (levels - 1)).astype(int), 0, levels - 1)
    return float(len(np.unique(buckets)) / levels)


def selectivity(table: Table, mask: np.ndarray) -> float:
    """Fraction of the table selected by a boolean mask (0 for an empty table)."""
    mask = np.asarray(mask, dtype=bool)
    if len(mask) != len(table):
        raise ValueError("mask length must match the table length")
    if len(table) == 0:
        return 0.0
    return float(np.mean(mask))
