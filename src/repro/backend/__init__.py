"""Pluggable shard-execution backends.

A backend owns *where* shard work runs; the evaluator owns *what* is
computed.  Three implementations ship in-tree -- ``threads`` (the
default: the in-process shared thread pool), ``process`` (a persistent
zero-copy shared-memory worker pool) and ``remote`` (a TCP worker fleet,
``REPRO_REMOTE_WORKERS=host:port,...``) -- and third parties add more
via :func:`register_backend`.  See ``docs/backends.md`` for the contract.

Importing this package installs an ``atexit`` hook that drains the shared
thread executors, terminates the worker pool and closes fleet
connections, so interpreter shutdown never hangs on live pools even when
no one called ``QueryEngine.close()``.
"""

from __future__ import annotations

import atexit

from repro.backend.base import ExecBackend
from repro.backend.process import ProcessBackend, shutdown_process_backend
from repro.backend.registry import (
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.backend.remote import RemoteBackend, shutdown_remote_backend
from repro.backend.threads import ThreadsBackend

__all__ = [
    "ExecBackend",
    "ProcessBackend",
    "RemoteBackend",
    "ThreadsBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "shutdown_all",
    "unregister_backend",
]

register_backend("threads", ThreadsBackend)
register_backend("process", ProcessBackend)
register_backend("remote", RemoteBackend)


def shutdown_all(drain_timeout: float = 5.0) -> None:
    """Drain executors, stop the worker pool, close fleet connections.

    Runs automatically at interpreter exit; anything shut down here is
    respawned or reconnected lazily if an engine keeps executing
    afterwards.  Idempotent.
    """
    from repro.core.shard import shutdown_executors

    shutdown_remote_backend()
    shutdown_process_backend()
    shutdown_executors(drain_timeout=drain_timeout)


atexit.register(shutdown_all)
