"""Pluggable shard-execution backends.

A backend owns *where* shard work runs; the evaluator owns *what* is
computed.  Two implementations ship in-tree -- ``threads`` (the default:
the in-process shared thread pool) and ``process`` (a persistent
zero-copy shared-memory worker pool) -- and third parties add more via
:func:`register_backend`.  See ``docs/backends.md`` for the contract.

Importing this package installs an ``atexit`` hook that drains the shared
thread executors and terminates the worker pool, so interpreter shutdown
never hangs on live pools even when no one called ``QueryEngine.close()``.
"""

from __future__ import annotations

import atexit

from repro.backend.base import ExecBackend
from repro.backend.process import ProcessBackend, shutdown_process_backend
from repro.backend.registry import (
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.backend.threads import ThreadsBackend

__all__ = [
    "ExecBackend",
    "ProcessBackend",
    "ThreadsBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "shutdown_all",
    "unregister_backend",
]

register_backend("threads", ThreadsBackend)
register_backend("process", ProcessBackend)


def shutdown_all(drain_timeout: float = 5.0) -> None:
    """Drain shared thread executors and stop the worker pool (idempotent).

    Runs automatically at interpreter exit; anything shut down here is
    respawned lazily if an engine keeps executing afterwards.
    """
    from repro.core.shard import shutdown_executors

    shutdown_process_backend()
    shutdown_executors(drain_timeout=drain_timeout)


atexit.register(shutdown_all)
