"""Length-prefixed binary framing for the ``remote`` backend's TCP links.

Every message on a remote worker connection is one *frame*: a
struct-packed header (magic, protocol version, flags, body length)
followed by the body.  Control messages -- ops, replies, partials -- are
pickled Python dicts (``FLAG_PICKLE``); bulk column payloads travel as
raw frames (``FLAG_RAW``), chunked at :data:`CHUNK_BYTES` so neither
side ever buffers an unbounded body and a slow peer trips the read
timeout instead of wedging the coordinator.

The first exchange on every connection is a version handshake: the
client sends a ``hello`` frame carrying :data:`PROTOCOL_VERSION`, the
server answers with its own.  Frames additionally carry the version in
every header, so a peer that skipped the handshake (or a stream that
desynchronised) is rejected on the first frame rather than unpickled.

All receive paths honour a deadline: sockets are switched to per-recv
timeouts and a frame that does not complete in time raises
:class:`WireTimeout`.  EOF mid-frame raises :class:`WireClosed`.  Both
are :class:`WireError`\\ s -- transport faults the client maps onto its
fall-back-in-process path.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
from typing import Any

__all__ = [
    "CHUNK_BYTES",
    "FLAG_PICKLE",
    "FLAG_RAW",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "VersionMismatch",
    "WireClosed",
    "WireError",
    "WireTimeout",
    "read_frame",
    "read_obj",
    "read_raw_into",
    "send_frame",
    "send_obj",
    "send_raw",
]

#: Bumped on any incompatible change to ops, replies or framing.
PROTOCOL_VERSION = 1

_MAGIC = b"RPRW"
#: magic, version, flags, body length.
_HEADER = struct.Struct("!4sHHQ")

FLAG_PICKLE = 0
FLAG_RAW = 1

#: Hard per-frame sanity bound -- control frames are KBs, raw chunks are
#: :data:`CHUNK_BYTES`; anything larger is a corrupt or hostile stream.
MAX_FRAME = 64 * 1024 * 1024

#: Raw column payloads are split into frames of at most this many bytes.
CHUNK_BYTES = 4 * 1024 * 1024


class WireError(RuntimeError):
    """Transport-level failure on a remote worker connection."""


class WireClosed(WireError):
    """The peer closed the connection (EOF mid-frame or on a header)."""


class WireTimeout(WireError):
    """A frame did not complete within the caller's deadline."""


class VersionMismatch(WireError):
    """The peer speaks a different protocol version."""

    def __init__(self, theirs: int, ours: int = PROTOCOL_VERSION):
        super().__init__(
            f"remote worker protocol version {theirs} != {ours}")
        self.theirs = theirs
        self.ours = ours


def _recv_exact(sock: socket.socket, count: int,
                deadline: float | None) -> bytes:
    """Read exactly ``count`` bytes or raise ``WireClosed``/``WireTimeout``."""
    parts: list[bytes] = []
    remaining = count
    if deadline is None:
        # A previous deadline read may have left a timeout on the socket.
        sock.settimeout(None)
    while remaining:
        if deadline is not None:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise WireTimeout(f"read timed out ({count - remaining}"
                                  f"/{count} bytes)")
            sock.settimeout(budget)
        try:
            piece = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as exc:
            raise WireTimeout(str(exc) or "read timed out") from exc
        except OSError as exc:
            raise WireClosed(f"connection lost: {exc!r}") from exc
        if not piece:
            raise WireClosed("connection closed by peer")
        parts.append(piece)
        remaining -= len(piece)
    return b"".join(parts)


def send_frame(sock: socket.socket, body: bytes,
               flags: int = FLAG_PICKLE) -> int:
    """Send one frame; returns the total bytes put on the wire."""
    if len(body) > MAX_FRAME:
        raise WireError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    header = _HEADER.pack(_MAGIC, PROTOCOL_VERSION, flags, len(body))
    try:
        sock.sendall(header + body)
    except socket.timeout as exc:
        raise WireTimeout(str(exc) or "send timed out") from exc
    except OSError as exc:
        raise WireClosed(f"connection lost: {exc!r}") from exc
    return len(header) + len(body)


def read_frame(sock: socket.socket,
               deadline: float | None = None) -> tuple[int, bytes, int]:
    """Read one frame; returns ``(flags, body, wire_bytes)``."""
    header = _recv_exact(sock, _HEADER.size, deadline)
    magic, version, flags, length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise VersionMismatch(version)
    if length > MAX_FRAME:
        raise WireError(f"frame of {length} bytes exceeds MAX_FRAME")
    body = _recv_exact(sock, int(length), deadline)
    return flags, body, _HEADER.size + len(body)


def send_obj(sock: socket.socket, obj: Any) -> int:
    """Pickle ``obj`` into one control frame; returns wire bytes."""
    try:
        body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise WireError(f"could not serialise message: {exc!r}") from exc
    return send_frame(sock, body, FLAG_PICKLE)


def read_obj(sock: socket.socket,
             deadline: float | None = None) -> tuple[Any, int]:
    """Read one control frame; returns ``(message, wire_bytes)``."""
    flags, body, nbytes = read_frame(sock, deadline)
    if flags != FLAG_PICKLE:
        raise WireError(f"expected a control frame, got flags={flags}")
    try:
        return pickle.loads(body), nbytes
    except Exception as exc:
        raise WireError(f"could not deserialise message: {exc!r}") from exc


def send_raw(sock: socket.socket, payload) -> int:
    """Stream a bulk payload as chunked raw frames; returns wire bytes.

    ``payload`` is anything supporting the buffer protocol.  The chunk
    layout is implicit: the receiver knows the total byte count from the
    control message that announced the payload and keeps reading raw
    frames until it is complete.
    """
    view = memoryview(payload).cast("B")
    sent = 0
    if len(view) == 0:
        return send_frame(sock, b"", FLAG_RAW)
    for start in range(0, len(view), CHUNK_BYTES):
        chunk = view[start:start + CHUNK_BYTES]
        sent += send_frame(sock, bytes(chunk), FLAG_RAW)
    return sent


def read_raw_into(sock: socket.socket, dest, nbytes: int,
                  deadline: float | None = None) -> int:
    """Read chunked raw frames totalling ``nbytes`` into ``dest``.

    ``dest`` is a writable buffer of at least ``nbytes`` bytes.  Returns
    the wire bytes consumed (headers included).
    """
    view = memoryview(dest).cast("B")
    filled = 0
    wire = 0
    while True:
        flags, body, frame_bytes = read_frame(sock, deadline)
        wire += frame_bytes
        if flags != FLAG_RAW:
            raise WireError(f"expected a raw frame, got flags={flags}")
        if filled + len(body) > nbytes:
            raise WireError("raw payload overran its announced size")
        view[filled:filled + len(body)] = body
        filled += len(body)
        if filled >= nbytes:
            return wire
