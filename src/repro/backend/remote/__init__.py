"""``remote`` backend package: shard execution over TCP worker fleets.

Three modules, mirroring the process backend's split:

* :mod:`~repro.backend.remote.wire` -- length-prefixed binary framing
  with a protocol-version handshake.
* :mod:`~repro.backend.remote.server` -- the standalone worker server
  (``python -m repro.backend.remote.server --listen HOST:PORT``).
* :mod:`~repro.backend.remote.client` -- the coordinator-side
  :class:`~repro.backend.remote.client.RemoteBackend`, configured via
  ``REPRO_REMOTE_WORKERS=host:port,host:port``.

The server module is intentionally *not* imported here: the package
import stays cheap on the coordinator, and the server pulls it in itself
when launched.
"""

from repro.backend.remote.client import (
    ENV_WORKERS,
    RemoteBackend,
    parse_remote_workers,
    shutdown_remote_backend,
)

__all__ = [
    "ENV_WORKERS",
    "RemoteBackend",
    "parse_remote_workers",
    "shutdown_remote_backend",
]
