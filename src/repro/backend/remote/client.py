"""``remote`` backend: shard execution on a TCP worker fleet.

The fleet is configured by ``REPRO_REMOTE_WORKERS=host:port,host:port``
(re-read on every op, so endpoints can be added or dropped between
events) and selected per engine via ``PipelineConfig(backend="remote")``
or ``REPRO_BACKEND=remote``.  Each endpoint is one
:class:`~repro.backend.remote.server.RemoteWorkerServer`; the client
keeps a small pool of framed TCP connections per endpoint
(:mod:`repro.backend.remote.wire`), with connect/read timeouts, an
idle-connection heartbeat, and a version handshake on every connect.

Column data moves over a *negotiated data plane*, once per
``Table.export_id``: tables are published into the coordinator's
shared-memory store exactly as for the ``process`` backend, and each
endpoint either attaches the published blocks directly (a co-located
server: zero column bytes on the socket) or has the columns chunk-
streamed to it once at attach time (a cross-host server).  Either way,
per-event wire traffic stays predicates, span lists and partials --
the ``remote_traffic_ratio`` headline in
``benchmarks/bench_backend.py``.

Failure taxonomy (the standing degrade-to-correct contract -- a backend
failure can make an event slower, never wrong):

* any transport fault -- connection refused, reset mid-round, read
  timeout, protocol version mismatch -- fails the whole op, marks the
  endpoint unhealthy (``remote_fallbacks``; re-probed lazily after
  ``reprobe_interval``, successful re-connects counted in
  ``endpoint_reconnects``) and falls back to the bit-identical
  in-process path.  A fault mid-``shard_pipeline`` closes every
  connection the session borrowed -- replies may be pending on any of
  them, and reusing one would pair a request with a stale reply (wrong
  data, not an error); the server drops its session state with the
  connection.
* an op rejected by a healthy server (error reply; e.g. an evicted
  table publication) keeps the endpoint and its connections -- the op
  is retried once after re-attaching for the idempotent cases, then
  falls back.

Configuration errors (a malformed ``REPRO_REMOTE_WORKERS``) raise
``ValueError`` loudly -- the same fail-fast contract as ``REPRO_SHARDS``
-- rather than being swallowed as fallbacks.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.backend.base import ExecBackend
from repro.backend.pipeline import (
    fill_node_summary,
    gather_round,
    next_pipeline_token,
    node_columns_from_buffer,
    pipeline_layout,
    resolve_level,
    round_message,
)
from repro.backend.remote import wire
from repro.backend.shm import PublishedTable, ShmColumnStore
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.shard import ShardedTable

__all__ = [
    "ENV_WORKERS",
    "RemoteBackend",
    "parse_remote_workers",
    "shutdown_remote_backend",
]

ENV_WORKERS = "REPRO_REMOTE_WORKERS"

#: Idle connections kept per endpoint; extras are closed on return.
MAX_IDLE_CONNS = 4

_FIELD_DTYPES = {
    "raw": np.float64,
    "normalized": np.float64,
    "signed": np.float64,
    "mask": np.bool_,
}


class RemoteFaultError(RuntimeError):
    """Transport-level failure: the named endpoint can no longer be trusted."""

    def __init__(self, message: str, endpoint: "_Endpoint | None" = None):
        super().__init__(message)
        self.endpoint = endpoint


class RemoteOpError(RuntimeError):
    """A healthy server rejected an op; connections stay usable."""

    def __init__(self, message: str, code: str | None = None):
        super().__init__(message)
        self.code = code


def parse_remote_workers(value: str) -> tuple[tuple[str, int], ...]:
    """Parse ``host:port,host:port`` (empty -> no fleet configured)."""
    value = value.strip()
    if not value:
        return ()
    endpoints: list[tuple[str, int]] = []
    for item in value.split(","):
        item = item.strip()
        host, _, port = item.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"{ENV_WORKERS} entries must be host:port, got {item!r}")
        endpoints.append((host, int(port)))
    return tuple(endpoints)


class _Connection:
    """One framed, handshaken TCP connection to a worker server."""

    def __init__(self, sock: socket.socket, endpoint_key: str):
        self.sock = sock
        self.endpoint_key = endpoint_key
        self.last_used = time.monotonic()
        self.server_pid: int | None = None
        self.server_shm = True

    def handshake(self, deadline: float) -> None:
        wire.send_obj(self.sock, {"op": "hello",
                                  "version": wire.PROTOCOL_VERSION,
                                  "pid": os.getpid()})
        reply, _ = wire.read_obj(self.sock, deadline)
        theirs = reply.get("version")
        if theirs != wire.PROTOCOL_VERSION:
            raise wire.VersionMismatch(theirs)
        if not reply.get("ok"):
            raise wire.WireError(str(reply.get("error", "handshake refused")))
        self.server_pid = reply.get("pid")
        self.server_shm = bool(reply.get("shm", True))

    def send(self, msg: dict[str, Any]) -> int:
        self.last_used = time.monotonic()
        return wire.send_obj(self.sock, msg)

    def recv(self, deadline: float) -> tuple[dict[str, Any], int]:
        reply, nbytes = wire.read_obj(self.sock, deadline)
        self.last_used = time.monotonic()
        return reply, nbytes

    def request(self, msg: dict[str, Any],
                deadline: float) -> tuple[dict[str, Any], int]:
        """One request/reply; raises :class:`RemoteOpError` on error replies.

        Returns ``(reply, wire_bytes)``.  An error reply leaves the
        connection request/reply aligned -- only :class:`wire.WireError`
        means the transport itself failed.
        """
        nbytes = self.send(msg)
        reply, reply_bytes = self.recv(deadline)
        nbytes += reply_bytes
        if not reply.get("ok"):
            raise RemoteOpError(str(reply.get("error", "remote op failed")),
                                code=reply.get("code"))
        return reply, nbytes

    def close(self) -> None:
        try:
            self.sock.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass


class _Endpoint:
    """Client-side state of one fleet endpoint (health + idle connections)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.key = f"{host}:{port}"
        self.lock = threading.Lock()
        self.idle: list[_Connection] = []
        self.healthy = True
        self.last_probe = 0.0
        self.ever_connected = False
        #: None until the first attach decides the data plane; True when
        #: this endpoint reaches the coordinator's shared memory.
        self.shm_ok: bool | None = None
        #: Publication key -> negotiated mode ("shm" / "stream").
        self.attached: dict[str, str] = {}

    def connect(self, connect_timeout: float) -> _Connection:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _Connection(sock, self.key)
        try:
            conn.handshake(time.monotonic() + connect_timeout)
        except BaseException:
            conn.close()
            raise
        if not conn.server_shm:
            self.shm_ok = False
        return conn

    def borrow(self, connect_timeout: float, heartbeat_interval: float,
               op_timeout: float) -> tuple[_Connection, int]:
        """An aligned connection, freshly heartbeaten when it sat idle.

        Returns ``(conn, reconnects)`` where ``reconnects`` counts new
        TCP connections established beyond this endpoint's first -- the
        dead-peer replacements and lazy re-probes the
        ``endpoint_reconnects`` stat reports.
        """
        reconnects = 0
        while True:
            with self.lock:
                conn = self.idle.pop() if self.idle else None
            if conn is None:
                break
            if time.monotonic() - conn.last_used < heartbeat_interval:
                return conn, reconnects
            # Heartbeat a stale connection before trusting it: a dead
            # peer is detected here, not mid-op.
            try:
                conn.request({"op": "ping"},
                             time.monotonic() + min(op_timeout, 10.0))
                return conn, reconnects
            except (wire.WireError, RemoteOpError):
                conn.close()
        try:
            conn = self.connect(connect_timeout)
        except (OSError, wire.WireError) as exc:
            self.mark_down()
            raise RemoteFaultError(
                f"endpoint {self.key} unreachable: {exc}",
                endpoint=self) from exc
        if self.ever_connected:
            reconnects += 1
        self.ever_connected = True
        if not self.healthy:
            self.healthy = True
        return conn, reconnects

    def give_back(self, conn: _Connection) -> None:
        with self.lock:
            if len(self.idle) < MAX_IDLE_CONNS:
                self.idle.append(conn)
                return
        conn.close()

    def mark_down(self) -> None:
        """Endpoint failed: drop pooled connections, await lazy re-probe."""
        self.healthy = False
        self.last_probe = time.monotonic()
        # A fresh connection will have to re-negotiate attachments: the
        # server may have restarted with an empty table store.
        self.attached.clear()
        with self.lock:
            conns, self.idle = self.idle, []
        for conn in conns:
            conn.close()

    def close_all(self) -> None:
        with self.lock:
            conns, self.idle = self.idle, []
        for conn in conns:
            conn.close()


# --------------------------------------------------------------------------- #
# Process-wide fleet state
# --------------------------------------------------------------------------- #
_FLEET_LOCK = threading.RLock()
_ENDPOINTS: dict[str, _Endpoint] = {}
_CONFIG: tuple[str, tuple[tuple[str, int], ...]] | None = None


def _current_endpoints() -> list[_Endpoint]:
    """The configured fleet, re-parsed whenever the env value changes.

    Endpoints dropped from ``REPRO_REMOTE_WORKERS`` have their pooled
    connections closed immediately; new entries join cold and connect on
    first use.
    """
    global _CONFIG
    raw = os.environ.get(ENV_WORKERS, "")
    with _FLEET_LOCK:
        if _CONFIG is None or _CONFIG[0] != raw:
            parsed = parse_remote_workers(raw)
            keys = {f"{host}:{port}" for host, port in parsed}
            for key in [k for k in _ENDPOINTS if k not in keys]:
                _ENDPOINTS.pop(key).close_all()
            for host, port in parsed:
                key = f"{host}:{port}"
                if key not in _ENDPOINTS:
                    _ENDPOINTS[key] = _Endpoint(host, port)
            _CONFIG = (raw, parsed)
        return [_ENDPOINTS[f"{host}:{port}"] for host, port in _CONFIG[1]]


def _notify_drop(published: PublishedTable) -> None:
    """Tell endpoints to drop an evicted publication (best effort)."""
    with _FLEET_LOCK:
        endpoints = list(_ENDPOINTS.values())
    for endpoint in endpoints:
        if published.key not in endpoint.attached:
            continue
        endpoint.attached.pop(published.key, None)
        if not endpoint.healthy:
            continue
        try:
            conn, _ = endpoint.borrow(5.0, 30.0, 30.0)
        except RemoteFaultError:
            continue
        try:
            conn.request({"op": "drop", "table_id": published.key},
                         time.monotonic() + 30.0)
            endpoint.give_back(conn)
        except (wire.WireError, RemoteOpError):
            conn.close()


_RSTORE = ShmColumnStore(on_evict=_notify_drop)


def shutdown_remote_backend() -> None:
    """Close every fleet connection and destroy published tables.

    Registered ``atexit`` (see :mod:`repro.backend`); safe any time --
    live backends reconnect lazily on their next op.
    """
    global _CONFIG
    with _FLEET_LOCK:
        endpoints = list(_ENDPOINTS.values())
        _ENDPOINTS.clear()
        _CONFIG = None
    for endpoint in endpoints:
        endpoint.close_all()
    _RSTORE.close()


class _LocalBuffer:
    """Session output buffer when no endpoint reaches shared memory."""

    def __init__(self, nbytes: int):
        self.buf = memoryview(bytearray(max(1, nbytes)))

    def close(self) -> None:
        self.buf = None

    def unlink(self) -> None:
        pass


# --------------------------------------------------------------------------- #
# The backend
# --------------------------------------------------------------------------- #
class RemoteBackend(ExecBackend):
    """Run shard kernels and pipeline sessions on the TCP worker fleet.

    With no ``REPRO_REMOTE_WORKERS`` configured every hook declines
    instantly (no sockets, no counters) -- the backend is then
    behaviourally the ``threads`` backend, which keeps the differential
    suite meaningful without live servers.
    """

    name = "remote"

    #: Read deadline per request round, seconds (same rationale as the
    #: process backend's broadcast timeout).
    op_timeout = 120.0
    #: TCP connect + handshake budget, seconds.
    connect_timeout = 10.0
    #: Idle age beyond which a pooled connection is pinged before reuse.
    heartbeat_interval = 30.0
    #: How long an unhealthy endpoint sits out before a lazy re-probe.
    reprobe_interval = 5.0
    #: Bounded retries for the idempotent attach/publish negotiation.
    attach_retries = 2
    #: Backoff between attach retries, seconds (doubles per attempt).
    retry_backoff = 0.05

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._counters = {
            "offloaded_ops": 0,
            "fallbacks": 0,
            "worker_restarts": 0,
            "traffic_bytes": 0,
            "pipeline_ops": 0,
            "pipeline_fallbacks": 0,
            "reply_bytes": 0,
            "remote_fallbacks": 0,
            "endpoint_reconnects": 0,
            "column_bytes": 0,
            "remote_published_bytes": 0,
        }
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def prepare(self, sharded: "ShardedTable") -> None:
        """Publish the table ahead of the first op (idempotent)."""
        if (self._closed or sharded.shard_count <= 1
                or len(sharded.table) == 0):
            return
        if not _current_endpoints():
            return
        try:
            _RSTORE.publish(sharded.table)
        except Exception:
            # Not fatal: ops retry the publish and fall back in-process
            # if it keeps failing.
            pass

    def close(self) -> None:
        self._closed = True

    def local_executor(self, shard_count: int, max_workers: int | None):
        from repro.core.shard import resolve_worker_count, shared_executor
        return shared_executor(resolve_worker_count(max_workers, shard_count))

    # ------------------------------------------------------------------ #
    # Endpoint selection
    # ------------------------------------------------------------------ #
    def _usable_endpoints(self) -> tuple[bool, list[_Endpoint]]:
        """``(configured, endpoints worth trying right now)``.

        Unhealthy endpoints rejoin the candidate list once their
        re-probe cooldown has elapsed; the connect attempt inside
        ``borrow`` is the probe.
        """
        endpoints = _current_endpoints()
        if not endpoints:
            return False, []
        now = time.monotonic()
        usable = [
            ep for ep in endpoints
            if ep.healthy or now - ep.last_probe >= self.reprobe_interval
        ]
        return True, usable

    def _count(self, **deltas: int) -> None:
        with self._lock:
            for key, delta in deltas.items():
                self._counters[key] += delta

    def _count_fallback(self, pipeline: bool = False) -> None:
        self._count(fallbacks=1, remote_fallbacks=1,
                    **({"pipeline_fallbacks": 1} if pipeline else {}))
        obs.annotate(backend_fallbacks=1, remote_fallbacks=1)

    # ------------------------------------------------------------------ #
    # Publish / attach negotiation
    # ------------------------------------------------------------------ #
    def _ensure_attached(self, endpoint: _Endpoint, conn: _Connection,
                         published: PublishedTable) -> int:
        """Negotiate the data plane for one publication on one endpoint.

        Idempotent, so transport faults here are retried with backoff on
        a fresh connection by the caller.  Returns wire bytes spent.
        """
        if published.key in endpoint.attached:
            return 0
        manifest = published.manifest
        msg = {"op": "attach", "manifest": manifest}
        if endpoint.shm_ok is False:
            msg["mode_hint"] = "stream"
        reply, nbytes = conn.request(msg, self._deadline())
        mode = reply.get("mode", "stream")
        if mode == "shm":
            endpoint.shm_ok = True
        else:
            if endpoint.shm_ok is None:
                endpoint.shm_ok = False
            # "have" marks the server's contains fast path: it kept the
            # table from an earlier connection, so skip the upload.
            if not reply.get("have"):
                nbytes += self._stream_columns(conn, published)
                _, done_bytes = conn.request(
                    {"op": "attach_done", "manifest": manifest},
                    self._deadline())
                nbytes += done_bytes
        endpoint.attached[published.key] = mode
        return nbytes

    def _stream_columns(self, conn: _Connection,
                        published: PublishedTable) -> int:
        """Ship the published column bytes once, chunk-streamed.

        The source is the publication's own shared-memory blocks, so a
        stream-plane endpoint sees exactly the bits a shm-plane endpoint
        maps -- bit-identity cannot depend on the plane.
        """
        manifest = published.manifest
        rows = manifest["rows"]
        total = 0
        column_bytes = 0
        for spec, block in zip(manifest["columns"], published.blocks):
            nbytes = spec.get("nbytes", rows * 8)
            total += conn.send({"op": "column_data",
                                "table_id": manifest["table_id"],
                                "name": spec["name"],
                                "kind": spec["kind"],
                                "nbytes": nbytes})
            total += wire.send_raw(conn.sock, block.buf[:nbytes])
            reply, reply_bytes = conn.recv(self._deadline())
            total += reply_bytes
            if not reply.get("ok"):
                raise RemoteOpError(
                    str(reply.get("error", "column upload rejected")))
            column_bytes += nbytes
        self._count(remote_published_bytes=column_bytes)
        return total

    def _deadline(self) -> float:
        return time.monotonic() + self.op_timeout

    def _borrow_all(self, endpoints: list[_Endpoint],
                    published: PublishedTable | None
                    ) -> list[tuple[_Endpoint, _Connection]]:
        """Borrow one connection per endpoint, attach the table on each.

        A failing endpoint fails the whole op (the caller falls back) --
        the span assignment is fixed before the borrow, and re-planning
        around a missing endpoint mid-op is how replies get paired with
        the wrong requests.  Attach is idempotent and retried with
        backoff on a fresh connection before giving up.
        """
        pairs: list[tuple[_Endpoint, _Connection]] = []
        try:
            for endpoint in endpoints:
                attempt = 0
                while True:
                    conn, reconnects = endpoint.borrow(
                        self.connect_timeout, self.heartbeat_interval,
                        self.op_timeout)
                    if reconnects:
                        self._count(endpoint_reconnects=reconnects)
                    if published is None:
                        pairs.append((endpoint, conn))
                        break
                    try:
                        nbytes = self._ensure_attached(
                            endpoint, conn, published)
                        self._count(traffic_bytes=nbytes)
                        pairs.append((endpoint, conn))
                        break
                    except (wire.WireError, RemoteOpError) as exc:
                        conn.close()
                        attempt += 1
                        if attempt > self.attach_retries:
                            raise RemoteFaultError(
                                f"attach failed on {endpoint.key}: {exc}",
                                endpoint=endpoint) from exc
                        time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
        except BaseException:
            for _, conn in pairs:
                conn.close()
            raise
        return pairs

    # ------------------------------------------------------------------ #
    # Broadcast round
    # ------------------------------------------------------------------ #
    def _round(self, pairs: list[tuple[_Endpoint, _Connection]],
               messages: list[dict[str, Any]], name: str,
               **attrs: Any) -> tuple[list[dict[str, Any]], int, int]:
        """Send ``messages[i]`` to endpoint ``i``, collect one reply each.

        All requests go out before any reply is read, so the servers
        compute in parallel.  A transport fault raises
        :class:`RemoteFaultError` naming the endpoint (the caller closes
        every borrowed connection: replies may be pending anywhere); an
        error reply is raised as :class:`RemoteOpError` only after every
        reply is drained, keeping all connections aligned.
        """
        trace = obs.trace_active()
        if trace:
            for msg in messages:
                msg["trace"] = True
        span_ctx = (obs.span(name, workers=len(pairs), **attrs)
                    if trace else None)
        deadline = self._deadline()
        bytes_out = bytes_in = 0
        replies: list[dict[str, Any]] = []
        op_error: RemoteOpError | None = None
        with span_ctx if span_ctx is not None else _null_context() as round_span:
            for (endpoint, conn), msg in zip(pairs, messages):
                try:
                    bytes_out += conn.send(msg)
                except wire.WireError as exc:
                    raise RemoteFaultError(
                        f"send to {endpoint.key} failed: {exc}",
                        endpoint=endpoint) from exc
            for endpoint, conn in pairs:
                try:
                    reply, nbytes = conn.recv(deadline)
                except wire.WireError as exc:
                    raise RemoteFaultError(
                        f"reply from {endpoint.key} failed: {exc}",
                        endpoint=endpoint) from exc
                bytes_in += nbytes
                if not reply.get("ok") and op_error is None:
                    op_error = RemoteOpError(
                        str(reply.get("error", "remote op failed")),
                        code=reply.get("code"))
                replies.append(reply)
                if round_span is not None and reply.get("spans"):
                    round_span.trace.add_remote_spans(
                        round_span.span_id, reply["spans"],
                        tid=f"worker-{endpoint.key}")
            if round_span is not None:
                round_span.annotate(bytes_out=bytes_out, bytes_in=bytes_in)
        if op_error is not None:
            raise op_error
        return replies, bytes_out, bytes_in

    # ------------------------------------------------------------------ #
    # Leaf ops
    # ------------------------------------------------------------------ #
    def leaf_signed(self, predicate, sharded: "ShardedTable"):
        return self._leaf(predicate, sharded, "signed")

    def leaf_mask(self, predicate, sharded: "ShardedTable"):
        return self._leaf(predicate, sharded, "mask")

    def _leaf(self, predicate, sharded: "ShardedTable",
              kind: str) -> np.ndarray | None:
        if self._closed:
            return None
        rows = len(sharded.table)
        if rows == 0 or sharded.shard_count <= 1:
            return None
        configured, endpoints = self._usable_endpoints()
        if not configured:
            return None
        if not endpoints:
            self._count_fallback()
            return None
        for retry in (False, True):
            try:
                return self._leaf_once(predicate, sharded, kind, rows,
                                       endpoints)
            except RemoteOpError as exc:
                if exc.code == "unknown-table" and not retry:
                    # The server evicted the publication between events;
                    # attach again (idempotent) and retry once.
                    for endpoint in endpoints:
                        endpoint.attached.clear()
                    continue
                self._count_fallback()
                return None
            except Exception:
                self._count_fallback()
                return None
        return None  # pragma: no cover - loop always returns

    def _leaf_once(self, predicate, sharded: "ShardedTable", kind: str,
                   rows: int, endpoints: list[_Endpoint]) -> np.ndarray:
        published = _RSTORE.publish(sharded.table)
        _RSTORE.pin(published)
        pairs: list[tuple[_Endpoint, _Connection]] = []
        out = None
        ok = False
        try:
            spans: list[list[tuple[int, int]]] = [[] for _ in endpoints]
            for i, (start, stop) in enumerate(sharded.bounds):
                if stop > start:
                    spans[i % len(endpoints)].append((start, stop))
            active = [(ep, sp) for ep, sp in zip(endpoints, spans) if sp]
            pairs = self._borrow_all([ep for ep, _ in active], published)
            dtype = np.float64 if kind == "signed" else np.bool_
            shm_side = any(ep.shm_ok for ep, _ in active)
            if shm_side:
                out = shared_memory.SharedMemory(
                    create=True, size=max(1, rows * dtype().itemsize))
            messages = [
                {
                    "op": "leaf",
                    "table_id": published.key,
                    "kind": kind,
                    "predicate": predicate,
                    "spans": span_list,
                    "out": out.name if (out is not None and ep.shm_ok)
                           else None,
                    "out_mode": "shm" if (out is not None and ep.shm_ok)
                                else "inline",
                }
                for (ep, span_list) in active
            ]
            replies, bytes_out, bytes_in = self._round(
                pairs, messages, "backend.broadcast", op="leaf", kind=kind)
            if out is not None:
                result = np.ndarray(rows, dtype=dtype, buffer=out.buf).copy()
            else:
                result = np.empty(rows, dtype=dtype)
            column_bytes = 0
            for reply in replies:
                for start, stop, payload in reply.get("data", ()):
                    result[start:stop] = np.frombuffer(payload, dtype=dtype)
                    column_bytes += len(payload)
            self._count(offloaded_ops=1,
                        traffic_bytes=bytes_out + bytes_in,
                        column_bytes=column_bytes)
            ok = True
            return result
        except RemoteFaultError as exc:
            if exc.endpoint is not None:
                exc.endpoint.mark_down()
            raise
        finally:
            if pairs:
                for endpoint, conn in pairs:
                    if ok:
                        endpoint.give_back(conn)
                    else:
                        conn.close()
            if out is not None:
                try:
                    out.close()
                    out.unlink()
                except Exception:  # pragma: no cover
                    pass
            _RSTORE.unpin(published)

    # ------------------------------------------------------------------ #
    # Whole-pipeline offload
    # ------------------------------------------------------------------ #
    def shard_pipeline(self, sharded: "ShardedTable",
                       spec: dict) -> dict | None:
        """Run a plan's pipeline session across the fleet (see base class).

        The session pins one connection per endpoint for all rounds; the
        round algebra is :mod:`repro.backend.pipeline`'s, shared with the
        process backend.  Any fault aborts the whole session and declines
        the op -- the evaluator reruns in-process, bit-identically.
        """
        if self._closed:
            return None
        rows = len(sharded.table)
        if rows == 0 or sharded.shard_count <= 1:
            return None
        configured, endpoints = self._usable_endpoints()
        if not configured:
            return None
        if not endpoints:
            self._count_fallback(pipeline=True)
            return None
        for retry in (False, True):
            try:
                result, traffic, reply_bytes, column_bytes = \
                    self._pipeline_once(sharded, spec, rows, endpoints)
                self._count(offloaded_ops=1, pipeline_ops=1,
                            traffic_bytes=traffic, reply_bytes=reply_bytes,
                            column_bytes=column_bytes)
                return result
            except RemoteOpError as exc:
                if exc.code == "unknown-table" and not retry:
                    for endpoint in endpoints:
                        endpoint.attached.clear()
                    continue
                self._count_fallback(pipeline=True)
                return None
            except Exception:
                self._count_fallback(pipeline=True)
                return None
        return None  # pragma: no cover - loop always returns

    def _pipeline_once(self, sharded: "ShardedTable", spec: dict, rows: int,
                       endpoints: list[_Endpoint]
                       ) -> tuple[dict, int, int, int]:
        spec = dict(spec, token=next_pipeline_token())
        nodes = {node["id"]: node for node in spec["nodes"]}
        levels = spec["levels"]
        shard_count = sharded.shard_count
        published = _RSTORE.publish(sharded.table)
        _RSTORE.pin(published)
        pairs: list[tuple[_Endpoint, _Connection]] = []
        block = None
        ok = False
        traffic = reply_bytes = column_bytes = 0
        try:
            shards: list[list[tuple[int, int, int]]] = [[] for _ in endpoints]
            for i, (start, stop) in enumerate(sharded.bounds):
                shards[i % len(endpoints)].append((i, start, stop))
            active = [(ep, sh) for ep, sh in zip(endpoints, shards) if sh]
            pairs = self._borrow_all([ep for ep, _ in active], published)
            total_bytes, offsets = pipeline_layout(spec["nodes"], rows)
            if any(ep.shm_ok for ep, _ in active):
                block = shared_memory.SharedMemory(create=True,
                                                   size=total_bytes)
            else:
                block = _LocalBuffer(total_bytes)
            out_name = getattr(block, "name", None)
            messages = [
                {
                    "op": "pipeline_start",
                    "table_id": published.key,
                    "spec": spec,
                    "out": out_name if ep.shm_ok else None,
                    "out_mode": "shm" if ep.shm_ok else "local",
                    "shards": shard_list,
                }
                for (ep, shard_list) in active
            ]
            replies, bytes_out, bytes_in = self._round(
                pairs, messages, "pipeline.round", op="pipeline_start")
            traffic += bytes_out + bytes_in
            reply_bytes += bytes_in
            #: Endpoints whose session columns live server-side and must
            #: be fetched into our buffer (the stream plane).
            fetch_pairs = [
                (ep, conn) for (ep, conn), reply in zip(pairs, replies)
                if reply.get("mode") != "shm"
            ]
            fetched: set[tuple[str, int, str]] = set()

            def fetch_field(node_id: int, field: str) -> None:
                nonlocal traffic, column_bytes
                dtype = _FIELD_DTYPES[field]
                dest = np.ndarray(rows, dtype=dtype, buffer=block.buf,
                                  offset=offsets[node_id][field])
                for endpoint, conn in fetch_pairs:
                    if (endpoint.key, node_id, field) in fetched:
                        continue
                    reply, nbytes = conn.request(
                        {"op": "pipeline_fetch", "token": spec["token"],
                         "node": node_id, "field": field},
                        self._deadline())
                    traffic += nbytes
                    for start, stop, payload in reply["data"]:
                        dest[start:stop] = np.frombuffer(payload, dtype=dtype)
                        column_bytes += len(payload)
                    fetched.add((endpoint.key, node_id, field))

            def read_raw(node_id: int) -> np.ndarray:
                fetch_field(node_id, "raw")
                return np.ndarray(rows, dtype=np.float64, buffer=block.buf,
                                  offset=offsets[node_id]["raw"])

            partials: dict[int, dict] = {}
            popcounts: dict[int, dict] = {}
            summaries: dict[int, dict] = {}
            topk_parts = gather_round(replies, partials, popcounts, summaries)
            result_nodes: dict[int, dict] = {}
            for level_no in range(1, len(levels) + 1):
                resolved_msg, summary_ids = resolve_level(
                    levels[level_no - 1], nodes, spec, shard_count,
                    partials, read_raw, result_nodes)
                msg = round_message(spec, levels, level_no,
                                    resolved_msg, summary_ids)
                replies, bytes_out, bytes_in = self._round(
                    pairs, [dict(msg) for _ in pairs], "pipeline.round",
                    op=msg["op"])
                traffic += bytes_out + bytes_in
                reply_bytes += bytes_in
                topk_parts = gather_round(
                    replies, partials, popcounts, summaries)
            # Stream-plane endpoints still hold their session: pull every
            # remaining column span, then release the sessions.
            if fetch_pairs:
                for node_id, offs in offsets.items():
                    for field in offs:
                        fetch_field(node_id, field)
                for endpoint, conn in fetch_pairs:
                    _, nbytes = conn.request(
                        {"op": "pipeline_release", "token": spec["token"]},
                        self._deadline())
                    traffic += nbytes
            for node_id in nodes:
                entry = result_nodes[node_id]
                fill_node_summary(entry, summaries.get(node_id), shard_count)
                entry.update(node_columns_from_buffer(
                    block.buf, offsets[node_id], rows))
                entry["popcounts"] = [
                    int(popcounts[node_id][s]) for s in range(shard_count)]
            topk = None
            if spec.get("topk_target") is not None:
                topk = [topk_parts[s] for s in range(shard_count)]
            ok = True
            return ({"nodes": result_nodes, "topk": topk},
                    traffic, reply_bytes, column_bytes)
        except RemoteFaultError as exc:
            if exc.endpoint is not None:
                exc.endpoint.mark_down()
            raise
        finally:
            if pairs:
                for endpoint, conn in pairs:
                    if ok:
                        endpoint.give_back(conn)
                    else:
                        # A session may be half-open with replies pending:
                        # closing the connection is the only way to
                        # guarantee no request ever pairs with a stale
                        # reply; the server drops its session state with
                        # the connection.
                        conn.close()
            if block is not None:
                try:
                    block.close()
                    block.unlink()
                except Exception:  # pragma: no cover
                    pass
            _RSTORE.unpin(published)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, int]:
        with self._lock:
            counters = dict(self._counters)
        endpoints = _current_endpoints()
        counters["worker_count"] = len(endpoints)
        counters["workers_alive"] = sum(1 for ep in endpoints if ep.healthy)
        counters.update(_RSTORE.stats())
        return counters


class _null_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False
