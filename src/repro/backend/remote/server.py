"""Standalone TCP worker server for the ``remote`` execution backend.

Run one per host (or several per host, one port each)::

    python -m repro.backend.remote.server --listen 0.0.0.0:7601

Each accepted connection speaks the framed protocol of
:mod:`repro.backend.remote.wire` and serves the same op codes as the
process backend's pipe workers (:mod:`repro.backend.worker`): ``attach``
/ ``drop`` for table publications, ``leaf`` for single-leaf kernels, and
the ``pipeline_*`` session rounds -- executed by the *same*
:class:`~repro.backend.pipeline.WorkerPipeline` the pipe workers run, so
the remote path cannot diverge from the in-process semantics.

Tables are attached once per publication key and held in an LRU-bounded
local store shared by every connection; per-event traffic stays
predicates, span lists and partials.  Column data arrives through one of
two negotiated planes:

* **shared memory** -- a server co-located with the coordinator attaches
  the published blocks (and per-session output blocks) directly; zero
  column bytes ever cross the socket.
* **stream** -- a cross-host server (or one started with ``--no-shm``)
  receives each column once as chunked raw frames at attach time, and
  serves session result columns back through ``pipeline_fetch`` ops.

Both planes execute identical kernels over identical bits, so the
assembled result is bit-identical either way -- the plane only decides
which wire the bytes ride.

A failing op produces an error reply and leaves the connection alive (an
open pipeline session is torn down so the next op starts clean); only a
dead socket or an explicit ``exit`` ends the connection loop.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import pickle
import socket
import threading
import time
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.backend.pipeline import WorkerPipeline, pipeline_layout
from repro.backend.remote import wire
from repro.backend.shm import build_table_from_manifest
from repro.backend.worker import _op_spans

__all__ = ["RemoteWorkerServer", "main"]


def _attach_untracked(name: str, untrack: bool) -> shared_memory.SharedMemory:
    """Attach an existing block, optionally without tracker ownership.

    A standalone server process has its *own* resource tracker; a plain
    attach would register the coordinator's block there and the tracker
    would unlink it when the server exits -- yanking live segments out
    from under the coordinator.  ``untrack=True`` (set by :func:`main`)
    undoes the registration.  In-process servers (tests, examples running
    the server on a thread) share the coordinator's tracker, where the
    attach registration is an idempotent no-op and unregistering would
    *break* the coordinator's cleanup -- they pass ``untrack=False``.
    """
    if not untrack:
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        pass
    shm = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass
    return shm


class _LocalBlock:
    """A process-local stand-in for a shared output block (stream plane)."""

    def __init__(self, nbytes: int):
        self.buf = memoryview(bytearray(max(1, nbytes)))

    def close(self) -> None:
        self.buf = None


class _TableEntry:
    """One attached publication: the table plus whatever keeps it alive."""

    def __init__(self, key: str, mode: str, table,
                 blocks: list[shared_memory.SharedMemory]):
        self.key = key
        self.mode = mode
        self.table = table
        self.blocks = blocks
        self.pins = 0
        self.retired = False

    def close(self) -> None:
        for shm in self.blocks:
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self.blocks = []


class _TableStore:
    """LRU-bounded attached tables, shared by every connection.

    Ops pin the entry they operate on; eviction of a pinned entry is
    deferred until the last pin drops, so a session on one connection can
    never have its column mappings closed by an attach on another.
    """

    def __init__(self, max_tables: int):
        self._lock = threading.Lock()
        self._tables: dict[str, _TableEntry] = {}
        self._max_tables = max_tables

    def get(self, key: str) -> _TableEntry | None:
        with self._lock:
            entry = self._tables.get(key)
            if entry is not None:
                self._tables.pop(key)
                self._tables[key] = entry  # LRU touch
                entry.pins += 1
            return entry

    def release(self, entry: _TableEntry) -> None:
        with self._lock:
            entry.pins -= 1
            close = entry.retired and entry.pins <= 0
        if close:
            entry.close()

    def put(self, entry: _TableEntry) -> None:
        evicted: list[_TableEntry] = []
        with self._lock:
            if entry.key in self._tables:
                entry.close()
                return
            self._tables[entry.key] = entry
            while len(self._tables) > self._max_tables:
                oldest = self._tables.pop(next(iter(self._tables)))
                oldest.retired = True
                if oldest.pins <= 0:
                    evicted.append(oldest)
        for old in evicted:
            old.close()

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._tables

    def drop(self, key: str) -> None:
        with self._lock:
            entry = self._tables.pop(key, None)
            if entry is not None:
                entry.retired = True
                if entry.pins > 0:
                    entry = None
        if entry is not None:
            entry.close()

    def close(self) -> None:
        with self._lock:
            entries = list(self._tables.values())
            self._tables.clear()
        for entry in entries:
            entry.close()


class _Session:
    """One connection's live pipeline session plus its pinned table."""

    def __init__(self, pipeline: WorkerPipeline, entry: _TableEntry,
                 mode: str):
        self.pipeline = pipeline
        self.entry = entry
        self.mode = mode


class RemoteWorkerServer:
    """A threaded TCP worker server (one thread per connection).

    Usable standalone via :func:`main` or in-process for tests and
    examples: ``start()`` binds (port 0 picks a free port, see
    :attr:`address`) and serves on a background thread; ``stop()`` tears
    everything down.  ``stall_ops`` and ``drop_connections()`` are fault
    -injection hooks for the timeout / reset test cases.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 allow_shm: bool = True, max_tables: int = 8,
                 untrack_shm: bool = False,
                 protocol_version: int | None = None):
        self.host = host
        self.port = port
        self.allow_shm = allow_shm
        self.untrack_shm = untrack_shm
        #: Version announced in the handshake; tests override it to
        #: exercise the client's mismatch handling.
        self.protocol_version = (wire.PROTOCOL_VERSION
                                 if protocol_version is None
                                 else protocol_version)
        #: Op names that should hang instead of replying (fault injection).
        self.stall_ops: set[str] = set()
        self._store = _TableStore(max_tables)
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._closing = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "RemoteWorkerServer":
        listener = socket.create_server((self.host, self.port))
        listener.settimeout(0.2)
        self.host, self.port = listener.getsockname()[:2]
        self._listener = listener
        self._closing.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-remote-accept", daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop listening, drop live connections, release attached tables."""
        self._closing.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            with contextlib.suppress(Exception):
                listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        self.drop_connections()
        self._store.close()

    def drop_connections(self) -> None:
        """Abruptly close every live connection (fault injection / stop)."""
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            with contextlib.suppress(Exception):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(Exception):
                conn.close()

    def __enter__(self) -> "RemoteWorkerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (standalone entrypoint)."""
        if self._accept_thread is None:
            self.start()
        try:
            while not self._closing.is_set():
                time.sleep(0.2)
        finally:
            self.stop()

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._conn_lock:
                self._conns.add(conn)
            threading.Thread(target=self._serve_connection, args=(conn,),
                             name="repro-remote-conn", daemon=True).start()

    # ------------------------------------------------------------------ #
    # Connection loop
    # ------------------------------------------------------------------ #
    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        session: _Session | None = None
        uploads: dict[str, dict[str, tuple[str, Any]]] = {}

        def drop_session() -> None:
            nonlocal session
            if session is not None:
                session.pipeline.close()
                self._store.release(session.entry)
                session = None

        try:
            if not self._handshake(conn):
                return
            while not self._closing.is_set():
                try:
                    msg, _ = wire.read_obj(conn)
                except wire.WireError:
                    break
                op = msg.get("op")
                if op in self.stall_ops:
                    # Fault injection: hold the reply until the peer gives
                    # up (its read deadline fires) or the server stops.
                    self._closing.wait(60.0)
                    break
                try:
                    if op == "exit":
                        wire.send_obj(conn, {"ok": True})
                        break
                    session = self._dispatch(conn, msg, op, session,
                                             uploads, drop_session)
                except wire.WireError:
                    break
                except Exception as exc:
                    if op and op.startswith("pipeline"):
                        drop_session()
                    try:
                        wire.send_obj(
                            conn, {"ok": False, "error": f"{op}: {exc!r}"})
                    except wire.WireError:
                        break
        finally:
            drop_session()
            with self._conn_lock:
                self._conns.discard(conn)
            with contextlib.suppress(Exception):
                conn.close()

    def _handshake(self, conn: socket.socket) -> bool:
        try:
            hello, _ = wire.read_obj(conn, deadline=time.monotonic() + 30.0)
        except wire.WireError:
            return False
        theirs = hello.get("version") if isinstance(hello, dict) else None
        reply = {
            "ok": theirs == self.protocol_version,
            "version": self.protocol_version,
            "pid": os.getpid(),
            "shm": self.allow_shm,
        }
        if not reply["ok"]:
            reply["error"] = (f"protocol version {theirs} != "
                              f"{self.protocol_version}")
        try:
            wire.send_obj(conn, reply)
        except wire.WireError:
            return False
        return bool(reply["ok"])

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    def _dispatch(self, conn: socket.socket, msg: dict, op: str,
                  session: _Session | None, uploads: dict,
                  drop_session) -> _Session | None:
        if op == "ping":
            wire.send_obj(conn, {"ok": True, "pid": os.getpid()})
        elif op == "attach":
            self._op_attach(conn, msg)
        elif op == "column_data":
            self._op_column_data(conn, msg, uploads)
        elif op == "attach_done":
            self._op_attach_done(conn, msg, uploads)
        elif op == "drop":
            self._store.drop(msg["table_id"])
            wire.send_obj(conn, {"ok": True})
        elif op == "leaf":
            self._op_leaf(conn, msg)
        elif op == "pipeline_start":
            drop_session()
            session = self._op_pipeline_start(conn, msg)
        elif op in ("pipeline_level", "pipeline_finish"):
            if session is None or session.pipeline.token != msg["token"]:
                wire.send_obj(conn, {"ok": False,
                                     "error": f"{op}: no matching session"})
            elif op == "pipeline_level":
                t0 = time.perf_counter()
                payload = session.pipeline.level(msg)
                wire.send_obj(conn, {"ok": True, **payload,
                                     **_op_spans(msg, t0, "pipeline_level")})
            else:
                t0 = time.perf_counter()
                payload = session.pipeline.finish(msg)
                # On the shared-memory plane the columns already sit in
                # the coordinator's block: the session is complete.  On
                # the stream plane the client still fetches them, so the
                # session stays open until pipeline_release.
                if session.mode == "shm":
                    drop_session()
                    session = None
                wire.send_obj(conn, {"ok": True, **payload,
                                     **_op_spans(msg, t0, "pipeline_finish")})
        elif op == "pipeline_fetch":
            if session is None or session.pipeline.token != msg["token"]:
                wire.send_obj(conn, {"ok": False,
                                     "error": "pipeline_fetch: no session"})
            else:
                self._op_pipeline_fetch(conn, msg, session)
        elif op in ("pipeline_abort", "pipeline_release"):
            drop_session()
            session = None
            wire.send_obj(conn, {"ok": True})
        else:
            wire.send_obj(conn, {"ok": False, "error": f"unknown op {op!r}"})
        return session

    def _op_attach(self, conn: socket.socket, msg: dict) -> None:
        manifest = msg["manifest"]
        key = manifest["table_id"]
        if self._store.contains(key):
            entry = self._store.get(key)
            try:
                # "have" tells the client to skip the column upload a
                # fresh stream negotiation would otherwise start.
                wire.send_obj(conn, {"ok": True, "mode": entry.mode,
                                     "have": True})
            finally:
                self._store.release(entry)
            return
        if self.allow_shm and msg.get("mode_hint") != "stream":
            try:
                table, blocks = self._build_shm_table(manifest)
            except Exception:
                pass
            else:
                self._store.put(_TableEntry(key, "shm", table, blocks))
                wire.send_obj(conn, {"ok": True, "mode": "shm"})
                return
        # Stream plane: ask the client to ship the columns once.
        wire.send_obj(conn, {"ok": True, "mode": "stream"})

    def _build_shm_table(self, manifest: dict):
        if not self.untrack_shm:
            return build_table_from_manifest(manifest)
        # Standalone process: attach every block untracked (see
        # _attach_untracked), then reuse the manifest reconstruction.
        from repro.storage.table import Table

        rows = manifest["rows"]
        blocks: list[shared_memory.SharedMemory] = []
        columns: dict[str, np.ndarray] = {}
        try:
            for spec in manifest["columns"]:
                shm = _attach_untracked(spec["shm"], True)
                blocks.append(shm)
                if spec["kind"] == "f8":
                    columns[spec["name"]] = np.ndarray(
                        rows, dtype=np.float64, buffer=shm.buf)
                else:
                    columns[spec["name"]] = pickle.loads(
                        bytes(shm.buf[:spec["nbytes"]]))
        except Exception:
            for shm in blocks:
                with contextlib.suppress(Exception):
                    shm.close()
            raise
        if not columns:
            return Table.empty(manifest["name"], []), blocks
        return Table.adopt_columns(manifest["name"], columns), blocks

    def _op_column_data(self, conn: socket.socket, msg: dict,
                        uploads: dict) -> None:
        nbytes = int(msg["nbytes"])
        buf = bytearray(nbytes)
        wire.read_raw_into(conn, buf, nbytes,
                           deadline=time.monotonic() + 120.0)
        uploads.setdefault(msg["table_id"], {})[msg["name"]] = (
            msg["kind"], buf)
        wire.send_obj(conn, {"ok": True})

    def _op_attach_done(self, conn: socket.socket, msg: dict,
                        uploads: dict) -> None:
        from repro.storage.table import Table

        manifest = msg["manifest"]
        key = manifest["table_id"]
        received = uploads.pop(key, {})
        columns: dict[str, np.ndarray] = {}
        for spec in manifest["columns"]:
            kind, buf = received[spec["name"]]
            if kind == "f8":
                columns[spec["name"]] = np.frombuffer(buf, dtype=np.float64)
            else:
                columns[spec["name"]] = pickle.loads(bytes(buf))
        if not columns:
            table = Table.empty(manifest["name"], [])
        else:
            table = Table.adopt_columns(manifest["name"], columns)
        self._store.put(_TableEntry(key, "stream", table, []))
        wire.send_obj(conn, {"ok": True, "mode": "stream"})

    def _op_leaf(self, conn: socket.socket, msg: dict) -> None:
        entry = self._store.get(msg["table_id"])
        if entry is None:
            wire.send_obj(conn, {"ok": False, "code": "unknown-table",
                                 "error": f"table {msg['table_id']!r} "
                                          "not attached"})
            return
        try:
            t0 = time.perf_counter()
            rows = len(entry.table)
            dtype = np.float64 if msg["kind"] == "signed" else np.bool_
            predicate = msg["predicate"]
            pieces: list[tuple[int, int, np.ndarray]] = []
            for start, stop in msg["spans"]:
                shard = entry.table.slice_rows(start, stop)
                if msg["kind"] == "signed":
                    piece = np.asarray(predicate.signed_distances(shard),
                                       dtype=np.float64)
                else:
                    piece = np.asarray(predicate.exact_mask(shard),
                                       dtype=bool)
                pieces.append((start, stop, piece))
            spans = _op_spans(msg, t0, "leaf", kind=msg["kind"],
                              shards=len(msg["spans"]))
            if msg.get("out_mode") == "shm":
                out = _attach_untracked(msg["out"], self.untrack_shm)
                try:
                    dest = np.ndarray(rows, dtype=dtype, buffer=out.buf)
                    for start, stop, piece in pieces:
                        dest[start:stop] = piece
                finally:
                    out.close()
                wire.send_obj(conn, {"ok": True, "mode": "shm", **spans})
            else:
                wire.send_obj(conn, {
                    "ok": True,
                    "mode": "inline",
                    "data": [(start, stop, piece.tobytes())
                             for start, stop, piece in pieces],
                    **spans,
                })
        finally:
            self._store.release(entry)

    def _op_pipeline_start(self, conn: socket.socket,
                           msg: dict) -> _Session | None:
        entry = self._store.get(msg["table_id"])
        if entry is None:
            wire.send_obj(conn, {"ok": False, "code": "unknown-table",
                                 "error": f"table {msg['table_id']!r} "
                                          "not attached"})
            return None
        t0 = time.perf_counter()
        mode = "local"
        block = None
        try:
            if self.allow_shm and msg.get("out_mode") == "shm":
                try:
                    block = _attach_untracked(msg["out"], self.untrack_shm)
                    mode = "shm"
                except Exception:
                    block = None
            if block is None:
                total, _ = pipeline_layout(msg["spec"]["nodes"],
                                           msg["spec"]["rows"])
                block = _LocalBlock(total)
            pipeline = WorkerPipeline(entry.table, msg, block=block)
        except BaseException:
            self._store.release(entry)
            if block is not None:
                with contextlib.suppress(Exception):
                    block.close()
            raise
        session = _Session(pipeline, entry, mode)
        wire.send_obj(conn, {"ok": True, "mode": mode, **pipeline.start(),
                             **_op_spans(msg, t0, "pipeline_start")})
        return session

    def _op_pipeline_fetch(self, conn: socket.socket, msg: dict,
                           session: _Session) -> None:
        """Serve one (node, field) column over this session's shard spans.

        Only meaningful on the stream plane -- the client assembles the
        spans into its own session buffer.  Spans ride inside the pickled
        reply; one node-field per request keeps every reply far under
        MAX_FRAME.
        """
        views = session.pipeline.views[msg["node"]][msg["field"]]
        data = [(start, stop, views[start:stop].tobytes())
                for _shard, start, stop in session.pipeline.shards]
        wire.send_obj(conn, {"ok": True, "data": data})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="repro remote worker server")
    parser.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                        help="address to listen on (port 0 = ephemeral)")
    parser.add_argument("--no-shm", action="store_true",
                        help="never attach coordinator shared memory; "
                             "stream columns over TCP instead")
    parser.add_argument("--max-tables", type=int, default=8,
                        help="attached-table LRU capacity (default 8)")
    args = parser.parse_args(argv)
    host, _, port = args.listen.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--listen expects HOST:PORT, got {args.listen!r}")
    server = RemoteWorkerServer(
        host, int(port),
        allow_shm=not args.no_shm,
        max_tables=args.max_tables,
        untrack_shm=True,
    )
    server.start()
    # Parsed by scripts that launch workers on ephemeral ports.
    print(f"repro-remote-worker listening on {server.endpoint}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
