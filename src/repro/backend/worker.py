"""Worker-process entrypoint for the ``process`` execution backend.

Each worker owns one duplex pipe to the coordinator and serves a tiny
op-code protocol.  Columns never travel over the pipe: an ``attach`` op
carries only a shared-memory manifest, after which the worker holds a
zero-copy table reconstruction; ``leaf`` ops carry a pickled predicate
plus shard spans and write their results into a per-call output block the
coordinator allocated.  The ``pipeline_*`` ops
(:mod:`repro.backend.pipeline`) run a whole plan's per-shard stages as a
short session of rounds, writing every column into one shared output
block and replying only partials.  A failing op produces an error reply
and leaves the worker alive (an open pipeline session is torn down, so
the next op starts clean) -- only a dead pipe (coordinator gone) or an
explicit ``exit`` ends the loop, so one poisonous message cannot wedge
the pool.
"""

from __future__ import annotations

import os
import time
from typing import Any

import numpy as np

from repro.backend.pipeline import WorkerPipeline
from repro.backend.shm import attach_block, build_table_from_manifest

__all__ = ["worker_main"]


def _op_spans(msg: dict[str, Any], t0: float, op: str,
              **attrs: Any) -> dict[str, Any]:
    """Worker-side span records for one op, when the coordinator asked.

    Timed on this worker's own ``perf_counter`` -- the coordinator cannot
    share a clock with us, so spans ship as ``(start, dur)`` relative to
    the op start and get stitched under the broadcast span that awaited
    this reply (:meth:`repro.obs.trace.Trace.add_remote_spans`).  Without
    ``msg["trace"]`` the reply stays exactly as before: zero extra bytes.
    """
    if not msg.get("trace"):
        return {}
    return {
        "pid": os.getpid(),
        "spans": [{
            "name": f"worker.{op}",
            "start": 0.0,
            "dur": time.perf_counter() - t0,
            "attrs": {"pid": os.getpid(), **attrs},
        }],
    }


class _AttachedTable:
    """A reconstructed table plus the block handles keeping it mapped."""

    def __init__(self, manifest: dict[str, Any]):
        self.table, self.blocks = build_table_from_manifest(manifest)

    def close(self) -> None:
        for shm in self.blocks:
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass


def _run_leaf(tables: dict[str, _AttachedTable], msg: dict[str, Any]) -> None:
    """Compute signed distances / exact masks for this worker's spans."""
    entry = tables[msg["table_id"]]
    rows = len(entry.table)
    out = attach_block(msg["out"])
    try:
        dtype = np.float64 if msg["kind"] == "signed" else np.bool_
        dest = np.ndarray(rows, dtype=dtype, buffer=out.buf)
        predicate = msg["predicate"]
        for start, stop in msg["spans"]:
            shard = entry.table.slice_rows(start, stop)
            if msg["kind"] == "signed":
                piece = np.asarray(predicate.signed_distances(shard),
                                   dtype=np.float64)
            else:
                piece = np.asarray(predicate.exact_mask(shard), dtype=bool)
            dest[start:stop] = piece
    finally:
        out.close()


def worker_main(conn) -> None:
    """Serve ops from ``conn`` until the pipe dies or ``exit`` arrives."""
    tables: dict[str, _AttachedTable] = {}
    pipeline: WorkerPipeline | None = None

    def drop_pipeline() -> None:
        nonlocal pipeline
        if pipeline is not None:
            pipeline.close()
            pipeline = None

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            except Exception as exc:
                # recv() consumed a whole frame but could not unpickle it
                # (e.g. the predicate's module is not importable here); the
                # protocol stream is still aligned, so report and continue.
                try:
                    conn.send({"ok": False, "error": f"recv: {exc!r}"})
                    continue
                except Exception:
                    break
            op = msg.get("op")
            try:
                if op == "exit":
                    conn.send({"ok": True})
                    break
                if op == "ping":
                    conn.send({"ok": True, "pid": os.getpid()})
                elif op == "attach":
                    table_id = msg["manifest"]["table_id"]
                    if table_id not in tables:
                        tables[table_id] = _AttachedTable(msg["manifest"])
                    conn.send({"ok": True})
                elif op == "drop":
                    entry = tables.pop(msg["table_id"], None)
                    if entry is not None:
                        entry.close()
                    conn.send({"ok": True})
                elif op == "leaf":
                    t0 = time.perf_counter()
                    _run_leaf(tables, msg)
                    conn.send({"ok": True,
                               **_op_spans(msg, t0, "leaf",
                                           kind=msg["kind"],
                                           shards=len(msg["spans"]))})
                elif op == "pipeline_start":
                    drop_pipeline()
                    t0 = time.perf_counter()
                    pipeline = WorkerPipeline(
                        tables[msg["table_id"]].table, msg)
                    conn.send({"ok": True, **pipeline.start(),
                               **_op_spans(msg, t0, "pipeline_start")})
                elif op in ("pipeline_level", "pipeline_finish"):
                    if pipeline is None or pipeline.token != msg["token"]:
                        conn.send({"ok": False,
                                   "error": f"{op}: no matching session"})
                    elif op == "pipeline_level":
                        t0 = time.perf_counter()
                        payload = pipeline.level(msg)
                        conn.send({"ok": True, **payload,
                                   **_op_spans(msg, t0, "pipeline_level")})
                    else:
                        t0 = time.perf_counter()
                        payload = pipeline.finish(msg)
                        drop_pipeline()
                        conn.send({"ok": True, **payload,
                                   **_op_spans(msg, t0, "pipeline_finish")})
                elif op == "pipeline_abort":
                    drop_pipeline()
                    conn.send({"ok": True})
                else:
                    conn.send({"ok": False, "error": f"unknown op {op!r}"})
            except Exception as exc:
                # A half-done pipeline session has no defined state to
                # resume from; drop it so the error reply leaves the worker
                # clean for the next (unrelated) op.
                if op in ("pipeline_start", "pipeline_level",
                          "pipeline_finish"):
                    drop_pipeline()
                try:
                    conn.send({"ok": False, "error": f"{op}: {exc!r}"})
                except Exception:
                    break
    finally:
        drop_pipeline()
        for entry in tables.values():
            entry.close()
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass
