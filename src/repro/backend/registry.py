"""Provider registry for shard-execution backends.

Backends are registered under a short name and instantiated per engine via
their factory, so third-party packages extend the system additively::

    from repro.backend import register_backend

    register_backend("arrow-mmap", ArrowMmapBackend)

Selection happens through ``PipelineConfig(backend=...)`` or the
``REPRO_BACKEND`` environment variable; both validate against this
registry and raise ``ValueError`` naming the registered backends on an
unknown name, mirroring the ``REPRO_SHARDS`` contract.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.backend.base import ExecBackend

__all__ = [
    "available_backends",
    "create_backend",
    "register_backend",
    "unregister_backend",
]

#: Factories take the engine's configured ``max_workers`` (or None) and
#: return a fresh backend instance; one instance per engine keeps stats
#: and lifecycle per-engine even when pools behind them are shared.
BackendFactory = Callable[..., ExecBackend]

_REGISTRY: dict[str, BackendFactory] = {}
_REGISTRY_LOCK = threading.Lock()


def register_backend(name: str, factory: BackendFactory, *,
                     replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Duplicate registration raises ``ValueError`` unless ``replace=True``
    (explicit override is allowed; silent shadowing is not).
    """
    if not isinstance(name, str) or not name:
        raise ValueError("backend name must be a non-empty string")
    if not callable(factory):
        raise ValueError(f"backend factory for {name!r} must be callable")
    with _REGISTRY_LOCK:
        if name in _REGISTRY and not replace:
            raise ValueError(
                f"backend {name!r} is already registered; "
                "pass replace=True to override"
            )
        _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (unknown name raises ``ValueError``)."""
    with _REGISTRY_LOCK:
        if name not in _REGISTRY:
            raise ValueError(f"backend {name!r} is not registered")
        del _REGISTRY[name]


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def create_backend(name: str, *, max_workers: int | None = None) -> ExecBackend:
    """Instantiate the backend registered under ``name``.

    Raises ``ValueError`` listing the registered names when ``name`` is
    unknown -- the same failure shape as an invalid ``REPRO_SHARDS``.
    """
    with _REGISTRY_LOCK:
        factory = _REGISTRY.get(name)
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
    if factory is None:
        raise ValueError(
            f"unknown execution backend {name!r}; registered backends: {known}"
        )
    backend = factory(max_workers=max_workers)
    if not isinstance(backend, ExecBackend):
        raise TypeError(
            f"backend factory for {name!r} returned {type(backend).__name__}, "
            "expected an ExecBackend"
        )
    return backend
