"""Whole-pipeline offload protocol for the ``process`` backend.

One *pipeline op* runs leaf evaluation, reduced normalization,
combination and fulfilment masks for a whole plan inside the worker pool,
over the table columns the workers already have mapped from shared
memory.  The op is a short session of broadcast rounds, one per plan
level, because the reduced normalization of every node needs its global
``(d_min, d_max)`` resolved before the node can be normalized (and a
composite combined from its children's normalized columns):

1. ``pipeline_start`` -- workers compute every leaf's signed distances,
   raw distances and exact mask over their shards, writing the columns
   into one coordinator-allocated output block; the reply carries only
   per-leaf per-shard :class:`~repro.core.reduction.DistanceBoundsPartial`
   partials (for nodes on the partial-merge bounds path) and mask
   popcounts.
2. ``pipeline_level`` (once per composite level) -- the coordinator
   resolves the previous level's bounds (merging partials, or one direct
   partition over the block for nodes whose ``keep`` is too large for
   partials -- the same adaptive cutoff the in-process path uses) and
   broadcasts them; workers normalize the resolved nodes, combine this
   level's composites and reply with the next round of partials, mask
   popcounts and per-shard order-statistic summaries.
3. ``pipeline_finish`` -- resolves the top level, normalizes it, and
   optionally returns per-shard :class:`~repro.core.reduction.TopKCandidates`
   partials of the root column for the displayed-set selection.

Column data crosses the process boundary only through the shared-memory
output block; the pipe replies are partials, popcounts and summaries --
O(screen budget + shard count) bytes per event, independent of the rows
per shard.  Every value written or replied is produced by the exact
functions the in-process evaluator runs over the same bits, so the
assembled result is bit-identical to the in-process cold path.

This module is imported on both sides of the pipe and depends only on
NumPy-level machinery (:mod:`repro.core.reduction`,
:mod:`repro.core.normalization`, :mod:`repro.core.combine`,
:mod:`repro.backend.shm`) -- never on the plan/evaluator.

Both session coordinators -- :class:`~repro.backend.process.ProcessBackend`
over pipes and :class:`~repro.backend.remote.client.RemoteBackend` over
TCP -- drive their rounds through the helpers here
(:func:`gather_round`, :func:`resolve_level`, :func:`round_message`,
:func:`node_columns_from_buffer`), so the round algebra exists exactly
once and a transport cannot diverge from the in-process semantics.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

import numpy as np

from repro.backend.shm import attach_block
from repro.core.combine import CombinationRule, combine_columns
from repro.core.normalization import apply_normalization, reduced_bounds
from repro.core.reduction import (
    EMPTY_SHARD_SUMMARY,
    distance_bounds_partial,
    merge_distance_bounds_many,
    resolve_distance_bounds,
    shard_summary,
    summaries_from_partials,
    topk_candidates,
)

__all__ = [
    "PIPELINE_OPS",
    "WorkerPipeline",
    "fill_node_summary",
    "gather_round",
    "next_pipeline_token",
    "node_columns_from_buffer",
    "pipeline_layout",
    "resolve_level",
    "round_message",
]

#: Op codes served by :func:`repro.backend.worker.worker_main`.
PIPELINE_OPS = (
    "pipeline_start",
    "pipeline_level",
    "pipeline_finish",
    "pipeline_abort",
)

_TOKEN_SEQ = itertools.count(1)


def next_pipeline_token() -> str:
    """A coordinator-unique token naming one pipeline session."""
    return f"pipeline.{next(_TOKEN_SEQ)}"


def pipeline_layout(nodes: list[dict[str, Any]],
                    rows: int) -> tuple[int, dict[int, dict[str, int]]]:
    """Byte offsets of every node's columns in the shared output block.

    Per node: ``raw`` (f8), ``normalized`` (f8) and ``mask`` (bool);
    leaves additionally get ``signed`` (f8).  Offsets are 8-byte aligned
    so the f8 views are always aligned regardless of the bool columns.
    Both sides derive the layout from the spec, so only block name and
    spec cross the pipe.
    """
    offsets: dict[int, dict[str, int]] = {}
    cursor = 0

    def reserve(nbytes: int) -> int:
        nonlocal cursor
        start = cursor
        cursor += (nbytes + 7) & ~7
        return start

    for node in nodes:
        entry = {
            "raw": reserve(rows * 8),
            "normalized": reserve(rows * 8),
            "mask": reserve(rows),
        }
        if node["kind"] == "leaf":
            entry["signed"] = reserve(rows * 8)
        offsets[node["id"]] = entry
    return max(1, cursor), offsets


# --------------------------------------------------------------------------- #
# Coordinator-side round algebra (shared by the process and remote backends)
# --------------------------------------------------------------------------- #
def gather_round(replies: list[dict[str, Any]], partials: dict,
                 popcounts: dict, summaries: dict) -> dict:
    """Merge one round's per-worker payloads (disjoint shard subsets)."""
    topk: dict[int, Any] = {}
    for reply in replies:
        for node_id, per_shard in reply.get("partials", {}).items():
            partials.setdefault(node_id, {}).update(per_shard)
        for node_id, per_shard in reply.get("popcounts", {}).items():
            popcounts.setdefault(node_id, {}).update(per_shard)
        for node_id, per_shard in reply.get("summaries", {}).items():
            summaries.setdefault(node_id, {}).update(per_shard)
        topk.update(reply.get("topk", {}))
    return topk


def resolve_level(level_ids: list[int], nodes: dict, spec: dict,
                  shard_count: int, partials: dict,
                  read_raw: Callable[[int], np.ndarray],
                  result_nodes: dict) -> tuple[dict, list[int]]:
    """Resolve one level's bounds exactly as the in-process path does.

    Partial-path nodes merge their per-shard bounds partials (shard
    order, associative algebra) and derive their summaries from them;
    direct-path nodes run one :func:`reduced_bounds` partition over the
    raw column -- handed to us by ``read_raw(node_id)``, which the
    process backend serves as a zero-copy view over the shared block and
    the remote backend as the (possibly fetched) assembled column -- and
    have the workers count their summaries next round.
    """
    partial_ids = set(spec["partial_nodes"])
    resolved_msg: dict[int, tuple | None] = {}
    summary_ids: list[int] = []
    for node_id in level_ids:
        keep = nodes[node_id]["keep"]
        if node_id in partial_ids:
            per_shard = [partials[node_id][s] for s in range(shard_count)]
            resolved = resolve_distance_bounds(
                merge_distance_bounds_many(per_shard))
            node_summaries = summaries_from_partials(per_shard, resolved)
        else:
            resolved = reduced_bounds(read_raw(node_id), keep)
            node_summaries = None
            if resolved is not None:
                summary_ids.append(node_id)
        resolved_msg[node_id] = resolved
        result_nodes[node_id] = {
            "resolved": resolved, "summaries": node_summaries}
    return resolved_msg, summary_ids


def round_message(spec: dict, levels: list[list[int]], level_no: int,
                  resolved_msg: dict, summary_ids: list[int]) -> dict[str, Any]:
    """The ``pipeline_level`` / ``pipeline_finish`` message for one round."""
    finish = level_no == len(levels)
    msg: dict[str, Any] = {
        "op": "pipeline_finish" if finish else "pipeline_level",
        "token": spec["token"],
        "resolved": resolved_msg,
        "summaries_for": summary_ids,
    }
    if finish:
        target = spec.get("topk_target")
        msg["topk"] = (levels[-1][0], target) if target is not None else None
    else:
        msg["combine"] = levels[level_no]
    return msg


def fill_node_summary(entry: dict, per_shard: dict | None,
                      shard_count: int) -> None:
    """Materialise a node's summary matrix from worker-counted rows.

    Partial-path nodes already carry theirs (derived from the merged
    partials in :func:`resolve_level`); direct-path nodes get the
    per-shard counting-pass rows here, or the empty-summary rows when the
    node's bounds never resolved (degenerate column).
    """
    if entry["summaries"] is not None:
        return
    if per_shard is None:
        entry["summaries"] = np.asarray(
            [EMPTY_SHARD_SUMMARY] * shard_count, dtype=float)
    else:
        entry["summaries"] = np.asarray(
            [per_shard[s] for s in range(shard_count)], dtype=float)


def node_columns_from_buffer(buf, offs: dict[str, int],
                             rows: int) -> dict[str, np.ndarray]:
    """Copy one node's assembled columns out of a session output buffer."""
    columns = {
        "raw": np.ndarray(rows, dtype=np.float64, buffer=buf,
                          offset=offs["raw"]).copy(),
        "normalized": np.ndarray(rows, dtype=np.float64, buffer=buf,
                                 offset=offs["normalized"]).copy(),
        "mask": np.ndarray(rows, dtype=np.bool_, buffer=buf,
                           offset=offs["mask"]).copy(),
    }
    if "signed" in offs:
        columns["signed"] = np.ndarray(rows, dtype=np.float64, buffer=buf,
                                       offset=offs["signed"]).copy()
    return columns


class WorkerPipeline:
    """Worker-side state of one pipeline session.

    Holds the attached output block and the per-node column views over
    it; each round method returns the reply payload (partials, popcounts,
    summaries) for this worker's shards.

    ``block`` overrides the default shared-memory attach of ``msg["out"]``
    with any object exposing a writable ``buf`` and a ``close()`` -- the
    remote worker server passes a process-local buffer when it cannot
    reach the coordinator's shared memory, and the session's columns are
    then fetched over the wire instead.
    """

    def __init__(self, table, msg: dict[str, Any], block=None):
        spec = msg["spec"]
        self.token: str = spec["token"]
        self.rows: int = spec["rows"]
        self.target_max: float = spec["target_max"]
        self.nodes: dict[int, dict[str, Any]] = {
            node["id"]: node for node in spec["nodes"]
        }
        self.order: list[int] = [node["id"] for node in spec["nodes"]]
        self.partial_ids = frozenset(spec["partial_nodes"])
        self.table = table
        self.shards: list[tuple[int, int, int]] = [
            (int(i), int(start), int(stop)) for i, start, stop in msg["shards"]
        ]
        self.block = attach_block(msg["out"]) if block is None else block
        _, offsets = pipeline_layout(spec["nodes"], self.rows)
        self.views: dict[int, dict[str, np.ndarray]] = {}
        for node_id, offs in offsets.items():
            views = {
                "raw": np.ndarray(self.rows, dtype=np.float64,
                                  buffer=self.block.buf, offset=offs["raw"]),
                "normalized": np.ndarray(self.rows, dtype=np.float64,
                                         buffer=self.block.buf,
                                         offset=offs["normalized"]),
                "mask": np.ndarray(self.rows, dtype=np.bool_,
                                   buffer=self.block.buf, offset=offs["mask"]),
            }
            if "signed" in offs:
                views["signed"] = np.ndarray(self.rows, dtype=np.float64,
                                             buffer=self.block.buf,
                                             offset=offs["signed"])
            self.views[node_id] = views

    # ------------------------------------------------------------------ #
    def start(self) -> dict[str, Any]:
        """Leaf kernels over this worker's shards; reply partials only."""
        partials: dict[int, dict[int, Any]] = {}
        popcounts: dict[int, dict[int, int]] = {}
        for node_id in self.order:
            node = self.nodes[node_id]
            if node["kind"] != "leaf":
                continue
            predicate = node["predicate"]
            views = self.views[node_id]
            for shard_no, start, stop in self.shards:
                shard = self.table.slice_rows(start, stop)
                signed = np.asarray(predicate.signed_distances(shard),
                                    dtype=np.float64)
                raw = np.abs(signed)
                mask = np.asarray(predicate.exact_mask(shard), dtype=bool)
                views["signed"][start:stop] = signed
                views["raw"][start:stop] = raw
                views["mask"][start:stop] = mask
                self._summarise(node_id, node, shard_no, raw, mask,
                                partials, popcounts)
        return {"partials": partials, "popcounts": popcounts}

    def level(self, msg: dict[str, Any]) -> dict[str, Any]:
        """Normalize the resolved nodes, combine this level's composites."""
        summaries = self._normalize_round(msg)
        partials: dict[int, dict[int, Any]] = {}
        popcounts: dict[int, dict[int, int]] = {}
        for node_id in msg.get("combine", ()):
            node = self.nodes[node_id]
            rule = CombinationRule[node["rule"]]
            weights = np.asarray(node["weights"], dtype=float)
            children = node["children"]
            views = self.views[node_id]
            for shard_no, start, stop in self.shards:
                columns = [
                    self.views[child]["normalized"][start:stop]
                    for child in children
                ]
                combined = combine_columns(rule, columns, weights)
                views["raw"][start:stop] = combined
                if rule is CombinationRule.AND:
                    mask = np.ones(stop - start, dtype=bool)
                    for child in children:
                        mask &= self.views[child]["mask"][start:stop]
                else:
                    mask = np.zeros(stop - start, dtype=bool)
                    for child in children:
                        mask |= self.views[child]["mask"][start:stop]
                views["mask"][start:stop] = mask
                self._summarise(node_id, node, shard_no, combined, mask,
                                partials, popcounts)
        return {"partials": partials, "popcounts": popcounts,
                "summaries": summaries}

    def finish(self, msg: dict[str, Any]) -> dict[str, Any]:
        """Normalize the top level; optional root top-k partials."""
        summaries = self._normalize_round(msg)
        topk: dict[int, Any] = {}
        request = msg.get("topk")
        if request is not None:
            root_id, target = request
            normalized = self.views[root_id]["normalized"]
            for shard_no, start, stop in self.shards:
                topk[shard_no] = topk_candidates(
                    normalized[start:stop], target, offset=start)
        return {"summaries": summaries, "topk": topk}

    def close(self) -> None:
        self.views.clear()
        try:
            self.block.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass

    # ------------------------------------------------------------------ #
    def _summarise(self, node_id: int, node: dict[str, Any], shard_no: int,
                   raw: np.ndarray, mask: np.ndarray,
                   partials: dict, popcounts: dict) -> None:
        if node_id in self.partial_ids:
            partials.setdefault(node_id, {})[shard_no] = \
                distance_bounds_partial(raw, node["keep"])
        popcounts.setdefault(node_id, {})[shard_no] = int(np.count_nonzero(mask))

    def _normalize_round(self, msg: dict[str, Any]) -> dict[int, dict[int, tuple]]:
        """Apply resolved bounds; summarise direct-path nodes per shard.

        Nodes resolved through the partial merge get their summaries from
        the partials on the coordinator; only the direct-partition nodes
        (``summaries_for``) need the per-shard counting pass here -- the
        same :func:`~repro.core.reduction.shard_summary` the in-process
        certificate path runs.
        """
        resolved: dict[int, tuple | None] = msg.get("resolved", {})
        wants_summary = set(msg.get("summaries_for", ()))
        summaries: dict[int, dict[int, tuple]] = {}
        for node_id, bounds in resolved.items():
            d_min, d_max = bounds if bounds is not None else (None, None)
            views = self.views[node_id]
            for shard_no, start, stop in self.shards:
                views["normalized"][start:stop] = apply_normalization(
                    views["raw"][start:stop], d_min, d_max,
                    target_max=self.target_max)
                if node_id in wants_summary:
                    summaries.setdefault(node_id, {})[shard_no] = shard_summary(
                        views["raw"][start:stop], d_max)
        return summaries
