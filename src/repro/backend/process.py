"""``process`` backend: a persistent shared-memory worker pool.

Leaf kernels (signed distances, exact fulfilment masks) run in a pool of
spawned worker processes that map the table's published columns zero-copy
from shared memory (:mod:`repro.backend.shm`).  Per-event pipe traffic is
only pickled predicates, shard spans and block names -- never column
data -- which is what makes the process boundary cheaper than the columns
it parallelises over.

One worker pool is shared process-wide (reference-counted by backend
instances, spawned lazily, respawned lazily after a failure) because the
natural unit of parallelism is the machine, not the engine: the
differential suite runs dozens of engines over the same tables and must
not spawn dozens of pools.  The ``spawn`` start method is used
deliberately -- the engine executes on threads (FeedbackService sessions),
and forking a threaded coordinator risks inheriting held locks.

Failure taxonomy (the robustness story -- same degrade-to-correct
philosophy as the dirty-shard certificates):

* op rejected or unserialisable work -> the op falls back to the
  in-process cold path (``fallbacks`` counter); the pool stays up.
* dead pipe / timeout (worker crashed or wedged) -> the op falls back,
  the pool is torn down and respawned on next use (``worker_restarts``).

Either way the event completes bit-identically on the coordinator.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.backend.base import ExecBackend
from repro.backend.pipeline import (
    fill_node_summary,
    gather_round,
    next_pipeline_token,
    node_columns_from_buffer,
    pipeline_layout,
    resolve_level,
    round_message,
)
from repro.backend.shm import PublishedTable, ShmColumnStore
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.shard import ShardedTable

__all__ = [
    "ProcessBackend",
    "WorkerOpError",
    "WorkerPoolError",
    "shutdown_process_backend",
]


class WorkerPoolError(RuntimeError):
    """Transport-level failure: a worker died, a pipe broke, or an op
    timed out.  The pool can no longer be trusted and is respawned."""


class WorkerOpError(RuntimeError):
    """A worker (still healthy) rejected an op, or the op could not be
    serialised in the first place.  The pool stays up."""


class _WorkerPool:
    """Spawned workers, one duplex pipe each, ops serialised by a lock."""

    def __init__(self, size: int):
        ctx = multiprocessing.get_context("spawn")
        self.size = size
        self.lock = threading.RLock()
        #: Set under ``lock`` when a broadcast failed part-way: some
        #: workers may hold unread replies (or never got their message),
        #: so the pipes are no longer request/reply aligned.  A broken
        #: pool refuses every further broadcast -- reusing it would pair
        #: requests with stale replies and return *wrong data*, not an
        #: error.  ``_get_pool`` discards and respawns it.
        self.broken = False
        #: Publication keys every live worker has attached.
        self.attached: set[str] = set()
        self.workers: list[tuple[Any, Any]] = []
        from repro.backend.worker import worker_main
        for i in range(size):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=worker_main, args=(child,),
                               name=f"repro-exec-{i}", daemon=True)
            proc.start()
            child.close()
            self.workers.append((proc, parent))

    def pids(self) -> list[int]:
        return [proc.pid for proc, _ in self.workers]

    def alive_count(self) -> int:
        return sum(1 for proc, _ in self.workers if proc.is_alive())

    def broadcast(self, messages: list[dict[str, Any]],
                  timeout: float) -> tuple[list[dict[str, Any]], int, int]:
        """Send ``messages[i]`` to worker ``i`` and collect one reply each.

        Every message is serialised before anything is sent, so a pickling
        failure raises :class:`WorkerOpError` with the pipes still aligned.
        Any transport failure -- a ``send_bytes`` that breaks midway
        through the loop just as much as a recv/timeout -- marks the pool
        :attr:`broken` before raising :class:`WorkerPoolError`: workers
        already sent to have unread replies queued, so the pipes are
        misaligned and the pool must never be reused.
        Returns ``(replies, bytes_out, bytes_in)``.
        """
        try:
            payloads = [pickle.dumps(m, protocol=pickle.HIGHEST_PROTOCOL)
                        for m in messages]
        except Exception as exc:
            raise WorkerOpError(f"could not serialise op: {exc!r}") from exc
        bytes_out = sum(len(p) for p in payloads)
        bytes_in = 0
        deadline = time.monotonic() + timeout
        with self.lock:
            if self.broken:
                raise WorkerPoolError("pool is broken (pipes misaligned)")
            try:
                for (_, conn), payload in zip(self.workers, payloads):
                    conn.send_bytes(payload)
                replies: list[dict[str, Any]] = []
                for proc, conn in self.workers[:len(payloads)]:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not conn.poll(remaining):
                        self.broken = True
                        raise WorkerPoolError(
                            f"worker {proc.pid} timed out after {timeout:.0f}s")
                    data = conn.recv_bytes()
                    bytes_in += len(data)
                    replies.append(pickle.loads(data))
            except WorkerPoolError:
                raise
            except Exception as exc:
                self.broken = True
                raise WorkerPoolError(f"worker pipe failed: {exc!r}") from exc
        for reply in replies:
            if not reply.get("ok"):
                raise WorkerOpError(str(reply.get("error", "worker op failed")))
        return replies, bytes_out, bytes_in

    def terminate(self) -> None:
        """Tear the pool down; never blocks on live work for long."""
        with self.lock:
            for _, conn in self.workers:
                try:
                    conn.close()
                except Exception:  # pragma: no cover
                    pass
            for proc, _ in self.workers:
                if proc.is_alive():
                    proc.terminate()
            for proc, _ in self.workers:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - stuck in a kernel
                    proc.kill()
                    proc.join(timeout=1.0)


# --------------------------------------------------------------------------- #
# Process-wide shared state
# --------------------------------------------------------------------------- #
_STATE_LOCK = threading.RLock()
_POOL: _WorkerPool | None = None
_POOL_REFS = 0


def _notify_evict(published: PublishedTable) -> None:
    """Tell live workers to drop their mappings of an evicted table."""
    with _STATE_LOCK:
        pool = _POOL
    if pool is None or published.key not in pool.attached:
        return
    pool.attached.discard(published.key)
    try:
        pool.broadcast(
            [{"op": "drop", "table_id": published.key}] * pool.size,
            timeout=30.0,
        )
    except WorkerPoolError:
        _discard_pool(pool)
    except Exception:  # pragma: no cover - best effort
        pass


_STORE = ShmColumnStore(on_evict=_notify_evict)


def _get_pool(size: int) -> _WorkerPool:
    """The shared pool, spawned lazily (first requester fixes the size).

    A pool marked broken by a misaligned broadcast is replaced here, so
    the fault costs one respawn instead of poisoning later ops.
    """
    global _POOL
    with _STATE_LOCK:
        if _POOL is not None and _POOL.broken:
            stale, _POOL = _POOL, None
        else:
            stale = None
    if stale is not None:
        stale.terminate()
    with _STATE_LOCK:
        if _POOL is None:
            _POOL = _WorkerPool(size)
        return _POOL


def _discard_pool(pool: _WorkerPool) -> None:
    """Drop a failed pool; the next op respawns a fresh one lazily."""
    global _POOL
    with _STATE_LOCK:
        if _POOL is pool:
            _POOL = None
    pool.terminate()


def _acquire_ref() -> None:
    global _POOL_REFS
    with _STATE_LOCK:
        _POOL_REFS += 1


def _release_ref() -> None:
    global _POOL_REFS, _POOL
    with _STATE_LOCK:
        _POOL_REFS = max(0, _POOL_REFS - 1)
        if _POOL_REFS:
            return
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.terminate()


def shutdown_process_backend() -> None:
    """Terminate the shared pool and destroy every published table.

    Registered ``atexit`` (see :mod:`repro.backend`) so interpreter
    shutdown never hangs on live workers; safe to call any time -- open
    backends respawn the pool lazily on their next op.
    """
    global _POOL
    with _STATE_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.terminate()
    _STORE.close()


# --------------------------------------------------------------------------- #
# The backend
# --------------------------------------------------------------------------- #
class ProcessBackend(ExecBackend):
    """Shard leaf kernels in a shared-memory worker pool; merge locally.

    Coordinator-only stages (normalisation, combination, summaries,
    dirty-shard patching) keep running on the shared thread pool -- they
    operate on the evaluator's own caches and are memory-bound, so the
    win from crossing the process boundary is in the leaf kernels.
    """

    name = "process"

    #: Transport timeout per broadcast, seconds.  Generous: a timeout is
    #: treated as a dead pool, so it must only fire when something is
    #: genuinely wedged, not on a loaded CI machine.
    op_timeout = 120.0

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._counters = {
            "offloaded_ops": 0,
            "fallbacks": 0,
            "worker_restarts": 0,
            "traffic_bytes": 0,
            "pipeline_ops": 0,
            "pipeline_fallbacks": 0,
            "reply_bytes": 0,
        }
        self._closed = False
        _acquire_ref()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _pool_size(self) -> int:
        if self.max_workers is not None:
            return max(1, self.max_workers)
        return max(1, os.cpu_count() or 1)

    def prepare(self, sharded: "ShardedTable") -> None:
        """Publish the table's columns ahead of the first leaf op."""
        if self._closed or sharded.shard_count <= 1 or len(sharded.table) == 0:
            return
        try:
            _STORE.publish(sharded.table)
        except Exception:
            # Publication failure is not fatal: leaf ops will retry and
            # fall back in-process if it keeps failing.
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        _release_ref()

    # ------------------------------------------------------------------ #
    # Execution hooks
    # ------------------------------------------------------------------ #
    def local_executor(self, shard_count: int, max_workers: int | None):
        from repro.core.shard import resolve_worker_count, shared_executor
        return shared_executor(resolve_worker_count(max_workers, shard_count))

    def leaf_signed(self, predicate, sharded: "ShardedTable") -> np.ndarray | None:
        return self._leaf(predicate, sharded, "signed")

    def leaf_mask(self, predicate, sharded: "ShardedTable") -> np.ndarray | None:
        return self._leaf(predicate, sharded, "mask")

    def _leaf(self, predicate, sharded: "ShardedTable",
              kind: str) -> np.ndarray | None:
        if self._closed:
            return None
        rows = len(sharded.table)
        if rows == 0 or sharded.shard_count <= 1:
            return None
        pool: _WorkerPool | None = None
        published: PublishedTable | None = None
        try:
            published = _STORE.publish(sharded.table)
            # Pinned across attach + op: a concurrent publish eviction
            # would otherwise unlink the blocks this broadcast references.
            _STORE.pin(published)
            pool = _get_pool(self._pool_size())
            traffic = self._ensure_attached(pool, published)
            result, op_traffic = self._run_leaf(
                pool, published, predicate, sharded, kind, rows)
            with self._lock:
                self._counters["offloaded_ops"] += 1
                self._counters["traffic_bytes"] += traffic + op_traffic
            return result
        except WorkerOpError:
            self._count_fallback()
            return None
        except WorkerPoolError:
            self._count_fallback(restart=True)
            if pool is not None:
                _discard_pool(pool)
            return None
        except Exception:
            self._count_fallback()
            return None
        finally:
            if published is not None:
                _STORE.unpin(published)

    def _broadcast(self, pool: _WorkerPool, messages: list[dict],
                   name: str, **attrs: Any):
        """``pool.broadcast`` wrapped in a span when a trace is ambient.

        Tags each message with ``trace=True`` so workers time the op on
        their own clock and ship span records back in the reply; those
        records are stitched under this round's span so the parent trace
        shows coordinator wait and worker compute side by side.  Without
        an ambient trace this is a plain broadcast -- no tag, no span,
        byte-identical pipe traffic.
        """
        if not obs.trace_active():
            return pool.broadcast(messages, self.op_timeout)
        for m in messages:
            m["trace"] = True
        with obs.span(name, workers=pool.size, **attrs) as round_span:
            replies, bytes_out, bytes_in = pool.broadcast(
                messages, self.op_timeout)
            round_span.annotate(bytes_out=bytes_out, bytes_in=bytes_in)
            for reply in replies:
                records = reply.get("spans")
                if records:
                    round_span.trace.add_remote_spans(
                        round_span.span_id, records,
                        tid=f"worker-{reply.get('pid', '?')}")
        return replies, bytes_out, bytes_in

    def _ensure_attached(self, pool: _WorkerPool,
                         published: PublishedTable) -> int:
        """Attach ``published`` on every worker once per pool generation."""
        if published.key in pool.attached:
            return 0
        msg = {"op": "attach", "manifest": published.manifest}
        _, bytes_out, bytes_in = self._broadcast(
            pool, [msg] * pool.size, "backend.attach", table=published.key)
        pool.attached.add(published.key)
        return bytes_out + bytes_in

    def _run_leaf(self, pool: _WorkerPool, published: PublishedTable,
                  predicate, sharded: "ShardedTable", kind: str,
                  rows: int) -> tuple[np.ndarray, int]:
        """Fan one leaf kernel out over the pool, gather via a shared block."""
        spans: list[list[tuple[int, int]]] = [[] for _ in range(pool.size)]
        for i, (start, stop) in enumerate(sharded.bounds):
            if stop > start:
                spans[i % pool.size].append((start, stop))
        dtype = np.float64 if kind == "signed" else np.bool_
        out = shared_memory.SharedMemory(
            create=True, size=max(1, rows * dtype().itemsize))
        try:
            messages = [
                {
                    "op": "leaf",
                    "table_id": published.key,
                    "kind": kind,
                    "predicate": predicate,
                    "spans": spans[w],
                    "out": out.name,
                }
                for w in range(pool.size)
            ]
            _, bytes_out, bytes_in = self._broadcast(
                pool, messages, "backend.broadcast", op="leaf", kind=kind)
            result = np.ndarray(rows, dtype=dtype, buffer=out.buf).copy()
        finally:
            try:
                out.close()
                out.unlink()
            except Exception:  # pragma: no cover
                pass
        return result, bytes_out + bytes_in

    # ------------------------------------------------------------------ #
    # Whole-pipeline offload
    # ------------------------------------------------------------------ #
    def shard_pipeline(self, sharded: "ShardedTable",
                       spec: dict) -> dict | None:
        """Run a whole plan's per-shard stages in the pool (see base class).

        The op is a session of broadcast rounds (one per plan level, see
        :mod:`repro.backend.pipeline`); every round's reply carries only
        partials, popcounts and summaries, totalled into ``reply_bytes``.
        Any fault inside the session aborts it (workers drop their state)
        and declines the op -- the evaluator reruns in-process,
        bit-identically.
        """
        if self._closed:
            return None
        rows = len(sharded.table)
        if rows == 0 or sharded.shard_count <= 1:
            return None
        spec = dict(spec, token=next_pipeline_token())
        pool: _WorkerPool | None = None
        published: PublishedTable | None = None
        try:
            published = _STORE.publish(sharded.table)
            # Pinned for the whole session: a concurrent publish eviction
            # would otherwise unlink blocks the session's broadcasts
            # reference mid-flight.
            _STORE.pin(published)
            pool = _get_pool(self._pool_size())
            result, traffic, reply_bytes = self._run_pipeline(
                pool, published, spec, sharded, rows)
            with self._lock:
                self._counters["offloaded_ops"] += 1
                self._counters["pipeline_ops"] += 1
                self._counters["traffic_bytes"] += traffic
                self._counters["reply_bytes"] += reply_bytes
            return result
        except WorkerOpError:
            self._count_fallback(pipeline=True)
            return None
        except WorkerPoolError:
            self._count_fallback(restart=True, pipeline=True)
            if pool is not None:
                _discard_pool(pool)
            return None
        except Exception:
            self._count_fallback(pipeline=True)
            return None
        finally:
            if published is not None:
                _STORE.unpin(published)

    def _run_pipeline(self, pool: _WorkerPool, published: PublishedTable,
                      spec: dict, sharded: "ShardedTable",
                      rows: int) -> tuple[dict, int, int]:
        """Drive one pipeline session; returns ``(result, traffic, reply)``.

        Holds the pool lock across all rounds (broadcast re-acquires it
        re-entrantly), so concurrent leaf ops and evict notifications
        queue behind the session instead of interleaving with its
        request/reply pairs.
        """
        nodes = {node["id"]: node for node in spec["nodes"]}
        levels = spec["levels"]
        shard_count = sharded.shard_count
        with pool.lock:
            traffic = self._ensure_attached(pool, published)
            total_bytes, offsets = pipeline_layout(spec["nodes"], rows)
            block = shared_memory.SharedMemory(create=True, size=total_bytes)
            started = False
            try:
                shards: list[list[tuple[int, int, int]]] = [
                    [] for _ in range(pool.size)]
                for i, (start, stop) in enumerate(sharded.bounds):
                    shards[i % pool.size].append((i, start, stop))
                messages = [{
                    "op": "pipeline_start",
                    "table_id": published.key,
                    "spec": spec,
                    "out": block.name,
                    "shards": shards[w],
                } for w in range(pool.size)]
                replies, bytes_out, bytes_in = self._broadcast(
                    pool, messages, "pipeline.round", op="pipeline_start")
                started = True
                reply_bytes = bytes_in
                traffic += bytes_out + bytes_in
                partials: dict[int, dict] = {}
                popcounts: dict[int, dict] = {}
                summaries: dict[int, dict] = {}
                topk_parts = gather_round(
                    replies, partials, popcounts, summaries)
                result_nodes: dict[int, dict] = {}

                def read_raw(node_id: int) -> np.ndarray:
                    # Direct-path bounds partition straight over the
                    # block-mapped raw column: zero pipe bytes.
                    return np.ndarray(rows, dtype=np.float64,
                                      buffer=block.buf,
                                      offset=offsets[node_id]["raw"])

                for level_no in range(1, len(levels) + 1):
                    resolved_msg, summary_ids = resolve_level(
                        levels[level_no - 1], nodes, spec, shard_count,
                        partials, read_raw, result_nodes)
                    msg = round_message(spec, levels, level_no,
                                        resolved_msg, summary_ids)
                    replies, bytes_out, bytes_in = self._broadcast(
                        pool, [msg] * pool.size, "pipeline.round",
                        op=msg["op"])
                    reply_bytes += bytes_in
                    traffic += bytes_out + bytes_in
                    topk_parts = gather_round(
                        replies, partials, popcounts, summaries)
                # The finish round ran on every worker: sessions are gone.
                started = False
                for node_id in nodes:
                    entry = result_nodes[node_id]
                    fill_node_summary(entry, summaries.get(node_id),
                                      shard_count)
                    entry.update(node_columns_from_buffer(
                        block.buf, offsets[node_id], rows))
                    entry["popcounts"] = [
                        int(popcounts[node_id][s]) for s in range(shard_count)]
                topk = None
                if spec.get("topk_target") is not None:
                    topk = [topk_parts[s] for s in range(shard_count)]
                return {"nodes": result_nodes, "topk": topk}, traffic, reply_bytes
            except BaseException:
                # Workers may still hold session state (and the output
                # block mapped); clear it while we still own the pool so
                # no other op can interleave before the abort.  A broken
                # pool is unusable either way and gets discarded upstream.
                if started and not pool.broken:
                    try:
                        pool.broadcast(
                            [{"op": "pipeline_abort", "token": spec["token"]}]
                            * pool.size,
                            self.op_timeout)
                    except Exception:
                        pass
                raise
            finally:
                try:
                    block.close()
                    block.unlink()
                except Exception:  # pragma: no cover
                    pass

    def _count_fallback(self, restart: bool = False,
                        pipeline: bool = False) -> None:
        with self._lock:
            self._counters["fallbacks"] += 1
            if restart:
                self._counters["worker_restarts"] += 1
            if pipeline:
                self._counters["pipeline_fallbacks"] += 1
        # Lands on the ambient span (leaf.raw / pipeline.offload) so the
        # slow-event explain record can report that the answer was served
        # by the in-process fallback rather than the pool.
        if restart:
            obs.annotate(backend_fallbacks=1, worker_restarts=1)
        else:
            obs.annotate(backend_fallbacks=1)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def worker_pids(self) -> list[int]:
        """Pids of the shared pool's workers ([] while no pool is up)."""
        with _STATE_LOCK:
            pool = _POOL
        return pool.pids() if pool is not None else []

    def stats(self) -> dict[str, int]:
        with self._lock:
            counters = dict(self._counters)
        with _STATE_LOCK:
            pool = _POOL
        counters["worker_count"] = pool.size if pool is not None else 0
        counters["workers_alive"] = pool.alive_count() if pool is not None else 0
        counters.update(_STORE.stats())
        return counters
