"""Coordinator-side shared-memory column store.

A table's columns are published exactly once per coordinator process:
numeric columns are copied raw into ``multiprocessing.shared_memory``
blocks (workers then map them zero-copy), object columns are pickled once
into their own block.  What crosses the pipe afterwards is only a
*manifest* -- block names, dtypes and lengths -- so per-event traffic
never includes column data.

The store is bounded: publications beyond :data:`MAX_PUBLISHED_TABLES`
evict the least-recently-used table (closing and unlinking its blocks and
notifying the eviction callback so worker processes drop their mappings).
Re-publishing an evicted table allocates fresh blocks under a new
publication key, so stale worker mappings can never be confused with the
new ones.

A publication an op is actively broadcasting against can be *pinned*
(:meth:`ShmColumnStore.pin`): eviction of a pinned table is deferred --
the entry leaves the LRU immediately (so capacity is respected for new
publications) but the blocks stay linked and the eviction callback stays
unsent until the last pin drops.  Without the deferral, an LRU eviction
racing an in-flight broadcast would unlink blocks whose names that
broadcast already carries: a worker attaching them mid-op would fail (or
the drop notification would interleave with the op's own messages), and
the op would fault spuriously.  The near-misses are counted
(``evict_deferred`` in :meth:`stats`).
"""

from __future__ import annotations

import itertools
import pickle
import threading
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.table import Table

__all__ = [
    "MAX_PUBLISHED_TABLES",
    "PublishedTable",
    "ShmColumnStore",
    "attach_block",
    "build_table_from_manifest",
]

#: Published-table LRU capacity (matches the engine's table-cache scale).
MAX_PUBLISHED_TABLES = 8

_PUBLICATION_SEQ = itertools.count(1)


def attach_block(name: str) -> shared_memory.SharedMemory:
    """Open an existing shared-memory block without adopting ownership.

    Attaching registers the name with the resource tracker (Python <=
    3.12 does so unconditionally), but worker processes are spawned
    children and therefore share the coordinator's tracker process, where
    the registration is an idempotent no-op: the name stays tracked until
    the coordinator's ``unlink``.  Nothing to undo here -- attempting to
    unregister from a worker would remove the name from the *shared*
    tracker and break the coordinator's cleanup.
    """
    return shared_memory.SharedMemory(name=name)


class PublishedTable:
    """One table's published blocks plus the manifest workers attach from."""

    def __init__(self, key: str, manifest: dict[str, Any],
                 blocks: list[shared_memory.SharedMemory], nbytes: int):
        self.key = key
        self.manifest = manifest
        self.blocks = blocks
        self.nbytes = nbytes
        self.closed = False

    def destroy(self) -> None:
        """Close and unlink every block (idempotent).

        Workers that still hold mappings keep valid memory until they drop
        them -- unlinking only removes the names.
        """
        if self.closed:
            return
        self.closed = True
        for shm in self.blocks:
            try:
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass


class ShmColumnStore:
    """LRU-bounded registry of published tables, keyed by ``Table.export_id``."""

    def __init__(self, max_tables: int = MAX_PUBLISHED_TABLES,
                 on_evict: Callable[[PublishedTable], None] | None = None):
        self._lock = threading.Lock()
        self._tables: dict[str, PublishedTable] = {}
        self._max_tables = max_tables
        self._on_evict = on_evict
        #: Pin counts by publication key; pinned tables cannot be destroyed.
        self._pins: dict[str, int] = {}
        #: Publications evicted from the LRU while pinned, awaiting the
        #: last unpin to be notified/destroyed.
        self._retiring: dict[str, PublishedTable] = {}
        self._evict_deferred = 0

    def pin(self, published: PublishedTable) -> None:
        """Hold ``published``'s blocks linked across an in-flight op."""
        with self._lock:
            self._pins[published.key] = self._pins.get(published.key, 0) + 1

    def unpin(self, published: PublishedTable) -> None:
        """Release one pin; a deferred eviction completes on the last one."""
        retired: PublishedTable | None = None
        with self._lock:
            count = self._pins.get(published.key, 0) - 1
            if count > 0:
                self._pins[published.key] = count
            else:
                self._pins.pop(published.key, None)
                retired = self._retiring.pop(published.key, None)
        if retired is not None:
            self._retire(retired)

    def _retire(self, old: PublishedTable) -> None:
        """Notify workers, then destroy -- outside the store lock."""
        if self._on_evict is not None:
            self._on_evict(old)
        old.destroy()

    def publish(self, table: "Table") -> PublishedTable:
        """Publish ``table``'s columns (idempotent per ``export_id``)."""
        export_id = table.export_id
        with self._lock:
            published = self._tables.get(export_id)
            if published is not None:
                # LRU touch: move to the most-recent end.
                self._tables.pop(export_id)
                self._tables[export_id] = published
                return published
        published = self._build(table)
        evicted: list[PublishedTable] = []
        with self._lock:
            existing = self._tables.get(export_id)
            if existing is not None:  # lost a publish race; keep the winner
                published.destroy()
                return existing
            self._tables[export_id] = published
            while len(self._tables) > self._max_tables:
                oldest_key = next(iter(self._tables))
                old = self._tables.pop(oldest_key)
                if self._pins.get(old.key):
                    # A broadcast referencing this publication key is in
                    # flight: unlinking now would yank the blocks out from
                    # under it.  Park the publication; the last unpin
                    # finishes the eviction.
                    self._retiring[old.key] = old
                    self._evict_deferred += 1
                else:
                    evicted.append(old)
        for old in evicted:
            self._retire(old)
        return published

    def _build(self, table: "Table") -> PublishedTable:
        key = f"{table.export_id}.{next(_PUBLICATION_SEQ)}"
        rows = len(table)
        blocks: list[shared_memory.SharedMemory] = []
        columns: list[dict[str, Any]] = []
        nbytes = 0
        try:
            for name, array in table.export_columns().items():
                if array.dtype.kind == "f":
                    size = max(1, array.nbytes)
                    shm = shared_memory.SharedMemory(create=True, size=size)
                    blocks.append(shm)
                    if rows:
                        dest = np.ndarray(rows, dtype=np.float64, buffer=shm.buf)
                        dest[:] = array
                    columns.append({"name": name, "kind": "f8", "shm": shm.name})
                    nbytes += size
                else:
                    payload = pickle.dumps(array, protocol=pickle.HIGHEST_PROTOCOL)
                    shm = shared_memory.SharedMemory(
                        create=True, size=max(1, len(payload)))
                    blocks.append(shm)
                    shm.buf[:len(payload)] = payload
                    columns.append({
                        "name": name,
                        "kind": "object",
                        "shm": shm.name,
                        "nbytes": len(payload),
                    })
                    nbytes += len(payload)
        except Exception:
            for shm in blocks:
                try:
                    shm.close()
                    shm.unlink()
                except Exception:  # pragma: no cover
                    pass
            raise
        manifest = {
            "table_id": key,
            "name": table.name,
            "rows": rows,
            "columns": columns,
        }
        return PublishedTable(key, manifest, blocks, nbytes)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "published_tables": len(self._tables),
                "published_bytes": sum(p.nbytes for p in self._tables.values()),
                "evict_deferred": self._evict_deferred,
            }

    def close(self) -> None:
        """Destroy every publication (idempotent).

        Shutdown path: pins are not honoured here -- any op still in
        flight is already doomed (the pool is being terminated) and falls
        back in-process.
        """
        with self._lock:
            tables = list(self._tables.values()) + list(self._retiring.values())
            self._tables.clear()
            self._retiring.clear()
            self._pins.clear()
        for published in tables:
            if self._on_evict is not None:
                try:
                    self._on_evict(published)
                except Exception:  # pragma: no cover - shutdown path
                    pass
            published.destroy()


def build_table_from_manifest(
    manifest: dict[str, Any],
) -> tuple["Table", list[shared_memory.SharedMemory]]:
    """Reconstruct a table over published blocks (worker side, zero-copy).

    Numeric columns are ndarray views straight over the mapped blocks;
    object columns are unpickled once at attach time.  Returns the table
    plus the block handles the caller must keep alive (and close when the
    table is dropped).
    """
    from repro.storage.table import Table

    rows = manifest["rows"]
    blocks: list[shared_memory.SharedMemory] = []
    columns: dict[str, np.ndarray] = {}
    try:
        for spec in manifest["columns"]:
            shm = attach_block(spec["shm"])
            blocks.append(shm)
            if spec["kind"] == "f8":
                columns[spec["name"]] = np.ndarray(
                    rows, dtype=np.float64, buffer=shm.buf)
            else:
                payload = bytes(shm.buf[:spec["nbytes"]])
                columns[spec["name"]] = pickle.loads(payload)
    except Exception:
        for shm in blocks:
            try:
                shm.close()
            except Exception:  # pragma: no cover
                pass
        raise
    if not columns:
        table = Table.empty(manifest["name"], [])
    else:
        table = Table.adopt_columns(manifest["name"], columns)
    return table, blocks
