"""``threads`` backend: the classic in-process shared thread pool.

This is the pre-backend behaviour extracted behind the interface with
zero change: per-shard closures run on the process-wide shared executor
(:func:`repro.core.shard.shared_executor`) and every leaf hook declines,
so the evaluator computes leaves exactly as it always did.  It is the
default backend and the reference other backends are differentially
tested against.
"""

from __future__ import annotations

from repro.backend.base import ExecBackend
from repro.core.shard import resolve_worker_count, shared_executor

__all__ = ["ThreadsBackend"]


class ThreadsBackend(ExecBackend):

    name = "threads"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def local_executor(self, shard_count: int, max_workers: int | None):
        if max_workers is None:
            max_workers = self.max_workers
        return shared_executor(resolve_worker_count(max_workers, shard_count))
