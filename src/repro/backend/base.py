"""The :class:`ExecBackend` contract: a backend owns *where* shard work runs.

The sharded evaluator (:class:`~repro.core.shard.ShardedPlanEvaluator`)
keeps every decision that affects *what* is computed -- fingerprints,
dirty-shard tracking, certificate short-circuits, bounds resolution, merge
order -- on the coordinator.  A backend is only consulted for the
embarrassingly parallel per-shard kernels, and it answers in one of two
ways:

* return the full assembled array (computed wherever it likes), or
* return ``None``, meaning "compute it in-process" -- the evaluator then
  runs the exact same per-shard code it always ran.

``None`` doubles as the fault path: a backend that loses a worker, hits a
timeout or cannot pickle a predicate simply declines the operation, counts
the incident in :meth:`stats`, and the event completes on the in-process
cold path -- the same degrade-to-correct philosophy the dirty-shard
certificates use.  Because every answer a backend *does* give must be
bit-identical to the in-process computation (same function over the same
bits), the differential suite in ``tests/test_differential.py`` runs
parameterized over every registered backend.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.shard import ShardedTable

__all__ = ["ExecBackend"]


class ExecBackend:
    """Base class (and no-op default) for shard-execution backends.

    Subclasses override the hooks they can accelerate; everything left at
    the default keeps the evaluator's in-process behaviour.  One instance
    is created per :class:`~repro.core.engine.QueryEngine` (registry
    factories are called per engine), so counters in :meth:`stats` are
    engine-scoped even when the heavy machinery behind them (thread pools,
    worker processes) is shared process-wide.
    """

    #: Registry name; set by subclasses.
    name: str = "?"

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def prepare(self, sharded: "ShardedTable") -> None:
        """Called once per execute, before evaluation, with the sharded table.

        Backends that publish table columns out-of-process do so here
        (idempotently -- the same table must not be re-published on every
        event).
        """

    def close(self) -> None:
        """Release backend resources (idempotent).

        Called from :meth:`QueryEngine.close` and from the interpreter
        ``atexit`` hook; must never hang on live work.
        """

    # ------------------------------------------------------------------ #
    # Execution hooks
    # ------------------------------------------------------------------ #
    def local_executor(self, shard_count: int,
                       max_workers: int | None) -> Executor | None:
        """Executor for the coordinator-side per-shard closures (None = inline).

        The evaluator's normalization/combination/summary stages map plain
        closures over shard indexes; those cannot cross a process boundary,
        so every backend chooses what (if any) in-process pool serves them.
        """
        return None

    def leaf_signed(self, predicate, sharded: "ShardedTable") -> np.ndarray | None:
        """Full-table signed distances of one predicate leaf, or None.

        Must equal ``concatenate(predicate.signed_distances(shard) for
        shard in shards)`` bit for bit when answered.
        """
        return None

    def leaf_mask(self, predicate, sharded: "ShardedTable") -> np.ndarray | None:
        """Full-table exact fulfilment mask of one predicate leaf, or None.

        Must equal ``concatenate(predicate.exact_mask(shard) for shard in
        shards)`` bit for bit when answered.
        """
        return None

    def shard_pipeline(self, sharded: "ShardedTable",
                       spec: dict) -> dict | None:
        """Run a whole plan's per-shard pipeline out-of-process, or None.

        ``spec`` is the picklable plan description built by
        :meth:`ShardedPlanEvaluator._pipeline_spec`: post-order node
        entries (leaf predicates / composite rules + weights), the
        level grouping, each node's ``keep`` count and which nodes
        resolve their bounds through the partial merge, and an optional
        root top-k target.  A backend that accepts must run leaf ->
        normalization -> combination -> mask for every shard span and
        reply *partials only* over its control channel -- bounds
        partials, mask popcounts and per-shard summaries -- returning
        per node id the assembled full-table ``raw`` / ``normalized`` /
        ``mask`` (+ ``signed`` for leaves) columns, the resolved bounds,
        the summary matrix and per-shard popcounts, plus per-shard
        :class:`~repro.core.reduction.TopKCandidates` for the root when
        requested.  Every array must be bit-identical to the in-process
        cold computation; ``None`` (any fault, ineligible plan) keeps
        the evaluator on its in-process path.
        """
        return None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, int]:
        """Engine-scoped counters; keys shared by every backend.

        ``offloaded_ops`` counts hooks answered by the backend,
        ``fallbacks`` hooks declined after a failure (crash, timeout,
        unpicklable work), ``worker_restarts`` pool respawns this instance
        triggered.  ``pipeline_ops`` / ``pipeline_fallbacks`` break out the
        :meth:`shard_pipeline` hook, and ``reply_bytes`` totals the bytes
        that came back over the control channel for accepted pipeline ops
        (the quantity the partials-only contract keeps independent of rows
        per shard).  Gauges (``worker_count``, ``workers_alive``,
        ``published_tables``, ``published_bytes``) describe shared
        infrastructure and are reported as current values, not deltas.
        """
        return {
            "offloaded_ops": 0,
            "fallbacks": 0,
            "worker_restarts": 0,
            "traffic_bytes": 0,
            "pipeline_ops": 0,
            "pipeline_fallbacks": 0,
            "reply_bytes": 0,
            "published_tables": 0,
            "published_bytes": 0,
            "worker_count": 0,
            "workers_alive": 0,
        }
