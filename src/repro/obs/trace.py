"""Low-overhead span tracing for the feedback pipeline.

One interactive event becomes one :class:`Trace`: a flat, append-only list
of :class:`Span` records (``perf_counter`` intervals plus attributes) that
together form a tree covering protocol receive, coalesce wait, scheduler
queue, pipeline execution down to per-node/per-shard work, backend
broadcast rounds, frame build, delta encode and the wire send.

The design constraints, in order:

* **Disabled tracing is free.**  Every instrumentation point goes through
  the module-level :func:`span`/:func:`annotate` helpers, which read one
  :class:`contextvars.ContextVar` and return a shared no-op object when no
  trace is active.  No allocation, no lock, no branch beyond the
  ``ContextVar.get``.
* **Context follows the event, not the thread.**  ``contextvars`` gives
  thread-local *and* asyncio-task-local parenting for free; the two places
  the event migrates explicitly -- the event loop handing a batch to an
  executor thread, and a worker process shipping its own timings back over
  the pipe -- use :func:`use_trace` and :meth:`Trace.add_remote_spans`
  respectively.  Worker spans are timed on the worker's own clock and
  stitched under the coordinator span that awaited them.
* **Bounded retention.**  A :class:`Tracer` keeps a ring of recent traces
  and a second ring of *slow* traces (those over ``budget_ms``); a slow
  trace additionally gets an :func:`explain record <build_explain>` naming
  the certificate that failed, the shards recomputed and any backend
  fallback/restart -- the "why was that event slow" answer.

Export is Chrome trace-event JSON (:func:`chrome_trace_events`), which
Perfetto and ``chrome://tracing`` load directly.
"""

from __future__ import annotations

import itertools
import json
import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterable

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "span",
    "annotate",
    "trace_active",
    "current_trace",
    "use_trace",
    "build_explain",
    "chrome_trace_events",
    "write_chrome_trace",
]

try:  # pragma: no cover - exercised only where contextvars is missing
    from contextvars import ContextVar
except ImportError:  # pragma: no cover
    ContextVar = None  # type: ignore[assignment]

#: The ambient ``(trace, parent_span_id)`` of the current thread/task.
_ACTIVE: "ContextVar[tuple[Trace, int] | None]" = ContextVar(
    "repro_obs_trace", default=None
)

_perf_counter = time.perf_counter


class Span:
    """One timed interval inside a trace (flat record, tree by parent id)."""

    __slots__ = ("id", "parent", "name", "t0", "t1", "tid", "attrs")

    def __init__(self, span_id: int, parent: int, name: str,
                 t0: float, tid: str, attrs: dict[str, Any] | None):
        self.id = span_id
        self.parent = parent
        self.name = name
        self.t0 = t0
        self.t1: float | None = None
        self.tid = tid
        self.attrs = attrs

    @property
    def duration_ms(self) -> float:
        t1 = self.t1 if self.t1 is not None else self.t0
        return (t1 - self.t0) * 1e3


class Trace:
    """A tree of spans for one traced event, safe to append from any thread.

    Spans live in one append-only list; ids are list indices and parents
    are ids, so serialization never walks a pointer graph.  The list is
    guarded by a lock only for appends -- readers see a consistent prefix
    because CPython list appends publish atomically.
    """

    __slots__ = ("name", "trace_id", "attrs", "spans", "explain",
                 "started_wall", "_lock", "_finished")

    def __init__(self, name: str, trace_id: int,
                 t0: float | None = None, **attrs: Any):
        self.name = name
        self.trace_id = trace_id
        self.attrs: dict[str, Any] = attrs
        self.spans: list[Span] = []
        self.explain: dict[str, Any] | None = None
        self.started_wall = time.time()
        self._lock = threading.Lock()
        self._finished = False
        # Root span: id 0, carries the whole event's duration.  ``t0`` lets
        # the creator backdate the root to when the wire bytes arrived.
        self.begin(name, parent=-1, t0=t0)

    # -------------------------------------------------------------- #
    # Recording
    # -------------------------------------------------------------- #
    def begin(self, name: str, parent: int = 0,
              t0: float | None = None, **attrs: Any) -> int:
        """Open a span and return its id (close it with :meth:`end`)."""
        span_ = Span(
            0, parent, name,
            _perf_counter() if t0 is None else t0,
            str(threading.get_ident()), attrs or None,
        )
        with self._lock:
            span_.id = len(self.spans)
            self.spans.append(span_)
        return span_.id

    def end(self, span_id: int, t1: float | None = None, **attrs: Any) -> None:
        span_ = self.spans[span_id]
        span_.t1 = _perf_counter() if t1 is None else t1
        if attrs:
            self.annotate(span_id, **attrs)

    def annotate(self, span_id: int, **attrs: Any) -> None:
        span_ = self.spans[span_id]
        with self._lock:
            if span_.attrs is None:
                span_.attrs = attrs
            else:
                span_.attrs.update(attrs)

    def instant(self, name: str, parent: int = 0, **attrs: Any) -> int:
        """A zero-duration marker span."""
        span_id = self.begin(name, parent=parent, **attrs)
        self.end(span_id, t1=self.spans[span_id].t0)
        return span_id

    @contextmanager
    def span(self, name: str, parent: int = 0, **attrs: Any):
        """Span context manager with explicit parenting (no ambient context)."""
        span_id = self.begin(name, parent=parent, **attrs)
        try:
            yield span_id
        finally:
            self.end(span_id)

    def add_remote_spans(self, parent: int,
                         remote: Iterable[dict[str, Any]],
                         tid: str = "worker") -> None:
        """Stitch spans timed on a *different clock* under ``parent``.

        Worker processes report ``{"name", "start", "dur", "attrs"}`` with
        ``start`` relative to their own op start; the only clock the
        coordinator can anchor them to is the span that awaited the reply,
        so remote spans are placed at ``parent.t0 + start``.  They keep a
        ``clock: worker`` attribute because the two clocks are not the
        same instrument -- offsets within a reply are exact, the anchor is
        the coordinator's best estimate.
        """
        anchor = self.spans[parent].t0
        for record in remote:
            attrs = dict(record.get("attrs") or ())
            attrs.setdefault("clock", "worker")
            t0 = anchor + float(record.get("start", 0.0))
            span_ = Span(0, parent, str(record["name"]), t0, tid, attrs)
            span_.t1 = t0 + float(record.get("dur", 0.0))
            with self._lock:
                span_.id = len(self.spans)
                self.spans.append(span_)

    def finish(self, **attrs: Any) -> "Trace":
        """Close the root span; later spans (encode/send) may still attach."""
        if not self._finished:
            self._finished = True
            self.end(0, **attrs)
        return self

    # -------------------------------------------------------------- #
    # Reading
    # -------------------------------------------------------------- #
    @property
    def duration_ms(self) -> float:
        return self.spans[0].duration_ms

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def children(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent == span_id and s.id != span_id]

    def span_tree(self) -> dict[str, Any]:
        """The spans as a nested ``{name, duration_ms, attrs, children}`` tree."""
        nodes = {
            s.id: {
                "name": s.name,
                "start_ms": round((s.t0 - self.spans[0].t0) * 1e3, 4),
                "duration_ms": round(s.duration_ms, 4),
                "attrs": dict(s.attrs) if s.attrs else {},
                "children": [],
            }
            for s in self.spans
        }
        for s in self.spans:
            if s.id != 0 and s.parent in nodes:
                nodes[s.parent]["children"].append(nodes[s.id])
        return nodes[0]

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (what the protocol ``trace`` op returns)."""
        base = self.spans[0].t0
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_unix": self.started_wall,
            "duration_ms": round(self.duration_ms, 4),
            "attrs": dict(self.attrs),
            "explain": self.explain,
            "spans": [
                {
                    "id": s.id,
                    "parent": s.parent,
                    "name": s.name,
                    "start_ms": round((s.t0 - base) * 1e3, 4),
                    "duration_ms": round(s.duration_ms, 4),
                    "tid": s.tid,
                    "attrs": dict(s.attrs) if s.attrs else {},
                }
                for s in self.spans
            ],
        }


# ------------------------------------------------------------------ #
# Ambient (contextvar) API -- what the engine/backend call sites use
# ------------------------------------------------------------------ #
class _NullSpan:
    """Shared do-nothing span: the entire cost of disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _AmbientSpan:
    """Context manager tying a new span into the ambient parent chain."""

    __slots__ = ("trace", "span_id", "_name", "_attrs", "_token")

    def __init__(self, trace: Trace, parent: int, name: str,
                 attrs: dict[str, Any]):
        self.trace = trace
        self.span_id = trace.begin(name, parent=parent, **attrs)
        self._token = None

    def __enter__(self) -> "_AmbientSpan":
        self._token = _ACTIVE.set((self.trace, self.span_id))
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._token is not None:
            _ACTIVE.reset(self._token)
        self.trace.end(self.span_id)
        return False

    def annotate(self, **attrs: Any) -> None:
        self.trace.annotate(self.span_id, **attrs)


def span(name: str, **attrs: Any):
    """Open a child span of the ambient parent; no-op without a trace.

    The span is opened at call time (so ``with span(...)`` measures from
    the call) and becomes the ambient parent for the ``with`` body on this
    thread/task.
    """
    active = _ACTIVE.get()
    if active is None:
        return _NULL_SPAN
    return _AmbientSpan(active[0], active[1], name, attrs)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the ambient span; no-op without a trace."""
    active = _ACTIVE.get()
    if active is not None:
        active[0].annotate(active[1], **attrs)


def trace_active() -> bool:
    """Cheap guard for call sites that would otherwise build attr dicts."""
    return _ACTIVE.get() is not None


def current_trace() -> Trace | None:
    active = _ACTIVE.get()
    return active[0] if active is not None else None


@contextmanager
def use_trace(trace: Trace | None, parent: int = 0):
    """Make ``trace`` ambient on this thread/task (e.g. in an executor).

    ``contextvars`` do not cross ``run_in_executor``; the service hands
    the trace object to the worker thread explicitly and re-activates it
    here.  ``trace=None`` is a no-op so call sites need no branching.
    """
    if trace is None:
        yield None
        return
    token = _ACTIVE.set((trace, parent))
    try:
        yield trace
    finally:
        _ACTIVE.reset(token)


# ------------------------------------------------------------------ #
# Tracer: sampling, retention, slow-event forensics
# ------------------------------------------------------------------ #
class Tracer:
    """Creates traces, samples them, and retains recent + slow rings."""

    def __init__(self, enabled: bool = False, sample_rate: float = 1.0,
                 budget_ms: float | None = None, ring_size: int = 32,
                 slow_ring_size: int = 16, seed: int | None = None):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if ring_size < 1 or slow_ring_size < 1:
            raise ValueError("ring sizes must be at least 1")
        self.enabled = bool(enabled)
        self.sample_rate = float(sample_rate)
        self.budget_ms = budget_ms
        self._recent: "deque[Trace]" = deque(maxlen=ring_size)
        self._slow: "deque[Trace]" = deque(maxlen=slow_ring_size)
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._rng = random.Random(seed)

    # -------------------------------------------------------------- #
    def start(self, name: str, t0: float | None = None,
              **attrs: Any) -> Trace | None:
        """A new trace, or ``None`` when disabled or sampled out."""
        if not self.enabled:
            return None
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            return None
        return Trace(name, next(self._seq), t0=t0, **attrs)

    def finish(self, trace: Trace | None, **attrs: Any) -> dict[str, Any] | None:
        """Close a trace, retain it, and return its explain record if slow."""
        if trace is None:
            return None
        trace.finish(**attrs)
        with self._lock:
            self._recent.append(trace)
        if self.budget_ms is not None and trace.duration_ms > self.budget_ms:
            trace.explain = build_explain(trace, budget_ms=self.budget_ms)
            with self._lock:
                self._slow.append(trace)
            return trace.explain
        return None

    @contextmanager
    def trace(self, name: str, **attrs: Any):
        """Start + activate + finish in one block (benchmarks, tools)."""
        trace = self.start(name, **attrs)
        if trace is None:
            yield None
            return
        with use_trace(trace):
            yield trace
        self.finish(trace)

    # -------------------------------------------------------------- #
    def recent_traces(self) -> list[Trace]:
        with self._lock:
            return list(self._recent)

    def slow_traces(self) -> list[Trace]:
        with self._lock:
            return list(self._slow)

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._slow.clear()


# ------------------------------------------------------------------ #
# Forensics + export
# ------------------------------------------------------------------ #
def build_explain(trace: Trace, budget_ms: float | None = None) -> dict[str, Any]:
    """Why was this event slow?  Aggregated from span attributes.

    Collects every certificate verdict (``certificate``/``certified``
    attrs written by the incremental evaluator), the dirty/recomputed
    shard totals, backend fallbacks and worker restarts, plus the
    slowest spans -- the record a slow-trace ring entry carries.
    """
    failed: list[dict[str, Any]] = []
    passed = 0
    recomputed = 0
    reused = 0
    dirty = None
    fallbacks = 0
    restarts = 0
    for s in trace.spans:
        attrs = s.attrs
        if not attrs:
            continue
        if "certificate" in attrs:
            if attrs.get("certified"):
                passed += 1
            else:
                failed.append({
                    "certificate": attrs["certificate"],
                    "node": attrs.get("node"),
                    "span": s.name,
                })
        recomputed += int(attrs.get("shards_recomputed", 0) or 0)
        reused += int(attrs.get("shards_reused", 0) or 0)
        if "root_dirty_shards" in attrs:
            dirty = attrs["root_dirty_shards"]
        fallbacks += int(attrs.get("backend_fallbacks", 0) or 0)
        restarts += int(attrs.get("worker_restarts", 0) or 0)
    timed = [s for s in trace.spans if s.id != 0 and s.t1 is not None]
    slowest = sorted(timed, key=lambda s: -s.duration_ms)[:5]
    return {
        "duration_ms": round(trace.duration_ms, 4),
        "budget_ms": budget_ms,
        "certificates_failed": failed,
        "certificates_passed": passed,
        "shards_recomputed": recomputed,
        "shards_reused": reused,
        "root_dirty_shards": dirty,
        "backend_fallbacks": fallbacks,
        "worker_restarts": restarts,
        "slowest_spans": [
            {"name": s.name, "duration_ms": round(s.duration_ms, 4)}
            for s in slowest
        ],
    }


def chrome_trace_events(traces: Iterable[Trace | dict[str, Any]]) -> dict[str, Any]:
    """Chrome trace-event JSON for a set of traces (Perfetto-loadable).

    Each trace becomes one ``pid`` row group; spans are complete events
    (``ph: "X"``) on their recording thread's ``tid``.  Accepts live
    :class:`Trace` objects or the dictionaries the ``trace`` protocol op
    returns, so :mod:`examples.trace_dump` can convert either.
    """
    events: list[dict[str, Any]] = []
    for trace in traces:
        record = trace.to_dict() if isinstance(trace, Trace) else trace
        pid = int(record.get("trace_id", 0))
        events.append({
            "ph": "M", "pid": pid, "name": "process_name",
            "args": {"name": f"trace {pid}: {record.get('name', 'event')}"},
        })
        for s in record.get("spans", ()):
            events.append({
                "ph": "X",
                "pid": pid,
                "tid": str(s.get("tid", "0")),
                "name": s["name"],
                "cat": "repro",
                "ts": round(float(s["start_ms"]) * 1e3, 1),
                "dur": round(float(s["duration_ms"]) * 1e3, 1),
                "args": s.get("attrs") or {},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str,
                       traces: Iterable[Trace | dict[str, Any]]) -> str:
    """Write ``traces`` as a Perfetto-loadable JSON file; returns ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace_events(traces), handle)
    return path
