"""A labeled counter/gauge/histogram registry for the whole pipeline.

The service, the engine caches, the prefetcher and the execution backends
each grew their own counter dicts; this module is the one place they meet.
Three primitive metric types:

* :class:`Counter` -- a monotonic (or settable) integer with a lock, so
  ``inc()`` from the scheduler loop and executor threads never loses an
  update (a bare ``+= 1`` is two bytecodes and races under free-threaded
  interleavings);
* :class:`Gauge` -- a point-in-time value (queue depth, pool size);
* :class:`Histogram` -- a bounded window of recent observations with
  nearest-rank percentiles, generalizing the service's latency window.
  Percentiles copy the window under the lock and sort *outside* it, so a
  metrics read never blocks the hot recording path.

:class:`MetricsRegistry` names and labels them (``name`` plus a
``key=value`` label set, Prometheus-style) and additionally accepts
*collectors* -- callables sampled at report time -- so the engine's
existing lock-protected cache counters and the backends' stats dicts show
up in the same report without being rewritten.  ``stats()`` and
``metrics_report()`` keep their historical keys; the registry is the
storage and they are views.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelPairs = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_name(name: str, labels: LabelPairs) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A lock-protected integer counter (atomic ``inc``/``set``)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> int:
        with self._lock:
            self._value += amount
            return self._value

    def set(self, value: int) -> None:
        """Overwrite the value (for counters mirroring an external total)."""
        with self._lock:
            self._value = int(value)

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self._value})"


class Gauge:
    """A point-in-time value; ``set`` wins, ``inc``/``dec`` adjust."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self._value})"


class Histogram:
    """Bounded window of recent observations with nearest-rank percentiles.

    ``observe`` appends under the lock (O(1)); ``percentile`` copies the
    window under the lock and sorts the copy outside it, so percentile
    reads -- which run on the metrics/report path -- never hold the lock
    for the O(n log n) sort while recorders contend from executor threads.
    """

    __slots__ = ("_samples", "_lock", "count", "total")

    def __init__(self, window: int = 512):
        if window < 1:
            raise ValueError("window must be at least 1")
        self._samples: "deque[float]" = deque(maxlen=window)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._samples.append(value)
            self.count += 1
            self.total += value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return 0.0
        samples.sort()
        rank = max(1, int(-(-q * len(samples) // 100)))  # ceil without floats
        return samples[min(rank, len(samples)) - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "p50": self.p50,
            "p95": self.p95,
        }


class MetricsRegistry:
    """Named, labeled metrics plus report-time collectors, in one place."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelPairs], Counter] = {}
        self._gauges: dict[tuple[str, LabelPairs], Gauge] = {}
        self._histograms: dict[tuple[str, LabelPairs], Histogram] = {}
        self._collectors: dict[str, Callable[[], Any]] = {}

    # -------------------------------------------------------------- #
    # Metric creation (get-or-create; instances are stable handles)
    # -------------------------------------------------------------- #
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
            return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
            return metric

    def histogram(self, name: str, window: int = 512, **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(window)
            return metric

    # -------------------------------------------------------------- #
    # Collectors: existing counter owners sampled at report time
    # -------------------------------------------------------------- #
    def register_collector(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a callable whose result appears under ``name`` in reports."""
        with self._lock:
            self._collectors[name] = fn

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    # -------------------------------------------------------------- #
    # Reading
    # -------------------------------------------------------------- #
    def remove(self, name: str, **labels: Any) -> None:
        """Drop a metric (e.g. when its session closes)."""
        key = (name, _label_key(labels))
        with self._lock:
            self._counters.pop(key, None)
            self._gauges.pop(key, None)
            self._histograms.pop(key, None)

    def collect(self) -> dict[str, Any]:
        """All registered metric values, label-qualified, one flat dict each."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                _format_name(name, labels): metric.value
                for (name, labels), metric in sorted(counters.items())
            },
            "gauges": {
                _format_name(name, labels): metric.value
                for (name, labels), metric in sorted(gauges.items())
            },
            "histograms": {
                _format_name(name, labels): metric.snapshot()
                for (name, labels), metric in sorted(histograms.items())
            },
        }

    def report(self) -> dict[str, Any]:
        """:meth:`collect` plus every collector's sampled output."""
        out = self.collect()
        with self._lock:
            collectors = list(self._collectors.items())
        for name, fn in collectors:
            try:
                out[name] = fn()
            except Exception as exc:  # noqa: BLE001 - a report must not raise
                out[name] = {"error": repr(exc)}
        return out
