"""Observability: span tracing and the unified metrics registry.

``repro.obs`` is the cross-cutting layer the rest of the pipeline reports
into: :mod:`repro.obs.trace` times one event end to end (protocol receive
through worker kernels to the wire send) and :mod:`repro.obs.metrics`
holds every counter behind one :class:`~repro.obs.metrics.MetricsRegistry`.
Instrumentation call sites use the ambient helpers (:func:`span`,
:func:`annotate`), which cost one context-variable read when tracing is
off.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    Span,
    Trace,
    Tracer,
    annotate,
    build_explain,
    chrome_trace_events,
    current_trace,
    span,
    trace_active,
    use_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
    "annotate",
    "build_explain",
    "chrome_trace_events",
    "current_trace",
    "span",
    "trace_active",
    "use_trace",
    "write_chrome_trace",
]
