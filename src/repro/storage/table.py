"""An in-memory column-store table built on NumPy arrays.

The table is the unit of data that VisDB queries operate on.  Columns are
stored as NumPy arrays (``float64`` for numeric data, ``object`` for strings)
which keeps distance calculations vectorised -- the paper's efficiency
argument rests on the whole pipeline being O(n log n), dominated by sorting.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Table", "ColumnStats"]

#: Process-wide counter backing :attr:`Table.export_id` tokens.
_EXPORT_IDS = itertools.count(1)


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for a single column.

    The VisDB sliders display the minimum and maximum of each attribute in
    the database "to give the user a feeling for useful query values".
    """

    name: str
    count: int
    minimum: Any
    maximum: Any
    mean: float | None
    is_numeric: bool


def _as_column(values: Sequence[Any] | np.ndarray) -> np.ndarray:
    """Convert an arbitrary sequence to a storage column array."""
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise ValueError("columns must be one-dimensional")
        if values.dtype.kind in "iufb":
            return values.astype(np.float64, copy=True)
        return values.astype(object, copy=True)
    values = list(values)
    if not values:
        return np.empty(0, dtype=np.float64)
    if all(isinstance(v, (int, float, np.integer, np.floating, bool)) or v is None
           for v in values):
        return np.array(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
    return np.array(values, dtype=object)


class Table:
    """A named, immutable-length collection of equally sized columns.

    Parameters
    ----------
    name:
        Table name as it appears in queries (e.g. ``"Weather"``).
    columns:
        Mapping from column name to a sequence of values.  Numeric columns
        are stored as ``float64``; everything else as Python objects.
    """

    def __init__(self, name: str, columns: Mapping[str, Sequence[Any] | np.ndarray]):
        self.name = name
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for col_name, values in columns.items():
            array = _as_column(values)
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise ValueError(
                    f"column {col_name!r} has length {len(array)}, expected {length}"
                )
            self._columns[col_name] = array
        self._length = length if length is not None else 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(cls, name: str, rows: Iterable[Mapping[str, Any]],
                  column_names: Sequence[str] | None = None) -> "Table":
        """Build a table from an iterable of row dictionaries."""
        rows = list(rows)
        if column_names is None:
            if not rows:
                raise ValueError("cannot infer columns from an empty row list")
            column_names = list(rows[0].keys())
        columns = {c: [row.get(c) for row in rows] for c in column_names}
        return cls(name, columns)

    @classmethod
    def empty(cls, name: str, column_names: Sequence[str]) -> "Table":
        """Create a table with the given columns and zero rows."""
        return cls(name, {c: np.empty(0, dtype=np.float64) for c in column_names})

    @classmethod
    def adopt_columns(cls, name: str,
                      columns: Mapping[str, np.ndarray]) -> "Table":
        """Wrap pre-validated column arrays without copying them.

        The storage contract must already hold: one-dimensional arrays,
        ``float64`` for numeric data and ``object`` for everything else,
        all of equal length.  This is how execution backends reconstruct a
        table over shared-memory buffers zero-copy, and how bulk producers
        (e.g. cross-product materialisation) avoid a second full copy of
        freshly gathered columns.  The adopted arrays are referenced, not
        copied -- callers hand over ownership and must not mutate them.
        """
        length: int | None = None
        adopted: dict[str, np.ndarray] = {}
        for col_name, array in columns.items():
            if not isinstance(array, np.ndarray) or array.ndim != 1:
                raise ValueError(
                    f"column {col_name!r} must be a one-dimensional ndarray"
                )
            if array.dtype != np.float64 and array.dtype != object:
                raise ValueError(
                    f"column {col_name!r} has dtype {array.dtype}; "
                    "adopt_columns requires float64 or object columns"
                )
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise ValueError(
                    f"column {col_name!r} has length {len(array)}, expected {length}"
                )
            adopted[col_name] = array
        new = cls.__new__(cls)
        new.name = name
        new._columns = adopted
        new._length = length if length is not None else 0
        return new

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._length

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {self._length} rows, {len(self._columns)} columns)"

    @property
    def column_names(self) -> list[str]:
        """Names of all columns, in insertion order."""
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        """Return the raw column array for ``name``.

        The returned array is the stored array; callers must not mutate it.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {', '.join(self._columns) or '(none)'}"
            ) from None

    def has_column(self, name: str) -> bool:
        """Return ``True`` if a column called ``name`` exists."""
        return name in self._columns

    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a plain dictionary.

        Used by the interaction layer when the user selects a tuple and asks
        for its attribute values ("selected tuple" field in Fig. 4/5).
        """
        if not -self._length <= index < self._length:
            raise IndexError(f"row index {index} out of range for {self._length} rows")
        return {name: col[index] for name, col in self._columns.items()}

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over all rows as dictionaries."""
        for i in range(self._length):
            yield self.row(i)

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def take(self, indices: Sequence[int] | np.ndarray, name: str | None = None) -> "Table":
        """Return a new table containing the rows at ``indices`` (in order)."""
        idx = np.asarray(indices, dtype=np.intp)
        columns = {c: col[idx] for c, col in self._columns.items()}
        return Table(name or self.name, columns)

    def select(self, mask: np.ndarray, name: str | None = None) -> "Table":
        """Return a new table with the rows where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self._length:
            raise ValueError("mask length does not match table length")
        return self.take(np.nonzero(mask)[0], name=name)

    def head(self, n: int = 5) -> "Table":
        """Return the first ``n`` rows as a new table."""
        return self.take(np.arange(min(n, self._length)))

    def slice_rows(self, start: int, stop: int, name: str | None = None) -> "Table":
        """Return the rows ``[start, stop)`` as a zero-copy view table.

        Unlike :meth:`take`, the returned table's columns are NumPy views
        into this table's arrays -- no data is copied.  This is what makes
        row-range sharding cheap: a :class:`~repro.core.shard.ShardedTable`
        holds one view per shard over the same memory.  Callers must treat
        the views as read-only, exactly as for :meth:`column`.
        """
        if not 0 <= start <= stop <= self._length:
            raise ValueError(
                f"invalid row slice [{start}, {stop}) for {self._length} rows"
            )
        new = Table.__new__(Table)
        new.name = name or self.name
        new._columns = {c: col[start:stop] for c, col in self._columns.items()}
        new._length = stop - start
        return new

    def sort_by(self, column_name: str, descending: bool = False) -> "Table":
        """Return a copy of the table sorted by one column."""
        order = np.argsort(self.column(column_name), kind="stable")
        if descending:
            order = order[::-1]
        return self.take(order)

    def with_column(self, name: str, values: Sequence[Any] | np.ndarray) -> "Table":
        """Return a new table with an extra (or replaced) column."""
        array = _as_column(values)
        if len(array) != self._length:
            raise ValueError(
                f"new column {name!r} has length {len(array)}, expected {self._length}"
            )
        columns = dict(self._columns)
        columns[name] = array
        return Table(self.name, columns)

    def renamed(self, name: str) -> "Table":
        """Return the same table under a different name (columns are shared)."""
        new = Table.__new__(Table)
        new.name = name
        new._columns = self._columns
        new._length = self._length
        return new

    def with_prefix(self, prefix: str) -> "Table":
        """Return a table whose columns are renamed ``prefix + '.' + name``.

        Used when forming cross products for approximate joins so that
        attribute references such as ``Weather.DateTime`` stay unambiguous.
        """
        columns = {f"{prefix}.{c}": col for c, col in self._columns.items()}
        return Table(self.name, columns)

    @staticmethod
    def concat(name: str, tables: Sequence["Table"]) -> "Table":
        """Concatenate tables that share the same column set."""
        if not tables:
            raise ValueError("cannot concatenate an empty list of tables")
        column_names = tables[0].column_names
        for t in tables[1:]:
            if t.column_names != column_names:
                raise ValueError("all tables must share the same columns to concat")
        columns = {
            c: np.concatenate([t.column(c) for t in tables]) for c in column_names
        }
        return Table(name, columns)

    # ------------------------------------------------------------------ #
    # Out-of-process export
    # ------------------------------------------------------------------ #
    @property
    def export_id(self) -> str:
        """Stable identity token for this table's column buffers.

        Assigned on first access and constant for the object's lifetime,
        the token is what execution backends key shared-memory
        publications by: a table is published to worker processes at most
        once, and repeated prepares (or several engines over the same
        table, as in the differential suite) resolve to the same blocks.
        The process id is embedded so tokens from different coordinator
        processes can never collide on a shared-memory namespace.
        """
        token = self.__dict__.get("_export_id")
        if token is None:
            token = f"t{os.getpid()}-{next(_EXPORT_IDS)}"
            self._export_id = token
        return token

    def export_columns(self) -> dict[str, np.ndarray]:
        """Column arrays in publication form: contiguous, insertion order.

        Numeric columns come back as C-contiguous ``float64`` arrays whose
        raw buffers can be copied into (or mapped from) shared memory;
        object columns are returned as-is for the caller to serialise.
        Contiguity is the only transformation -- values are never altered,
        which is what lets a worker-side reconstruction stay bit-identical
        to the coordinator's view.
        """
        return {
            c: np.ascontiguousarray(col) if col.dtype.kind == "f" else col
            for c, col in self._columns.items()
        }

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def is_numeric(self, column_name: str) -> bool:
        """Return ``True`` if the column holds numeric (float) data."""
        return self.column(column_name).dtype.kind == "f"

    def stats(self, column_name: str) -> ColumnStats:
        """Return min/max/mean statistics for a column.

        NaN values (missing measurements) are ignored for numeric columns.
        """
        col = self.column(column_name)
        if len(col) == 0:
            return ColumnStats(column_name, 0, None, None, None, self.is_numeric(column_name))
        if self.is_numeric(column_name):
            finite = col[~np.isnan(col)]
            if len(finite) == 0:
                return ColumnStats(column_name, len(col), None, None, None, True)
            return ColumnStats(
                name=column_name,
                count=len(col),
                minimum=float(finite.min()),
                maximum=float(finite.max()),
                mean=float(finite.mean()),
                is_numeric=True,
            )
        ordered = sorted(str(v) for v in col)
        return ColumnStats(
            name=column_name,
            count=len(col),
            minimum=ordered[0],
            maximum=ordered[-1],
            mean=None,
            is_numeric=False,
        )

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialise the whole table as a list of row dictionaries."""
        return list(self.rows())

    def to_columns(self) -> dict[str, np.ndarray]:
        """Return a shallow copy of the column mapping."""
        return dict(self._columns)
