"""A database is a named collection of tables plus declared *connections*.

In the VisDB query specification interface (derived from GRADI), joins are
not typed out by the user: the database designer declares named, possibly
parameterised *connections* such as ``Air-Pollution at-same-location Weather``
or ``Air-Pollution with-time-diff(min) Weather`` which then appear in the
Connections window and can be dropped into a query.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.storage.table import Table

__all__ = ["Database"]


class Database:
    """Container for tables and designer-declared connections.

    Parameters
    ----------
    name:
        Display name of the database (the first thing the user selects when
        starting the VisDB system).
    tables:
        Optional initial tables.
    """

    def __init__(self, name: str, tables: Iterable[Table] = ()):  # noqa: D107
        self.name = name
        self._tables: dict[str, Table] = {}
        self._connections: dict[str, "Connection"] = {}
        for table in tables:
            self.add_table(table)

    # ------------------------------------------------------------------ #
    # Tables
    # ------------------------------------------------------------------ #
    def add_table(self, table: Table) -> None:
        """Register a table; the name must be unique within the database."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists in database {self.name!r}")
        self._tables[table.name] = table

    def replace_table(self, table: Table) -> None:
        """Replace an existing table of the same name (or add it)."""
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"database {self.name!r} has no table {name!r}; "
                f"available: {', '.join(self._tables) or '(none)'}"
            ) from None

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return list(self._tables)

    def total_rows(self) -> int:
        """Total number of data items over all tables."""
        return sum(len(t) for t in self._tables.values())

    # ------------------------------------------------------------------ #
    # Connections (named joins)
    # ------------------------------------------------------------------ #
    def register_connection(self, connection: "Connection") -> None:
        """Declare a named join between two tables of this database."""
        for table_name in (connection.left_table, connection.right_table):
            if table_name not in self._tables:
                raise KeyError(
                    f"connection {connection.name!r} references unknown table {table_name!r}"
                )
        self._connections[connection.key] = connection

    def connection(self, key: str) -> "Connection":
        """Look up a connection by its key (``'<left> <name> <right>'``)."""
        try:
            return self._connections[key]
        except KeyError:
            raise KeyError(
                f"database {self.name!r} has no connection {key!r}; "
                f"available: {', '.join(self._connections) or '(none)'}"
            ) from None

    def connections_for(self, table_names: Iterable[str]) -> list["Connection"]:
        """Return all connections that involve at least one of ``table_names``.

        This mirrors the Connections window of the query specification
        interface: "all 'connections' involving at least one of the selected
        tables will appear".
        """
        wanted = set(table_names)
        return [
            c for c in self._connections.values()
            if c.left_table in wanted or c.right_table in wanted
        ]

    @property
    def connection_keys(self) -> list[str]:
        """Keys of all declared connections."""
        return list(self._connections)

    # ------------------------------------------------------------------ #
    # Schema summary
    # ------------------------------------------------------------------ #
    def describe(self) -> Mapping[str, list[str]]:
        """Return a mapping table name -> column names (the attribute lists
        shown in the query specification window)."""
        return {name: table.column_names for name, table in self._tables.items()}


# Imported late to avoid a circular import: Connection lives with the query
# model but is registered on the database like the paper describes.
from repro.query.joins import Connection  # noqa: E402  (intentional late import)
