"""Storage substrate: column-store tables, databases, indexes and caches.

The VisDB paper assumes an underlying database system that can deliver all
candidate data items for a query (and, ideally, supports multidimensional
range queries and incremental query modification -- see the paper's
conclusions).  This package provides that substrate:

* :class:`~repro.storage.table.Table` -- an in-memory NumPy column store.
* :class:`~repro.storage.database.Database` -- a named collection of tables
  plus the designer-defined *connections* (named joins) used by the query
  specification interface.
* :mod:`~repro.storage.sqlite_backend` -- persistence to/from SQLite.
* :mod:`~repro.storage.csv_io` -- CSV import/export with type inference.
* :mod:`~repro.storage.index` -- sorted single-attribute and grid-based
  multi-attribute indexes for range queries.
* :class:`~repro.storage.cache.PrefetchCache` -- the incremental
  "retrieve more data than necessary" cache sketched in the conclusions.
* :mod:`~repro.storage.cross_product` -- lazy cross products for
  approximate joins.
"""

from repro.storage.table import Table, ColumnStats
from repro.storage.database import Database
from repro.storage.index import SortedIndex, GridIndex
from repro.storage.cache import PrefetchCache, CachedRegion
from repro.storage.cross_product import CrossProduct, sampled_pair_indices
from repro.storage import csv_io, sqlite_backend

__all__ = [
    "Table",
    "ColumnStats",
    "Database",
    "SortedIndex",
    "GridIndex",
    "PrefetchCache",
    "CachedRegion",
    "CrossProduct",
    "sampled_pair_indices",
    "csv_io",
    "sqlite_backend",
]
