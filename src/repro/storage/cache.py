"""Incremental query prefetch cache.

The VisDB paper's conclusions describe the intended optimisation for
interactive query modification: "retrieve more data than necessary in the
beginning and retrieve only the additional portion of the data that is
needed for a slightly modified query later on".  :class:`PrefetchCache`
implements exactly that policy for conjunctive range regions: every fetch
widens the requested attribute ranges by a margin, and later queries that
fall inside a cached region are answered from the cache without touching
the underlying table.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.index import SortedIndex

__all__ = ["PrefetchCache", "CachedRegion", "CachedUnionRegion", "MAX_UNION_DISJUNCTS"]

Range = tuple[float | None, float | None]

#: Upper bound on the number of disjuncts the union-region fast path
#: accepts; beyond it OR-shaped requests fall back to one fetch per
#: disjunct.  The merged-interval cover (:meth:`CachedUnionRegion.covers`)
#: answers the common single-attribute case in one bisection per requested
#: box instead of the quadratic pairwise scan, so the bound is set by
#: per-arm filter cost rather than cover-check cost.
MAX_UNION_DISJUNCTS = 16


def _contains(outer: Range, inner: Range) -> bool:
    """Return True if the ``outer`` range contains the ``inner`` range."""
    out_lo, out_hi = outer
    in_lo, in_hi = inner
    lo_ok = out_lo is None or (in_lo is not None and in_lo >= out_lo)
    hi_ok = out_hi is None or (in_hi is not None and in_hi <= out_hi)
    return lo_ok and hi_ok


def _box_covers(cached: Mapping[str, Range], requested: Mapping[str, Range]) -> bool:
    """True when one cached conjunctive box contains one requested box."""
    for column, wanted in requested.items():
        have = cached.get(column)
        if have is None:
            # Unconstrained in the cache: contains every value.
            continue
        if not _contains(have, wanted):
            return False
    for column, have in cached.items():
        if column not in requested and have != (None, None):
            return False
    return True


@dataclass
class CachedRegion:
    """A cached superset of a query region.

    Attributes
    ----------
    ranges:
        The widened per-attribute ranges actually fetched.
    row_indices:
        Indices (into the base table) of the rows inside ``ranges``.
    """

    ranges: dict[str, Range]
    row_indices: np.ndarray
    hits: int = 0

    def covers(self, ranges: Mapping[str, Range]) -> bool:
        """Return True if this region contains the requested query box.

        Attributes constrained in the cache but unconstrained in the request
        mean the request is *wider* than the cache -> not covered.
        """
        return _box_covers(self.ranges, ranges)


@dataclass
class CachedUnionRegion:
    """A cached superset of an OR-shaped (union-of-boxes) query region.

    ``disjuncts`` are the widened boxes actually fetched; ``row_indices``
    is the union of their rows.  The region covers a requested union when
    the cached union provably contains every requested box -- a sufficient
    condition (the cached union then contains the requested union), and
    exactness is restored by re-filtering the candidates against the
    requested disjuncts.

    When every cached disjunct constrains exactly one shared attribute
    (the typical OR: several bands on one slider), containment is decided
    against a merged-interval cover of that attribute rather than the
    pairwise box scan.  The cover is strictly more complete: it accepts a
    request straddling two *overlapping* cached arms (``[1, 2] | [2, 3]``
    covers ``[1.5, 2.5]``, which no individual cached box does) and costs
    one bisection per requested box instead of one comparison per cached
    arm.  Multi-attribute or mixed-attribute disjunct sets fall back to
    the pairwise check.
    """

    disjuncts: list[dict[str, Range]]
    row_indices: np.ndarray
    hits: int = 0
    #: Lazily built by the first ``covers`` call (under the owning cache's
    #: lock); ``None`` after building means the cover is inapplicable.
    _cover: "tuple[str, list[float], list[float]] | None" = field(
        default=None, init=False, repr=False, compare=False)
    _cover_built: bool = field(default=False, init=False, repr=False,
                               compare=False)

    def _interval_cover(self) -> "tuple[str, list[float], list[float]] | None":
        """Disjoint merged intervals over the one shared attribute.

        Returns ``(attribute, lows, highs)`` with ``lows`` sorted and the
        intervals pairwise disjoint, or ``None`` when the disjuncts do not
        all constrain exactly one common attribute.  ``None`` bounds map
        to +/-inf; closed intervals merge when they touch.
        """
        attr: str | None = None
        intervals: list[tuple[float, float]] = []
        for cached in self.disjuncts:
            constrained = [c for c, r in cached.items() if r != (None, None)]
            if len(constrained) != 1:
                return None
            if attr is None:
                attr = constrained[0]
            elif constrained[0] != attr:
                return None
            low, high = cached[constrained[0]]
            intervals.append((
                float("-inf") if low is None else low,
                float("inf") if high is None else high,
            ))
        if attr is None:
            return None
        intervals.sort()
        lows = [intervals[0][0]]
        highs = [intervals[0][1]]
        for low, high in intervals[1:]:
            if low <= highs[-1]:
                highs[-1] = max(highs[-1], high)
            else:
                lows.append(low)
                highs.append(high)
        return attr, lows, highs

    def covers(self, requested: "list[dict[str, Range]]") -> bool:
        if not self._cover_built:
            self._cover = self._interval_cover()
            self._cover_built = True
        if self._cover is None:
            return all(
                any(_box_covers(cached, box) for cached in self.disjuncts)
                for box in requested
            )
        attr, lows, highs = self._cover
        for box in requested:
            low, high = box.get(attr, (None, None))
            low = float("-inf") if low is None else low
            high = float("inf") if high is None else high
            index = bisect_right(lows, low) - 1
            if index < 0 or highs[index] < high:
                return False
        return True


@dataclass
class PrefetchCache:
    """Cache of widened range-query results over a single table.

    Parameters
    ----------
    table:
        The base table queried against.
    margin:
        Fractional widening applied to every finite bound when fetching,
        e.g. ``0.25`` widens a ``[10, 20]`` range to ``[7.5, 22.5]``.
    max_regions:
        Maximum number of cached regions kept, counting conjunctive boxes
        and union regions against one shared budget.  Eviction is hit-count
        aware: the region with the fewest hits goes first (ties broken by
        age, oldest first), so the region a slider is actively dragged
        inside survives pressure from one-shot queries -- the failure mode
        of the earlier blind-FIFO policy.  Sharded evaluation keys caches
        per shard (one :class:`PrefetchCache` per row range, see
        :class:`~repro.core.shard.ShardedTable`), so eviction pressure on
        one shard never drops another shard's hot region.
    indexes:
        Optional per-column :class:`~repro.storage.index.SortedIndex` map;
        fresh fetches use an index for one constrained column (answering the
        range in O(log n + k)) and only filter the remaining columns on the
        candidates, instead of scanning every row of the table.
    """

    table: Table
    margin: float = 0.25
    max_regions: int = 8
    indexes: dict[str, "SortedIndex"] | None = None
    _regions: list[CachedRegion] = field(default_factory=list)
    _union_regions: list[CachedUnionRegion] = field(default_factory=list)
    fetches: int = 0
    cache_hits: int = 0
    evictions: int = 0
    #: Per-shape breakdown of the aggregate hit/fetch counters: "box" for
    #: conjunctive requests, "union" for OR-shaped ones served by the
    #: union-region fast path, "union_fallback" counting oversize union
    #: requests (beyond :data:`MAX_UNION_DISJUNCTS`) that had to scan at
    #: least one arm -- fallbacks answered entirely from cached boxes
    #: count as box hits only.
    shape_counts: dict = field(default_factory=lambda: {
        "box": {"hits": 0, "misses": 0},
        "union": {"hits": 0, "misses": 0},
        "union_fallback": 0,
    })
    # Concurrent sessions executing against the same table (or the same
    # shard of it) share this cache through their worker threads; the lock
    # makes the region list and the counters consistent under that access.
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                  compare=False)

    def _widen(self, ranges: Mapping[str, Range]) -> dict[str, Range]:
        widened: dict[str, Range] = {}
        for column, (low, high) in ranges.items():
            if low is None and high is None:
                widened[column] = (None, None)
                continue
            stats = self.table.stats(column)
            lo = stats.minimum if low is None else low
            hi = stats.maximum if high is None else high
            width = max(hi - lo, 1e-12)
            pad = width * self.margin
            widened[column] = (
                None if low is None else lo - pad,
                None if high is None else hi + pad,
            )
        return widened

    def _scan(self, ranges: Mapping[str, Range]) -> np.ndarray:
        indexed = None
        if self.indexes:
            for column, (low, high) in ranges.items():
                if column in self.indexes and (low is not None or high is not None):
                    indexed = column
                    break
        if indexed is not None:
            low, high = ranges[indexed]
            candidates = self.indexes[indexed].range_query(low, high)
            remaining = {c: r for c, r in ranges.items() if c != indexed}
            return self._filter(candidates, remaining) if remaining else candidates
        keep = np.ones(len(self.table), dtype=bool)
        for column, (low, high) in ranges.items():
            values = self.table.column(column)
            if low is not None:
                keep &= values >= low
            if high is not None:
                keep &= values <= high
        return np.nonzero(keep)[0]

    def _covering(self, ranges: Mapping[str, Range]) -> CachedRegion | None:
        for region in self._regions:
            if region.covers(ranges):
                return region
        return None

    def _fetch(self, ranges: Mapping[str, Range]) -> np.ndarray:
        """Fetch (and remember) a widened superset region for ``ranges``.

        The scan itself runs outside the lock -- it is the dominant cost
        and touches only the immutable table -- so concurrent sessions
        missing on different regions proceed in parallel; only the region
        list and the counters are updated under the lock.  Two racing
        misses may both fetch (and briefly double-cache) the same band;
        that costs one redundant scan, never a wrong answer.
        """
        widened = self._widen(ranges)
        rows = self._scan(widened)
        with self._lock:
            self.fetches += 1
            self.shape_counts["box"]["misses"] += 1
            self._regions.append(CachedRegion(ranges=widened, row_indices=rows))
            self._evict_to_budget(self._regions)
        return rows

    def _evict_to_budget(self, appended_to: list) -> None:
        """Evict least-hit residents until box + union regions fit the budget.

        ``max_regions`` bounds the *combined* count of box and union
        regions, so adding the union shape did not double the cache's
        worst-case footprint.  The newest region (the one just appended to
        ``appended_to``) is exempt: it necessarily has zero hits, so
        including it would self-evict every new fetch the moment all
        residents have a hit -- permanently locking the cache to stale
        regions.  Among residents the victim is the least-hit one, ties
        broken oldest-first with box regions before union regions.
        """
        while len(self._regions) + len(self._union_regions) > self.max_regions:
            candidates = [
                (region.hits, 0, i, self._regions)
                for i, region in enumerate(self._regions)
            ] + [
                (region.hits, 1, i, self._union_regions)
                for i, region in enumerate(self._union_regions)
            ]
            # Exempt the just-appended region (the last of its list).
            candidates = [
                c for c in candidates
                if not (c[3] is appended_to and c[2] == len(appended_to) - 1)
            ]
            if not candidates:  # max_regions == 0: nothing can stay
                appended_to.pop()
                self.evictions += 1
                return
            _, _, index, regions = min(candidates, key=lambda c: c[:3])
            regions.pop(index)
            self.evictions += 1

    def query(self, ranges: Mapping[str, Range]) -> np.ndarray:
        """Return row indices matching the conjunctive range query.

        The result is exact; the cache only changes *where* the candidate
        rows come from (a cached superset vs. a fresh table scan).
        """
        ranges = dict(ranges)
        with self._lock:
            region = self._covering(ranges)
            if region is not None:
                region.hits += 1
                self.cache_hits += 1
                self.shape_counts["box"]["hits"] += 1
                rows = region.row_indices
        if region is not None:
            # Filter outside the lock: row_indices is immutable, and a
            # concurrent eviction of the region cannot free it from under
            # the local reference.
            return self._filter(rows, ranges)
        return self._filter(self._fetch(ranges), ranges)

    def fulfilment_mask(self, ranges: Mapping[str, Range]) -> np.ndarray:
        """Boolean mask over the table: True where the range query matches.

        Same semantics as :meth:`query` (including the hit/fetch counters)
        but returns the mask form the relevance pipeline consumes, which
        frees the hit path from producing sorted row indices: a cached
        single-column query is answered straight from its range index as an
        O(log n + k) slice plus a scatter.
        """
        ranges = dict(ranges)
        mask = np.zeros(len(self.table), dtype=bool)
        with self._lock:
            region = self._covering(ranges)
            if region is not None:
                region.hits += 1
                self.cache_hits += 1
                self.shape_counts["box"]["hits"] += 1
                rows = region.row_indices
        if region is not None:
            if self.indexes and len(ranges) == 1:
                column, (low, high) = next(iter(ranges.items()))
                index = self.indexes.get(column)
                # Finite bounds only: a one-sided slice of the sorted order
                # would sweep in the trailing NaN entries.
                if index is not None and low is not None and high is not None:
                    mask[index.range_query(low, high, sort=False)] = True
                    return mask
            mask[self._filter(rows, ranges)] = True
            return mask
        mask[self._filter(self._fetch(ranges), ranges)] = True
        return mask

    # ------------------------------------------------------------------ #
    # OR-shaped (union-of-boxes) regions
    # ------------------------------------------------------------------ #
    def query_union(self, disjuncts: "Sequence[Mapping[str, Range]]") -> np.ndarray:
        """Row indices matching *any* of the conjunctive boxes (exact).

        Up to :data:`MAX_UNION_DISJUNCTS` boxes are served through one
        cached union region: a single fetch widens and scans each arm once,
        and every later union query whose arms fall inside the cached boxes
        (the typical narrowing drag on one arm of an OR) is answered from
        the cache without touching the table -- instead of the historical
        one-scan-per-disjunct fallback.  Larger unions take that fallback
        (counted in ``stats()["by_shape"]["union_fallback"]``) and stay
        exact through the per-box path.
        """
        boxes = [dict(box) for box in disjuncts]
        if not boxes:
            return np.empty(0, dtype=np.intp)
        if len(boxes) == 1:
            return self.query(boxes[0])
        if len(boxes) > MAX_UNION_DISJUNCTS:
            # Per-disjunct fallback: each arm goes through the ordinary
            # box hit/fetch accounting.  ``union_fallback`` counts the
            # event only when at least one arm actually scanned -- a
            # fallback answered entirely from cached boxes used to be
            # recorded as a fallback *and* per-box hits, reading as a
            # miss-shaped event despite touching no data.
            pieces = []
            fetched = False
            for box in boxes:
                with self._lock:
                    region = self._covering(box)
                    if region is not None:
                        region.hits += 1
                        self.cache_hits += 1
                        self.shape_counts["box"]["hits"] += 1
                        rows = region.row_indices
                if region is None:
                    fetched = True
                    rows = self._fetch(box)
                pieces.append(self._filter(rows, box))
            if fetched:
                with self._lock:
                    self.shape_counts["union_fallback"] += 1
            return np.unique(np.concatenate(pieces))
        with self._lock:
            region = None
            for candidate in self._union_regions:
                if candidate.covers(boxes):
                    region = candidate
                    break
            if region is not None:
                region.hits += 1
                self.cache_hits += 1
                self.shape_counts["union"]["hits"] += 1
                rows = region.row_indices
        if region is not None:
            return self._filter_union(rows, boxes)
        return self._filter_union(self._fetch_union(boxes), boxes)

    def fulfilment_mask_union(self,
                              disjuncts: "Sequence[Mapping[str, Range]]") -> np.ndarray:
        """Boolean mask over the table: True where any disjunct matches."""
        mask = np.zeros(len(self.table), dtype=bool)
        mask[self.query_union(disjuncts)] = True
        return mask

    def _fetch_union(self, boxes: "list[dict[str, Range]]") -> np.ndarray:
        """Fetch (and remember) one widened union region for ``boxes``.

        Each arm is widened and scanned once (index-accelerated where
        possible); the union of the candidate rows is cached as a single
        region, so the per-arm scans happen once per explored band rather
        than once per query.
        """
        widened = [self._widen(box) for box in boxes]
        pieces = [self._scan(box) for box in widened]
        rows = np.unique(np.concatenate(pieces))
        with self._lock:
            self.fetches += 1
            self.shape_counts["union"]["misses"] += 1
            self._union_regions.append(CachedUnionRegion(widened, rows))
            self._evict_to_budget(self._union_regions)
        return rows

    def _filter_union(self, candidate_rows: np.ndarray,
                      boxes: "list[dict[str, Range]]") -> np.ndarray:
        if len(candidate_rows) == 0:
            return candidate_rows
        # One gather per distinct column, shared by every box that
        # constrains it (the typical OR has all arms on the same attribute).
        gathered = {
            column: self.table.column(column)[candidate_rows]
            for box in boxes for column in box
        }
        keep = np.zeros(len(candidate_rows), dtype=bool)
        for box in boxes:
            box_keep = np.ones(len(candidate_rows), dtype=bool)
            for column, (low, high) in box.items():
                values = gathered[column]
                if low is not None:
                    box_keep &= values >= low
                if high is not None:
                    box_keep &= values <= high
            keep |= box_keep
        return candidate_rows[keep]

    def _filter(self, candidate_rows: np.ndarray, ranges: Mapping[str, Range]) -> np.ndarray:
        if len(candidate_rows) == 0:
            return candidate_rows
        keep = np.ones(len(candidate_rows), dtype=bool)
        for column, (low, high) in ranges.items():
            values = self.table.column(column)[candidate_rows]
            if low is not None:
                keep &= values >= low
            if high is not None:
                keep &= values <= high
        return candidate_rows[keep]

    @property
    def region_count(self) -> int:
        """Number of regions currently cached."""
        return len(self._regions)

    def hit_rate(self) -> float:
        """Fraction of queries answered from the cache."""
        total = self.fetches + self.cache_hits
        return self.cache_hits / total if total else 0.0

    def stats(self) -> dict[str, int]:
        """Cheap counters for metrics endpoints: hits, misses, evictions.

        A fetch *is* a miss (every query either hits a cached region or
        fetches a fresh widened one), so the pair ``hits``/``misses`` sums
        to the number of queries served.
        """
        return {
            "hits": self.cache_hits,
            "misses": self.fetches,
            "evictions": self.evictions,
            "regions": len(self._regions),
            "union_regions": len(self._union_regions),
            "by_shape": {
                "box": dict(self.shape_counts["box"]),
                "union": dict(self.shape_counts["union"]),
                "union_fallback": self.shape_counts["union_fallback"],
            },
        }

    def clear(self) -> None:
        """Drop all cached regions and statistics."""
        with self._lock:
            self._regions.clear()
            self._union_regions.clear()
            self.fetches = 0
            self.cache_hits = 0
            self.evictions = 0
            self.shape_counts = {
                "box": {"hits": 0, "misses": 0},
                "union": {"hits": 0, "misses": 0},
                "union_fallback": 0,
            }
