"""Incremental query prefetch cache.

The VisDB paper's conclusions describe the intended optimisation for
interactive query modification: "retrieve more data than necessary in the
beginning and retrieve only the additional portion of the data that is
needed for a slightly modified query later on".  :class:`PrefetchCache`
implements exactly that policy for conjunctive range regions: every fetch
widens the requested attribute ranges by a margin, and later queries that
fall inside a cached region are answered from the cache without touching
the underlying table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.storage.table import Table

__all__ = ["PrefetchCache", "CachedRegion"]

Range = tuple[float | None, float | None]


def _contains(outer: Range, inner: Range) -> bool:
    """Return True if the ``outer`` range contains the ``inner`` range."""
    out_lo, out_hi = outer
    in_lo, in_hi = inner
    lo_ok = out_lo is None or (in_lo is not None and in_lo >= out_lo)
    hi_ok = out_hi is None or (in_hi is not None and in_hi <= out_hi)
    return lo_ok and hi_ok


@dataclass
class CachedRegion:
    """A cached superset of a query region.

    Attributes
    ----------
    ranges:
        The widened per-attribute ranges actually fetched.
    row_indices:
        Indices (into the base table) of the rows inside ``ranges``.
    """

    ranges: dict[str, Range]
    row_indices: np.ndarray
    hits: int = 0

    def covers(self, ranges: Mapping[str, Range]) -> bool:
        """Return True if this region contains the requested query box."""
        for column, requested in ranges.items():
            cached = self.ranges.get(column)
            if cached is None:
                # The cached region did not constrain this attribute at all,
                # which means it contains every value of it.
                continue
            if not _contains(cached, requested):
                return False
        # Attributes constrained in the cache but unconstrained in the request
        # mean the request is *wider* than the cache -> not covered.
        for column, cached in self.ranges.items():
            if column not in ranges and cached != (None, None):
                return False
        return True


@dataclass
class PrefetchCache:
    """Cache of widened range-query results over a single table.

    Parameters
    ----------
    table:
        The base table queried against.
    margin:
        Fractional widening applied to every finite bound when fetching,
        e.g. ``0.25`` widens a ``[10, 20]`` range to ``[7.5, 22.5]``.
    max_regions:
        Maximum number of cached regions kept (oldest evicted first).
    """

    table: Table
    margin: float = 0.25
    max_regions: int = 8
    _regions: list[CachedRegion] = field(default_factory=list)
    fetches: int = 0
    cache_hits: int = 0

    def _widen(self, ranges: Mapping[str, Range]) -> dict[str, Range]:
        widened: dict[str, Range] = {}
        for column, (low, high) in ranges.items():
            if low is None and high is None:
                widened[column] = (None, None)
                continue
            stats = self.table.stats(column)
            lo = stats.minimum if low is None else low
            hi = stats.maximum if high is None else high
            width = max(hi - lo, 1e-12)
            pad = width * self.margin
            widened[column] = (
                None if low is None else lo - pad,
                None if high is None else hi + pad,
            )
        return widened

    def _scan(self, ranges: Mapping[str, Range]) -> np.ndarray:
        keep = np.ones(len(self.table), dtype=bool)
        for column, (low, high) in ranges.items():
            values = self.table.column(column)
            if low is not None:
                keep &= values >= low
            if high is not None:
                keep &= values <= high
        return np.nonzero(keep)[0]

    def query(self, ranges: Mapping[str, Range]) -> np.ndarray:
        """Return row indices matching the conjunctive range query.

        The result is exact; the cache only changes *where* the candidate
        rows come from (a cached superset vs. a fresh table scan).
        """
        ranges = dict(ranges)
        for region in self._regions:
            if region.covers(ranges):
                region.hits += 1
                self.cache_hits += 1
                return self._filter(region.row_indices, ranges)
        widened = self._widen(ranges)
        rows = self._scan(widened)
        self.fetches += 1
        self._regions.append(CachedRegion(ranges=widened, row_indices=rows))
        if len(self._regions) > self.max_regions:
            self._regions.pop(0)
        return self._filter(rows, ranges)

    def _filter(self, candidate_rows: np.ndarray, ranges: Mapping[str, Range]) -> np.ndarray:
        if len(candidate_rows) == 0:
            return candidate_rows
        keep = np.ones(len(candidate_rows), dtype=bool)
        for column, (low, high) in ranges.items():
            values = self.table.column(column)[candidate_rows]
            if low is not None:
                keep &= values >= low
            if high is not None:
                keep &= values <= high
        return candidate_rows[keep]

    @property
    def region_count(self) -> int:
        """Number of regions currently cached."""
        return len(self._regions)

    def hit_rate(self) -> float:
        """Fraction of queries answered from the cache."""
        total = self.fetches + self.cache_hits
        return self.cache_hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all cached regions and statistics."""
        self._regions.clear()
        self.fetches = 0
        self.cache_hits = 0
