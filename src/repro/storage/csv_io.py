"""CSV import/export for tables with simple type inference."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.storage.table import Table

__all__ = ["read_csv", "write_csv"]


def _try_float(value: str) -> float | None:
    try:
        return float(value)
    except ValueError:
        return None


def read_csv(path: str | Path, table_name: str | None = None,
             delimiter: str = ",") -> Table:
    """Read a CSV file (with a header row) into a :class:`Table`.

    Columns where every non-empty value parses as a float become numeric
    columns (empty cells become NaN); everything else is kept as strings.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"CSV file {path} is empty") from None
        raw_rows = [row for row in reader if row]
    columns: dict[str, list] = {name: [] for name in header}
    for row in raw_rows:
        if len(row) != len(header):
            raise ValueError(
                f"CSV row has {len(row)} fields, expected {len(header)}: {row!r}"
            )
        for name, cell in zip(header, row):
            columns[name].append(cell)
    converted: dict[str, list] = {}
    for name, cells in columns.items():
        parsed = [_try_float(c) if c != "" else None for c in cells]
        if all(p is not None or c == "" for p, c in zip(parsed, cells)):
            converted[name] = [np.nan if p is None else p for p in parsed]
        else:
            converted[name] = cells
    return Table(table_name or path.stem, converted)


def write_csv(table: Table, path: str | Path, delimiter: str = ",",
              columns: Sequence[str] | None = None) -> None:
    """Write a table to a CSV file with a header row."""
    path = Path(path)
    names = list(columns) if columns is not None else table.column_names
    arrays = [table.column(c) for c in names]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(names)
        for i in range(len(table)):
            row = []
            for array in arrays:
                value = array[i]
                if isinstance(value, float) and np.isnan(value):
                    row.append("")
                else:
                    row.append(value)
            writer.writerow(row)
