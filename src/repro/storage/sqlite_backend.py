"""SQLite persistence for tables and databases.

The original VisDB prototype interfaced with a conventional relational
DBMS.  This module provides the equivalent glue: a :class:`Database` (or a
single :class:`Table`) can be stored in and loaded from a SQLite file, and
arbitrary SQL can be evaluated to produce new tables (useful for comparing
the visual-feedback pipeline with exact SQL execution).
"""

from __future__ import annotations

import re
import sqlite3
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.storage.database import Database
from repro.storage.table import Table

__all__ = [
    "save_table",
    "load_table",
    "save_database",
    "load_database",
    "query_to_table",
    "connect",
]

_IDENTIFIER = re.compile(r"[^A-Za-z0-9_]")


def _quote(name: str) -> str:
    """Quote an identifier for SQLite, normalising characters it dislikes."""
    return '"' + name.replace('"', '""') + '"'


def _sql_column_name(name: str) -> str:
    """SQLite-safe column name (dots and dashes become underscores)."""
    return _IDENTIFIER.sub("_", name)


def connect(path: str | Path | None = None) -> sqlite3.Connection:
    """Open (or create) a SQLite database; ``None`` gives an in-memory DB."""
    return sqlite3.connect(":memory:" if path is None else str(path))


def save_table(table: Table, conn: sqlite3.Connection, if_exists: str = "replace") -> None:
    """Write a table into SQLite under its own name.

    ``if_exists`` is ``"replace"`` (drop and recreate) or ``"fail"``.
    """
    if if_exists not in ("replace", "fail"):
        raise ValueError("if_exists must be 'replace' or 'fail'")
    sql_name = _quote(table.name)
    cursor = conn.cursor()
    existing = cursor.execute(
        "SELECT name FROM sqlite_master WHERE type='table' AND name=?", (table.name,)
    ).fetchone()
    if existing:
        if if_exists == "fail":
            raise ValueError(f"table {table.name!r} already exists in the SQLite database")
        cursor.execute(f"DROP TABLE {sql_name}")
    column_defs = []
    sql_columns = []
    for c in table.column_names:
        kind = "REAL" if table.is_numeric(c) else "TEXT"
        sql_col = _sql_column_name(c)
        sql_columns.append(sql_col)
        column_defs.append(f"{_quote(sql_col)} {kind}")
    cursor.execute(f"CREATE TABLE {sql_name} ({', '.join(column_defs)})")
    placeholders = ", ".join("?" for _ in sql_columns)
    arrays = [table.column(c) for c in table.column_names]
    rows = []
    for i in range(len(table)):
        row = []
        for array in arrays:
            value = array[i]
            if isinstance(value, float) and np.isnan(value):
                row.append(None)
            elif isinstance(value, (np.floating, np.integer)):
                row.append(float(value))
            else:
                row.append(value)
        rows.append(tuple(row))
    cursor.executemany(f"INSERT INTO {sql_name} VALUES ({placeholders})", rows)
    conn.commit()


def load_table(conn: sqlite3.Connection, table_name: str) -> Table:
    """Read a whole SQLite table back into a :class:`Table`."""
    return query_to_table(conn, f"SELECT * FROM {_quote(table_name)}", table_name=table_name)


def query_to_table(conn: sqlite3.Connection, sql: str, table_name: str = "result",
                   parameters: Iterable = ()) -> Table:
    """Run arbitrary SQL and convert the result set into a :class:`Table`."""
    cursor = conn.execute(sql, tuple(parameters))
    names = [d[0] for d in cursor.description]
    rows = cursor.fetchall()
    columns: dict[str, list] = {name: [] for name in names}
    for row in rows:
        for name, value in zip(names, row):
            columns[name].append(np.nan if value is None else value)
    return Table(table_name, columns)


def save_database(database: Database, path: str | Path) -> None:
    """Persist every table of a database into one SQLite file."""
    conn = connect(path)
    try:
        for table in database:
            save_table(table, conn)
    finally:
        conn.close()


def load_database(path: str | Path, name: str | None = None) -> Database:
    """Load every table from a SQLite file into a fresh database.

    Declared connections are not stored in SQLite; callers re-register them
    after loading (they are part of the schema design, not the data).
    """
    path = Path(path)
    conn = connect(path)
    try:
        names = [
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table' ORDER BY name"
            )
        ]
        database = Database(name or path.stem)
        for table_name in names:
            database.add_table(load_table(conn, table_name))
        return database
    finally:
        conn.close()
