"""Cross products for approximate joins.

For multi-table queries the paper considers "all data items of the cross
product that approximately fulfill the join condition".  Materialising a
full cross product is quadratic, so :class:`CrossProduct` exposes it lazily
as pairs of row indices and offers deterministic sampling for the cases
where the user only needs a displayable subset (the paper itself notes that
with cross products "the percentage that can be displayed is
correspondingly lower").
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Iterator

import numpy as np

from repro.storage.table import Table

__all__ = ["CrossProduct", "sampled_pair_indices"]


def sampled_pair_indices(n_left: int, n_right: int, max_pairs: int | None,
                         seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Return (left, right) index arrays enumerating or sampling the cross product.

    If the full cross product has at most ``max_pairs`` pairs (or
    ``max_pairs`` is None) it is enumerated exhaustively; otherwise
    ``max_pairs`` pairs are drawn without replacement using a deterministic
    generator so repeated runs visualise the same subset.
    """
    if n_left < 0 or n_right < 0:
        raise ValueError("table sizes must be non-negative")
    total = n_left * n_right
    if total == 0:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
    if max_pairs is None or total <= max_pairs:
        left = np.repeat(np.arange(n_left, dtype=np.intp), n_right)
        right = np.tile(np.arange(n_right, dtype=np.intp), n_left)
        return left, right
    rng = np.random.default_rng(seed)
    flat = rng.choice(total, size=max_pairs, replace=False)
    flat.sort()
    return (flat // n_right).astype(np.intp), (flat % n_right).astype(np.intp)


class CrossProduct:
    """Lazy cross product of two tables used as the basis for approximate joins.

    Parameters
    ----------
    left, right:
        The joined tables.
    max_pairs:
        Cap on the number of pairs that are materialised (deterministically
        sampled if the full product is larger).  ``None`` means no cap.
    seed:
        Seed for the deterministic sampling.
    """

    def __init__(self, left: Table, right: Table, max_pairs: int | None = 1_000_000,
                 seed: int = 0):
        self.left = left
        self.right = right
        self.max_pairs = max_pairs
        self.seed = seed
        self._left_idx, self._right_idx = sampled_pair_indices(
            len(left), len(right), max_pairs, seed=seed
        )

    def __len__(self) -> int:
        return len(self._left_idx)

    @property
    def total_pairs(self) -> int:
        """Size of the full (unsampled) cross product."""
        return len(self.left) * len(self.right)

    @property
    def is_sampled(self) -> bool:
        """True if the materialised pairs are a sample of the full product."""
        return len(self) < self.total_pairs

    @property
    def left_indices(self) -> np.ndarray:
        """Row indices into the left table, one per pair."""
        return self._left_idx

    @property
    def right_indices(self) -> np.ndarray:
        """Row indices into the right table, one per pair."""
        return self._right_idx

    def column_left(self, name: str) -> np.ndarray:
        """Left table column values aligned with the pair enumeration."""
        return self.left.column(name)[self._left_idx]

    def column_right(self, name: str) -> np.ndarray:
        """Right table column values aligned with the pair enumeration."""
        return self.right.column(name)[self._right_idx]

    def to_table(self, name: str | None = None,
                 executor: Executor | None = None) -> Table:
        """Materialise the (sampled) cross product as a prefixed table.

        Columns are named ``<left>.<col>`` and ``<right>.<col>``.  If both
        input tables share their name, suffixes ``#1``/``#2`` disambiguate.

        ``executor`` (optional) gathers the columns concurrently -- each
        column is one independent fancy-index copy, which for a 250k-row
        join over a dozen columns is the dominant cost of table assembly.
        The produced arrays are identical either way.
        """
        left_prefix = self.left.name
        right_prefix = self.right.name
        if left_prefix == right_prefix:
            left_prefix += "#1"
            right_prefix += "#2"
        gathers: list[tuple[str, Table, str, np.ndarray]] = [
            (f"{left_prefix}.{c}", self.left, c, self._left_idx)
            for c in self.left.column_names
        ] + [
            (f"{right_prefix}.{c}", self.right, c, self._right_idx)
            for c in self.right.column_names
        ]

        def gather(spec: tuple[str, Table, str, np.ndarray]) -> np.ndarray:
            _, source, column, indices = spec
            return source.column(column)[indices]

        if executor is not None and len(gathers) > 1:
            arrays = list(executor.map(gather, gathers))
        else:
            arrays = [gather(spec) for spec in gathers]
        columns = {spec[0]: array for spec, array in zip(gathers, arrays)}
        # The gathered arrays are freshly allocated fancy-index copies that
        # already satisfy the storage contract (float64/object, equal
        # lengths, contiguous), so adopt them instead of paying Table's
        # defensive re-copy -- for a 250k x 12 join that second pass is pure
        # overhead.  Adoption also fixes the buffers an execution backend
        # publishes under the table's export id.
        table = Table.adopt_columns(
            name or f"{self.left.name}x{self.right.name}", columns)
        table.export_id  # stamp the publication identity at materialisation
        return table

    def iter_pairs(self, chunk_size: int = 65536) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (left_indices, right_indices) chunks of at most ``chunk_size`` pairs."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        for start in range(0, len(self), chunk_size):
            stop = start + chunk_size
            yield self._left_idx[start:stop], self._right_idx[start:stop]
