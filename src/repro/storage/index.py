"""Indexes supporting range queries over one or several attributes.

The paper's conclusions note that "multidimensional data structures that
support range queries on multiple attributes will be essential to improve
query performance".  Two index types are provided:

* :class:`SortedIndex` -- a sorted-column index answering one-attribute
  range queries in O(log n + k).
* :class:`GridIndex` -- a simple grid file over several numeric attributes
  answering conjunctive range queries by scanning only candidate cells.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.storage.table import Table

__all__ = ["SortedIndex", "GridIndex"]


class SortedIndex:
    """Sorted index on one numeric column of a table.

    Parameters
    ----------
    table:
        The indexed table.  May be a shard view of a larger table (see
        :meth:`~repro.storage.table.Table.slice_rows`); returned row
        indices are then shard-local and the caller owns the offset to
        global row numbers.
    column_name:
        Name of a numeric column.
    """

    def __init__(self, table: Table, column_name: str):
        if not table.is_numeric(column_name):
            raise TypeError(f"column {column_name!r} is not numeric; cannot build a sorted index")
        self.table = table
        self.column_name = column_name
        values = table.column(column_name)
        self._order = np.argsort(values, kind="stable")
        self._sorted_values = values[self._order]

    def __len__(self) -> int:
        return len(self._sorted_values)

    def range_query(self, low: float | None, high: float | None,
                    sort: bool = True) -> np.ndarray:
        """Return row indices with ``low <= value <= high`` (either bound optional).

        ``sort=False`` skips the final ordering of the row indices (they come
        out in value order instead); callers that only scatter into a result
        array -- like the engine's incremental range-leaf update -- avoid an
        O(k log k) sort that way.
        """
        lo_pos = 0 if low is None else int(np.searchsorted(self._sorted_values, low, side="left"))
        hi_pos = (
            len(self._sorted_values)
            if high is None
            else int(np.searchsorted(self._sorted_values, high, side="right"))
        )
        rows = self._order[lo_pos:hi_pos]
        return np.sort(rows) if sort else rows

    def nearest(self, value: float, k: int = 1) -> np.ndarray:
        """Return the row indices of the ``k`` values closest to ``value``.

        Useful for approximate point queries ("the data item most closely
        fulfilling the condition").
        """
        if k <= 0:
            raise ValueError("k must be positive")
        distances = np.abs(self._sorted_values - value)
        best = np.argsort(distances, kind="stable")[:k]
        return self._order[best]

    def minimum(self) -> float:
        """Smallest indexed value."""
        if len(self._sorted_values) == 0:
            raise ValueError("index is empty")
        return float(self._sorted_values[0])

    def maximum(self) -> float:
        """Largest indexed value."""
        if len(self._sorted_values) == 0:
            raise ValueError("index is empty")
        return float(self._sorted_values[-1])


class GridIndex:
    """A grid (multidimensional histogram) index over numeric attributes.

    Each indexed attribute's domain is split into ``bins_per_dimension``
    equi-width cells; every row is assigned to one grid cell.  A conjunctive
    range query touches only the cells that overlap the query box, so for
    selective queries far fewer rows are inspected than a full scan.
    """

    def __init__(self, table: Table, column_names: Sequence[str], bins_per_dimension: int = 16):
        if bins_per_dimension < 1:
            raise ValueError("bins_per_dimension must be at least 1")
        if not column_names:
            raise ValueError("GridIndex needs at least one column")
        for c in column_names:
            if not table.is_numeric(c):
                raise TypeError(f"column {c!r} is not numeric; cannot build a grid index")
        self.table = table
        self.column_names = list(column_names)
        self.bins = bins_per_dimension
        self._mins = np.array([table.stats(c).minimum for c in column_names], dtype=float)
        self._maxs = np.array([table.stats(c).maximum for c in column_names], dtype=float)
        widths = np.where(self._maxs > self._mins, self._maxs - self._mins, 1.0)
        self._widths = widths
        # Cell id per row: row-major over the per-dimension bin numbers.
        cell_ids = np.zeros(len(table), dtype=np.int64)
        for c in column_names:
            cell_ids *= bins_per_dimension
            cell_ids += self._bin_numbers(table.column(c), c)
        order = np.argsort(cell_ids, kind="stable")
        self._sorted_rows = order
        self._sorted_cells = cell_ids[order]

    def _bin_numbers(self, values: np.ndarray, column_name: str) -> np.ndarray:
        dim = self.column_names.index(column_name)
        scaled = (values - self._mins[dim]) / self._widths[dim]
        return np.clip((scaled * self.bins).astype(np.int64), 0, self.bins - 1)

    def _bin_range(self, column_name: str, low: float | None, high: float | None) -> tuple[int, int]:
        dim = self.column_names.index(column_name)
        lo_val = self._mins[dim] if low is None else low
        hi_val = self._maxs[dim] if high is None else high
        lo_bin = int(np.clip(np.floor((lo_val - self._mins[dim]) / self._widths[dim] * self.bins),
                             0, self.bins - 1))
        hi_bin = int(np.clip(np.floor((hi_val - self._mins[dim]) / self._widths[dim] * self.bins),
                             0, self.bins - 1))
        return lo_bin, hi_bin

    def candidate_rows(self, ranges: Mapping[str, tuple[float | None, float | None]]) -> np.ndarray:
        """Return row indices in grid cells overlapping the query box.

        ``ranges`` maps column name to an (inclusive) ``(low, high)`` pair;
        columns not mentioned are unconstrained.  The result is a superset
        of the exact answer (cell granularity), so callers re-check the
        predicate on the candidates.
        """
        per_dim_bins: list[np.ndarray] = []
        for c in self.column_names:
            low, high = ranges.get(c, (None, None))
            lo_bin, hi_bin = self._bin_range(c, low, high)
            per_dim_bins.append(np.arange(lo_bin, hi_bin + 1, dtype=np.int64))
        # Build all touched cell ids via a meshgrid over per-dimension bins.
        mesh = np.meshgrid(*per_dim_bins, indexing="ij")
        cells = np.zeros_like(mesh[0], dtype=np.int64)
        for m in mesh:
            cells = cells * self.bins + m
        wanted = np.unique(cells.ravel())
        # Locate each wanted cell in the sorted cell array.
        starts = np.searchsorted(self._sorted_cells, wanted, side="left")
        ends = np.searchsorted(self._sorted_cells, wanted, side="right")
        pieces = [self._sorted_rows[s:e] for s, e in zip(starts, ends) if e > s]
        if not pieces:
            return np.empty(0, dtype=np.intp)
        return np.sort(np.concatenate(pieces))

    def range_query(self, ranges: Mapping[str, tuple[float | None, float | None]]) -> np.ndarray:
        """Exact conjunctive range query: candidates filtered by the actual bounds."""
        candidates = self.candidate_rows(ranges)
        if len(candidates) == 0:
            return candidates
        keep = np.ones(len(candidates), dtype=bool)
        for c, (low, high) in ranges.items():
            values = self.table.column(c)[candidates]
            if low is not None:
                keep &= values >= low
            if high is not None:
                keep &= values <= high
        return candidates[keep]

    def selectivity(self, ranges: Mapping[str, tuple[float | None, float | None]]) -> float:
        """Fraction of rows matched by the range query (0 if the table is empty)."""
        if len(self.table) == 0:
            return 0.0
        return len(self.range_query(ranges)) / len(self.table)
