"""Sharded plan execution: row-range partitions with mergeable aggregates.

The paper's interaction loop demands that every slider drag redraws the
relevance visualization at human speed.  :mod:`repro.core.plan` removed the
redundant recomputation between two executions of an interactively modified
query; what remains is the O(n) floor of renormalize/recombine/select over
one monolithic evaluation table.  This module splits that floor across
row-range shards:

* :class:`ShardedTable` partitions an evaluation table into contiguous
  row ranges (zero-copy NumPy views), each with its own
  :class:`~repro.storage.cache.PrefetchCache` and, for hot slider
  attributes, its own :class:`~repro.storage.index.SortedIndex`;
* :class:`ShardedPlanEvaluator` dispatches per-shard leaf distance
  evaluation, normalization and combination through a thread pool (NumPy
  releases the GIL on the hot kernels);
* the global steps that used to need a full-table pass are answered by
  **mergeable partial aggregates**: per-shard ``(d_min, d_max)`` partials
  for the reduced normalization (:class:`DistanceBoundsPartial`) and
  per-shard top-k candidate sets for the displayed-set selection
  (:class:`~repro.core.reduction.TopKCandidates`).

The binding contract -- enforced by ``tests/test_differential.py`` -- is
that sharded execution is **bit-identical** to the cold single-shard run
for every shard count.  The merge algebra guarantees it: ``d_min``/``d_max``
resolve to exact array elements (so the elementwise normalization transform
sees the same scalars), candidate merges are associative and
order-independent, and tie-breaking at the capacity boundary happens once,
by ascending global row index, exactly as a stable argsort would order it.
Any future backend (process pool, async, remote) must preserve these same
invariants.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import reduce
from typing import Callable, TypeVar, Union

import numpy as np

from repro.core.combine import CombinationRule, combine_columns
from repro.core.normalization import (
    NORMALIZED_MAX,
    apply_normalization,
    normalization_keep_count,
    reduced_bounds,
)
from repro.core.plan import EvaluationCache, PlanEvaluator, _LeafRaw
from repro.core.reduction import (
    ReductionMethod,
    display_fraction,
    merge_topk_candidates,
    resolve_topk,
    select_display_set,
    topk_candidates,
)
from repro.query.expr import PredicateLeaf, SubqueryNode
from repro.query.predicates import RangePredicate
from repro.storage.cache import PrefetchCache
from repro.storage.index import SortedIndex
from repro.storage.table import Table

__all__ = [
    "shard_bounds",
    "resolve_worker_count",
    "shared_executor",
    "shutdown_executors",
    "pool_user",
    "DistanceBoundsPartial",
    "distance_bounds_partial",
    "empty_distance_bounds",
    "merge_distance_bounds",
    "resolve_distance_bounds",
    "ShardedTable",
    "ShardedPlanEvaluator",
    "sharded_select_display_set",
]

T = TypeVar("T")


# --------------------------------------------------------------------------- #
# Partitioning
# --------------------------------------------------------------------------- #
def shard_bounds(n_rows: int, shard_count: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[start, stop)`` row ranges covering the table.

    Shard sizes differ by at most one row; when ``shard_count`` exceeds
    ``n_rows`` the trailing shards are empty (the merge algebra treats an
    empty shard as the identity element, so results are unaffected).
    """
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    if n_rows < 0:
        raise ValueError("n_rows must be non-negative")
    base, extra = divmod(n_rows, shard_count)
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(shard_count):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _map_indexed(executor: Executor | None, fn: Callable[[int], T], count: int) -> list[T]:
    """Run ``fn(0..count-1)``, through the executor when one is available."""
    if executor is None or count <= 1:
        return [fn(i) for i in range(count)]
    return list(executor.map(fn, range(count)))


# --------------------------------------------------------------------------- #
# Worker pools
# --------------------------------------------------------------------------- #
def resolve_worker_count(max_workers: int | None, shard_count: int) -> int:
    """Thread-pool size for a sharded execution.

    Defaults to the machine's CPU count; never more workers than shards
    (the unit of parallel work is one shard).  A result of 1 means "run
    inline" -- no pool is created, so single-core machines pay no thread
    overhead for sharded semantics.
    """
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    return max(1, min(max_workers, shard_count))


_EXECUTORS: dict[int, ThreadPoolExecutor] = {}
_EXECUTORS_LOCK = threading.Lock()
#: Pool generation: bumped by shutdown_executors after it empties the
#: registry.  Users are counted per generation so a shutdown waits only for
#: executions that could hold a handle to the pools being retired --
#: traffic on freshly created pools never delays it.
_GENERATION = 0
_ACTIVE_BY_GENERATION: dict[int, int] = {}
_POOL_CONDITION = threading.Condition(_EXECUTORS_LOCK)


def shared_executor(max_workers: int) -> Executor | None:
    """A process-wide thread pool of the given size (None for ``<= 1``).

    Pools are shared across engines and kept for the life of the process:
    shard work is bursty (one burst per execute), so pooling avoids both
    per-execute thread spawning and unbounded thread accumulation when many
    engines are created (e.g. one per test).
    """
    if max_workers <= 1:
        return None
    with _EXECUTORS_LOCK:
        pool = _EXECUTORS.get(max_workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-shard"
            )
            _EXECUTORS[max_workers] = pool
        return pool


class pool_user:
    """Context marking one execution as a live user of the shared pools.

    :meth:`PreparedQuery.execute` holds this across its shard waves so that
    :func:`shutdown_executors` (another engine closing) waits for the whole
    execution instead of yanking the pool between two waves.
    """

    def __enter__(self) -> "pool_user":
        with _POOL_CONDITION:
            self._generation = _GENERATION
            _ACTIVE_BY_GENERATION[self._generation] = (
                _ACTIVE_BY_GENERATION.get(self._generation, 0) + 1
            )
        return self

    def __exit__(self, *exc_info) -> None:
        with _POOL_CONDITION:
            remaining = _ACTIVE_BY_GENERATION[self._generation] - 1
            if remaining:
                _ACTIVE_BY_GENERATION[self._generation] = remaining
            else:
                del _ACTIVE_BY_GENERATION[self._generation]
            _POOL_CONDITION.notify_all()


def shutdown_executors(drain_timeout: float = 60.0) -> None:
    """Shut down every process-shared shard pool (idempotent).

    Embedding services call this (via :meth:`QueryEngine.close`) to release
    worker threads deterministically instead of leaking them until process
    exit.  The registry is emptied first, so an engine that executes
    *afterwards* transparently gets a fresh pool; executions already in
    flight (registered through :class:`pool_user`) are drained before
    their pool joins -- closing one engine never breaks another.  Only
    users of the *retiring* generation are waited for: steady traffic that
    starts after the registry is emptied runs on fresh pools and cannot
    stall the drain.
    """
    global _GENERATION
    with _POOL_CONDITION:
        pools = list(_EXECUTORS.values())
        _EXECUTORS.clear()
        retiring = _GENERATION
        _GENERATION += 1
        # Wait for in-flight executions holding a handle to the old pools;
        # the timeout bounds teardown should a user leak (it cannot via
        # pool_user, which releases in __exit__).
        _POOL_CONDITION.wait_for(
            lambda: all(g > retiring for g in _ACTIVE_BY_GENERATION),
            timeout=drain_timeout,
        )
    for pool in pools:
        pool.shutdown(wait=True)


# --------------------------------------------------------------------------- #
# Merge algebra: normalization bounds
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DistanceBoundsPartial:
    """Mergeable summary of one shard's finite distances.

    Retains the ``min(capacity, count)`` smallest finite values (as a
    multiset, order irrelevant), the finite maximum and the finite count --
    enough to resolve, after merging all shards, the exact global ``d_min``
    and the exact global ``keep``-th smallest value ``d_max`` that
    :func:`~repro.core.normalization.reduced_normalization` computes, for
    any ``keep <= capacity``.

    The merge is associative and commutative: the smallest-``k`` multiset of
    a union equals the smallest-``k`` of the two sides' smallest-``k``
    multisets, maxima and counts merge trivially, and the empty partial
    (an all-NaN or zero-row shard) is the identity element.
    """

    capacity: int
    count: int
    smallest: np.ndarray
    maximum: float

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if len(self.smallest) != min(self.capacity, self.count):
            raise ValueError("partial must retain min(capacity, count) values")


def empty_distance_bounds(capacity: int) -> DistanceBoundsPartial:
    """The merge identity: a shard with no finite values."""
    return DistanceBoundsPartial(
        capacity=capacity, count=0,
        smallest=np.empty(0, dtype=float), maximum=float("-inf"),
    )


def distance_bounds_partial(values: np.ndarray, capacity: int) -> DistanceBoundsPartial:
    """Summarise one shard of a distance column (NaN/inf values are skipped)."""
    values = np.asarray(values, dtype=float)
    finite = values[np.isfinite(values)] if len(values) else values
    if len(finite) > capacity:
        smallest = np.partition(finite, capacity - 1)[:capacity]
    else:
        smallest = finite.copy()
    maximum = float(finite.max()) if len(finite) else float("-inf")
    return DistanceBoundsPartial(
        capacity=capacity, count=len(finite), smallest=smallest, maximum=maximum
    )


def merge_distance_bounds(a: DistanceBoundsPartial,
                          b: DistanceBoundsPartial) -> DistanceBoundsPartial:
    """Merge two partials of the same capacity (associative, commutative)."""
    if a.capacity != b.capacity:
        raise ValueError(f"cannot merge partials with capacities {a.capacity} != {b.capacity}")
    smallest = np.concatenate([a.smallest, b.smallest])
    if len(smallest) > a.capacity:
        smallest = np.partition(smallest, a.capacity - 1)[: a.capacity]
    return DistanceBoundsPartial(
        capacity=a.capacity,
        count=a.count + b.count,
        smallest=smallest,
        maximum=max(a.maximum, b.maximum),
    )


def resolve_distance_bounds(partial: DistanceBoundsPartial,
                            keep: int | None = None) -> tuple[float, float] | None:
    """The global ``(d_min, d_max)`` of the merged column, or None if no finite value.

    ``keep`` defaults to the partial's capacity and must not exceed it.
    Both bounds are exact elements of the original column, so they equal --
    bit for bit -- what the monolithic
    :func:`~repro.core.normalization.reduced_normalization` derives.
    """
    keep = partial.capacity if keep is None else keep
    if not 1 <= keep <= partial.capacity:
        raise ValueError(f"keep must be in [1, {partial.capacity}], got {keep}")
    if partial.count == 0:
        return None
    if keep >= partial.count:
        d_max = partial.maximum
    else:
        d_max = float(np.partition(partial.smallest, keep - 1)[keep - 1])
    return float(partial.smallest.min()), d_max


# --------------------------------------------------------------------------- #
# Sharded table
# --------------------------------------------------------------------------- #
class ShardedTable:
    """Row-range partitioning of one evaluation table.

    Each shard is a zero-copy view (:meth:`~repro.storage.table.Table.slice_rows`)
    with its own :class:`~repro.storage.cache.PrefetchCache`; hot slider
    attributes additionally get one shard-local
    :class:`~repro.storage.index.SortedIndex` per shard, shared between
    the prefetch cache (index-accelerated fulfilment fetches) and the
    incremental range-delta path (which adds the shard's start row to map
    local hits to global row numbers).
    """

    def __init__(self, table: Table, shard_count: int):
        self.table = table
        self.bounds = shard_bounds(len(table), shard_count)
        self.shards = [table.slice_rows(start, stop) for start, stop in self.bounds]
        self.prefetch = [PrefetchCache(shard, indexes={}) for shard in self.shards]
        self._index_lock = threading.Lock()

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return len(self.table)

    def ensure_index(self, attribute: str) -> None:
        """Build (once) per-shard sorted indexes for a hot slider attribute.

        Safe against concurrent builders *and* concurrent readers that hold
        no lock: the indexes are built fully first and shard 0 -- the shard
        :meth:`has_index` probes -- is published last, so a reader that
        observes the attribute as indexed finds every shard's index in
        place.
        """
        if self.has_index(attribute):
            return
        if not (self.table.has_column(attribute) and self.table.is_numeric(attribute)):
            return
        with self._index_lock:
            if self.has_index(attribute):
                return
            built = [SortedIndex(shard, attribute) for shard in self.shards]
            for shard_no in reversed(range(len(built))):
                self.prefetch[shard_no].indexes[attribute] = built[shard_no]

    def has_index(self, attribute: str) -> bool:
        """True once :meth:`ensure_index` built the per-shard indexes."""
        return bool(self.prefetch) and attribute in self.prefetch[0].indexes

    def shard_indexes(self, attribute: str) -> list[SortedIndex] | None:
        """The per-shard (shard-local) indexes for one attribute, if built."""
        if not self.has_index(attribute):
            return None
        return [prefetch.indexes[attribute] for prefetch in self.prefetch]


# --------------------------------------------------------------------------- #
# Sharded plan evaluation
# --------------------------------------------------------------------------- #
class ShardedPlanEvaluator(PlanEvaluator):
    """A :class:`~repro.core.plan.PlanEvaluator` that executes shard by shard.

    Produces full-table node columns (concatenated from per-shard pieces)
    that are bit-identical to the monolithic evaluator's, so the two share
    one :class:`~repro.core.plan.EvaluationCache` without any key changes:
    an incremental re-execution may mix cached monolithic results with
    freshly sharded ones and still return exactly the cold-run feedback.

    ``executor`` is an optional :class:`concurrent.futures.Executor`; when
    None (or with a single shard) the per-shard work runs inline.
    """

    def __init__(self, sharded: ShardedTable, display_capacity: int,
                 target_max: float = NORMALIZED_MAX,
                 cache: EvaluationCache | None = None,
                 executor: Executor | None = None):
        super().__init__(sharded.table, display_capacity, target_max=target_max,
                         cache=cache, prefetch=None)
        self.sharded = sharded
        self.executor = executor

    # ------------------------------------------------------------------ #
    def _map_shards(self, fn: Callable[[int], T]) -> list[T]:
        return _map_indexed(self.executor, fn, self.sharded.shard_count)

    # ------------------------------------------------------------------ #
    # Leaf columns
    # ------------------------------------------------------------------ #
    def _compute_leaf_raw(self, node: Union[PredicateLeaf, SubqueryNode]) -> _LeafRaw:
        if isinstance(node, SubqueryNode):
            # Subquery distances come from an arbitrary callable that may
            # depend on whole-table state; only row-local predicates are
            # safe to evaluate per shard.
            return super()._compute_leaf_raw(node)
        predicate = node.predicate
        if isinstance(predicate, RangePredicate):
            return self._range_leaf_raw(predicate)

        def one(i: int) -> np.ndarray:
            return np.asarray(predicate.signed_distances(self.sharded.shards[i]),
                              dtype=float)

        signed = np.concatenate(self._map_shards(one))
        return _LeafRaw(
            signed=signed,
            raw=np.abs(signed),
            exact_mask=self._exact_mask(predicate),
            supports_direction=predicate.supports_direction,
        )

    def _range_leaf_raw(self, predicate: RangePredicate) -> _LeafRaw:
        """Per-shard version of the incremental range-leaf update.

        A slider event touches only the shards whose rows intersect the
        swept band: each shard's sorted index finds its changed rows in
        O(log s + k); shards outside the band contribute empty change sets
        and do no work.  The recomputation formula is identical to
        :meth:`RangePredicate.signed_distances`, so the result matches a
        full recomputation bit for bit.
        """
        attribute = predicate.attribute
        indexes = self.sharded.shard_indexes(attribute)
        history = self.cache.range_history(attribute) if indexes else None
        changed_parts: list[np.ndarray] = []
        if history is not None:
            old_low, old_high = history[0], history[1]
            starts = [start for start, _ in self.sharded.bounds]

            def changed_for(i: int) -> np.ndarray:
                pieces = []
                if predicate.low != old_low:
                    pieces.append(indexes[i].range_query(
                        None, max(old_low, predicate.low), sort=False))
                if predicate.high != old_high:
                    pieces.append(indexes[i].range_query(
                        min(old_high, predicate.high), None, sort=False))
                if not pieces:
                    return np.empty(0, dtype=np.intp)
                # Shard-local hits -> global row numbers.
                return np.concatenate(pieces) + starts[i]

            changed_parts = self._map_shards(changed_for)
            # Same trade-off as the monolithic path: past a third of the
            # table the full vectorised recomputation wins.
            if sum(len(c) for c in changed_parts) > len(self.table) // 3:
                history = None
        if history is not None:
            old = history[2]
            signed = old.signed.copy()
            raw = old.raw.copy()
            column = self.table.column(attribute)

            def update(i: int) -> None:
                changed = changed_parts[i]
                if not len(changed):
                    return
                values = np.asarray(column, dtype=float)[changed]
                below = np.where(values < predicate.low, values - predicate.low, 0.0)
                above = np.where(values > predicate.high, values - predicate.high, 0.0)
                delta = below + above
                delta = np.where(np.isnan(values), np.nan, delta)
                signed[changed] = delta
                raw[changed] = np.abs(delta)

            # Shards write disjoint global row sets; safe to run in parallel.
            self._map_shards(update)
            result = _LeafRaw(
                signed=signed,
                raw=raw,
                exact_mask=self._exact_mask(predicate),
                supports_direction=True,
            )
        else:
            def one(i: int) -> np.ndarray:
                return np.asarray(predicate.signed_distances(self.sharded.shards[i]),
                                  dtype=float)

            signed = np.concatenate(self._map_shards(one))
            result = _LeafRaw(
                signed=signed,
                raw=np.abs(signed),
                exact_mask=self._exact_mask(predicate),
                supports_direction=predicate.supports_direction,
            )
        self.cache.set_range_history(attribute, predicate.low, predicate.high, result)
        return result

    def _exact_mask(self, predicate) -> np.ndarray:
        """Per-shard fulfilment masks, concatenated to the global mask.

        Range predicates on numeric columns go through the per-shard
        prefetch caches (widened regions answer a narrowing slider drag
        without rescanning); everything else evaluates the predicate on the
        shard view directly.  Masks are exact either way, so the global
        concatenation equals the monolithic mask.
        """
        if (
            isinstance(predicate, RangePredicate)
            and self.table.has_column(predicate.attribute)
            and self.table.is_numeric(predicate.attribute)
        ):
            ranges = {predicate.attribute: (predicate.low, predicate.high)}

            def one(i: int) -> np.ndarray:
                return self.sharded.prefetch[i].fulfilment_mask(ranges)
        else:
            def one(i: int) -> np.ndarray:
                return np.asarray(predicate.exact_mask(self.sharded.shards[i]), dtype=bool)

        return np.concatenate(self._map_shards(one))

    # ------------------------------------------------------------------ #
    # Normalization / combination
    # ------------------------------------------------------------------ #
    def _normalize(self, values: np.ndarray, weight: float) -> np.ndarray:
        n = len(values)
        keep = normalization_keep_count(weight, self.display_capacity, n)
        if n == 0:
            return np.asarray(values, dtype=float).copy()
        bounds = self.sharded.bounds
        if keep * self.sharded.shard_count <= n // 2:
            # Selective keep: per-shard partials are small, so the serial
            # merge is sublinear and the O(shard) partition work fans out.
            partials = self._map_shards(
                lambda i: distance_bounds_partial(values[bounds[i][0]:bounds[i][1]], keep)
            )
            resolved = resolve_distance_bounds(reduce(merge_distance_bounds, partials))
        else:
            # keep is a large fraction of the table: the partials would
            # retain nearly every value and the merge would re-partition
            # almost the whole column, doubling the selection work.  One
            # direct pass resolves the same exact array elements; the
            # elementwise transform below stays shard-parallel either way.
            resolved = reduced_bounds(values, keep)
        d_min, d_max = resolved if resolved is not None else (None, None)
        out = np.empty(n, dtype=float)

        def apply(i: int) -> None:
            start, stop = bounds[i]
            out[start:stop] = apply_normalization(
                values[start:stop], d_min, d_max, target_max=self.target_max
            )

        self._map_shards(apply)
        return out

    def _combine(self, rule: CombinationRule, columns: list[np.ndarray],
                 weights: np.ndarray) -> np.ndarray:
        n = len(self.table)
        out = np.empty(n, dtype=float)
        bounds = self.sharded.bounds

        def one(i: int) -> None:
            start, stop = bounds[i]
            out[start:stop] = combine_columns(
                rule, [c[start:stop] for c in columns], weights
            )

        self._map_shards(one)
        return out


# --------------------------------------------------------------------------- #
# Sharded displayed-set selection
# --------------------------------------------------------------------------- #
def sharded_select_display_set(distances: np.ndarray, sharded: ShardedTable,
                               capacity: int, n_selection_predicates: int,
                               method: ReductionMethod = ReductionMethod.QUANTILE,
                               percentage: float | None = None,
                               multipeak_z: int | None = None,
                               executor: Executor | None = None) -> np.ndarray:
    """Shard-parallel :func:`~repro.core.reduction.select_display_set`.

    * the percentage path merges per-shard
      :class:`~repro.core.reduction.TopKCandidates` partials;
    * the quantile path concatenates per-shard finite values (preserving
      row order, hence the exact quantile input) and applies the resulting
      threshold shard by shard;
    * the multi-peak heuristic needs the globally sorted distance prefix,
      so it falls back to the monolithic implementation.

    Results are bit-identical to the monolithic selection in every case.
    """
    distances = np.asarray(distances, dtype=float)
    n = len(distances)
    bounds = sharded.bounds
    if n == 0 or n != len(sharded.table):
        return select_display_set(
            distances, capacity=capacity,
            n_selection_predicates=n_selection_predicates, method=method,
            percentage=percentage, multipeak_z=multipeak_z,
        )
    if method is ReductionMethod.PERCENTAGE or percentage is not None:
        if percentage is None:
            raise ValueError("percentage reduction requires a percentage value")
        if not 0.0 < percentage <= 1.0:
            raise ValueError(f"percentage must be in (0, 1], got {percentage}")
        target = max(1, int(round(percentage * n)))
        if target >= n:
            return np.arange(n, dtype=np.intp)
        if target * len(bounds) > n // 2:
            # The per-shard candidate sets would together approach the full
            # column, so the merge would redo a full-size selection; the
            # monolithic partition is cheaper and bit-identical.
            return select_display_set(
                distances, capacity=capacity,
                n_selection_predicates=n_selection_predicates,
                method=ReductionMethod.PERCENTAGE, percentage=percentage,
                multipeak_z=multipeak_z,
            )
        partials = _map_indexed(
            executor,
            lambda i: topk_candidates(distances[bounds[i][0]:bounds[i][1]],
                                      target, offset=bounds[i][0]),
            len(bounds),
        )
        return resolve_topk(reduce(merge_topk_candidates, partials))
    if method is ReductionMethod.QUANTILE:
        p = display_fraction(capacity, n, n_selection_predicates)
        finite_parts = _map_indexed(
            executor,
            lambda i: distances[bounds[i][0]:bounds[i][1]][
                np.isfinite(distances[bounds[i][0]:bounds[i][1]])
            ],
            len(bounds),
        )
        finite = np.concatenate(finite_parts)
        if len(finite) == 0:
            return np.empty(0, dtype=np.intp)
        threshold = float(np.quantile(finite, p))

        def select(i: int) -> np.ndarray:
            start, stop = bounds[i]
            part = distances[start:stop]
            mask = np.isfinite(part) & (part <= threshold)
            return np.nonzero(mask)[0] + start

        return np.concatenate(_map_indexed(executor, select, len(bounds)))
    return select_display_set(
        distances, capacity=capacity,
        n_selection_predicates=n_selection_predicates, method=method,
        percentage=percentage, multipeak_z=multipeak_z,
    )
