"""Sharded plan execution: row-range partitions with mergeable aggregates.

The paper's interaction loop demands that every slider drag redraws the
relevance visualization at human speed.  :mod:`repro.core.plan` removed the
redundant recomputation between two executions of an interactively modified
query; what remains is the O(n) floor of renormalize/recombine/select over
one monolithic evaluation table.  This module splits that floor across
row-range shards:

* :class:`ShardedTable` partitions an evaluation table into contiguous
  row ranges (zero-copy NumPy views), each with its own
  :class:`~repro.storage.cache.PrefetchCache` and, for hot slider
  attributes, its own :class:`~repro.storage.index.SortedIndex`;
* :class:`ShardedPlanEvaluator` dispatches per-shard leaf distance
  evaluation, normalization and combination through a thread pool (NumPy
  releases the GIL on the hot kernels);
* the global steps that used to need a full-table pass are answered by
  **mergeable partial aggregates**: per-shard ``(d_min, d_max)`` partials
  for the reduced normalization (:class:`DistanceBoundsPartial`) and
  per-shard top-k candidate sets for the displayed-set selection
  (:class:`~repro.core.reduction.TopKCandidates`).

The binding contract -- enforced by ``tests/test_differential.py`` -- is
that sharded execution is **bit-identical** to the cold single-shard run
for every shard count.  The merge algebra guarantees it: ``d_min``/``d_max``
resolve to exact array elements (so the elementwise normalization transform
sees the same scalars), candidate merges are associative and
order-independent, and tie-breaking at the capacity boundary happens once,
by ascending global row index, exactly as a stable argsort would order it.
Any future backend (process pool, async, remote) must preserve these same
invariants.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar, Union

import numpy as np

from repro.core.chunks import as_array, as_chunked
from repro.core.combine import CombinationRule, combine_columns
from repro.core.normalization import (
    NORMALIZED_MAX,
    apply_normalization,
    bounds_identical,
    normalization_keep_count,
    reduced_bounds,
)
from repro.core.plan import (
    CompositePlan,
    EvaluationCache,
    LeafPlan,
    PlanEvaluator,
    ShardSliceEntry,
    _LeafRaw,
    _NodeColumns,
)
from repro.core.reduction import (
    EMPTY_SHARD_SUMMARY as _EMPTY_SUMMARY,
    DistanceBoundsPartial,
    ReductionMethod,
    display_fraction,
    distance_bounds_partial,
    empty_distance_bounds,
    merge_distance_bounds,
    merge_distance_bounds_many,
    merge_topk_candidates_many,
    resolve_distance_bounds,
    resolve_topk,
    select_display_set,
    shard_summary as _shard_summary,
    summaries_from_partials,
    topk_candidates,
)
from repro.obs import trace as obs
from repro.query.expr import NodePath, PredicateLeaf, SubqueryNode
from repro.query.fingerprint import stable_fingerprint
from repro.query.predicates import RangePredicate
from repro.storage.cache import PrefetchCache
from repro.storage.index import SortedIndex
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backend.base import ExecBackend

__all__ = [
    "shard_bounds",
    "resolve_worker_count",
    "shared_executor",
    "shutdown_executors",
    "pool_user",
    "DistanceBoundsPartial",
    "distance_bounds_partial",
    "empty_distance_bounds",
    "merge_distance_bounds",
    "merge_distance_bounds_many",
    "resolve_distance_bounds",
    "NodeDelta",
    "ShardedTable",
    "ShardedPlanEvaluator",
    "sharded_select_display_set",
]

T = TypeVar("T")


# --------------------------------------------------------------------------- #
# Partitioning
# --------------------------------------------------------------------------- #
def shard_bounds(n_rows: int, shard_count: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[start, stop)`` row ranges covering the table.

    Shard sizes differ by at most one row; when ``shard_count`` exceeds
    ``n_rows`` the trailing shards are empty (the merge algebra treats an
    empty shard as the identity element, so results are unaffected).
    """
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    if n_rows < 0:
        raise ValueError("n_rows must be non-negative")
    base, extra = divmod(n_rows, shard_count)
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(shard_count):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _map_indexed(executor: Executor | None, fn: Callable[[int], T], count: int) -> list[T]:
    """Run ``fn(0..count-1)``, through the executor when one is available."""
    if executor is None or count <= 1:
        return [fn(i) for i in range(count)]
    return list(executor.map(fn, range(count)))


# --------------------------------------------------------------------------- #
# Worker pools
# --------------------------------------------------------------------------- #
def resolve_worker_count(max_workers: int | None, shard_count: int) -> int:
    """Thread-pool size for a sharded execution.

    Defaults to the machine's CPU count; never more workers than shards
    (the unit of parallel work is one shard).  A result of 1 means "run
    inline" -- no pool is created, so single-core machines pay no thread
    overhead for sharded semantics.
    """
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    return max(1, min(max_workers, shard_count))


_EXECUTORS: dict[int, ThreadPoolExecutor] = {}
_EXECUTORS_LOCK = threading.Lock()
#: Pool generation: bumped by shutdown_executors after it empties the
#: registry.  Users are counted per generation so a shutdown waits only for
#: executions that could hold a handle to the pools being retired --
#: traffic on freshly created pools never delays it.
_GENERATION = 0
_ACTIVE_BY_GENERATION: dict[int, int] = {}
_POOL_CONDITION = threading.Condition(_EXECUTORS_LOCK)


def shared_executor(max_workers: int) -> Executor | None:
    """A process-wide thread pool of the given size (None for ``<= 1``).

    Pools are shared across engines and kept for the life of the process:
    shard work is bursty (one burst per execute), so pooling avoids both
    per-execute thread spawning and unbounded thread accumulation when many
    engines are created (e.g. one per test).
    """
    if max_workers <= 1:
        return None
    with _EXECUTORS_LOCK:
        pool = _EXECUTORS.get(max_workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-shard"
            )
            _EXECUTORS[max_workers] = pool
        return pool


class pool_user:
    """Context marking one execution as a live user of the shared pools.

    :meth:`PreparedQuery.execute` holds this across its shard waves so that
    :func:`shutdown_executors` (another engine closing) waits for the whole
    execution instead of yanking the pool between two waves.
    """

    def __enter__(self) -> "pool_user":
        with _POOL_CONDITION:
            self._generation = _GENERATION
            _ACTIVE_BY_GENERATION[self._generation] = (
                _ACTIVE_BY_GENERATION.get(self._generation, 0) + 1
            )
        return self

    def __exit__(self, *exc_info) -> None:
        with _POOL_CONDITION:
            remaining = _ACTIVE_BY_GENERATION[self._generation] - 1
            if remaining:
                _ACTIVE_BY_GENERATION[self._generation] = remaining
            else:
                del _ACTIVE_BY_GENERATION[self._generation]
            _POOL_CONDITION.notify_all()


def shutdown_executors(drain_timeout: float = 60.0) -> None:
    """Shut down every process-shared shard pool (idempotent).

    Embedding services call this (via :meth:`QueryEngine.close`) to release
    worker threads deterministically instead of leaking them until process
    exit.  The registry is emptied first, so an engine that executes
    *afterwards* transparently gets a fresh pool; executions already in
    flight (registered through :class:`pool_user`) are drained before
    their pool joins -- closing one engine never breaks another.  Only
    users of the *retiring* generation are waited for: steady traffic that
    starts after the registry is emptied runs on fresh pools and cannot
    stall the drain.
    """
    global _GENERATION
    with _POOL_CONDITION:
        pools = list(_EXECUTORS.values())
        _EXECUTORS.clear()
        retiring = _GENERATION
        _GENERATION += 1
        # Wait for in-flight executions holding a handle to the old pools;
        # the timeout bounds teardown should a user leak (it cannot via
        # pool_user, which releases in __exit__).
        _POOL_CONDITION.wait_for(
            lambda: all(g > retiring for g in _ACTIVE_BY_GENERATION),
            timeout=drain_timeout,
        )
    for pool in pools:
        pool.shutdown(wait=True)


# --------------------------------------------------------------------------- #
# Merge algebra: normalization bounds
# --------------------------------------------------------------------------- #
# The partial/merge/resolve algebra itself lives in
# :mod:`repro.core.reduction` (NumPy-only, so the process backend's worker
# processes can build partials over their shard spans without importing the
# plan machinery); it is re-imported above and re-exported here for the
# evaluator's callers and tests.


# --------------------------------------------------------------------------- #
# Sharded table
# --------------------------------------------------------------------------- #
class ShardedTable:
    """Row-range partitioning of one evaluation table.

    Each shard is a zero-copy view (:meth:`~repro.storage.table.Table.slice_rows`)
    with its own :class:`~repro.storage.cache.PrefetchCache`; hot slider
    attributes additionally get one shard-local
    :class:`~repro.storage.index.SortedIndex` per shard, shared between
    the prefetch cache (index-accelerated fulfilment fetches) and the
    incremental range-delta path (which adds the shard's start row to map
    local hits to global row numbers).
    """

    def __init__(self, table: Table, shard_count: int):
        self.table = table
        self.bounds = shard_bounds(len(table), shard_count)
        self.shards = [table.slice_rows(start, stop) for start, stop in self.bounds]
        self.prefetch = [PrefetchCache(shard, indexes={}) for shard in self.shards]
        self._index_lock = threading.Lock()

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return len(self.table)

    def ensure_index(self, attribute: str) -> None:
        """Build (once) per-shard sorted indexes for a hot slider attribute.

        Safe against concurrent builders *and* concurrent readers that hold
        no lock: the indexes are built fully first and shard 0 -- the shard
        :meth:`has_index` probes -- is published last, so a reader that
        observes the attribute as indexed finds every shard's index in
        place.
        """
        if self.has_index(attribute):
            return
        if not (self.table.has_column(attribute) and self.table.is_numeric(attribute)):
            return
        with self._index_lock:
            if self.has_index(attribute):
                return
            built = [SortedIndex(shard, attribute) for shard in self.shards]
            for shard_no in reversed(range(len(built))):
                self.prefetch[shard_no].indexes[attribute] = built[shard_no]

    def has_index(self, attribute: str) -> bool:
        """True once :meth:`ensure_index` built the per-shard indexes."""
        return bool(self.prefetch) and attribute in self.prefetch[0].indexes

    def shard_indexes(self, attribute: str) -> list[SortedIndex] | None:
        """The per-shard (shard-local) indexes for one attribute, if built."""
        if not self.has_index(attribute):
            return None
        return [prefetch.indexes[attribute] for prefetch in self.prefetch]


# --------------------------------------------------------------------------- #
# Sharded plan evaluation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class NodeDelta:
    """How one node's output column relates to its previous incarnation.

    ``value_key`` is the fingerprint of the column just produced.  When a
    relation to an earlier column is known, ``base_key`` names that column
    and ``dirty`` lists the shards within which the two may differ -- every
    row outside a dirty shard is *guaranteed* bit-identical.  ``dirty is
    None`` means no relation is known (treat every shard as changed); a
    ``base_key == value_key`` with an empty dirty set is the trivial
    self-relation of a node served wholesale from the cache.

    These deltas are what the per-shard slice cache propagates up the plan:
    a parent combines its children's dirty sets, and the engine patches the
    displayed set from the root's delta.
    """

    value_key: str
    base_key: str | None
    dirty: frozenset | None


class ShardedPlanEvaluator(PlanEvaluator):
    """A :class:`~repro.core.plan.PlanEvaluator` that executes shard by shard.

    Produces full-table node columns (concatenated from per-shard pieces)
    that are bit-identical to the monolithic evaluator's, so the two share
    one :class:`~repro.core.plan.EvaluationCache` without any key changes:
    an incremental re-execution may mix cached monolithic results with
    freshly sharded ones and still return exactly the cold-run feedback.

    With ``incremental=True`` (the default) the evaluator additionally
    maintains, per plan-node *site*, the previous execution's per-shard
    state (:class:`~repro.core.plan.ShardSliceEntry`) and recomputes only
    the shards an event dirtied:

    * a range-slider delta marks as dirty exactly the shards whose rows the
      swept band intersects (found through the per-shard sorted indexes);
    * per-node, only dirty shards' bounds partials are re-derived; when the
      merged ``(d_min, d_max)`` is bit-identical to the previous resolve
      (the common case for interior slider moves), clean shards' normalized
      slices are reused verbatim instead of being renormalized;
    * composites recombine only shards made dirty by some child, reusing
      clean combined/mask slices.

    Every patch is validated against the entry's recorded provenance (raw
    key, child keys + weights, keep/capacity), so a stale entry degrades to
    a full per-shard recompute -- never a wrong answer.  ``slice_token``
    namespaces the sites (one token per prepared query), keeping concurrent
    sessions' patch chains from thrashing each other.

    ``executor`` is an optional :class:`concurrent.futures.Executor`; when
    None (or with a single shard) the per-shard work runs inline.
    """

    def __init__(self, sharded: ShardedTable, display_capacity: int,
                 target_max: float = NORMALIZED_MAX,
                 cache: EvaluationCache | None = None,
                 executor: Executor | None = None,
                 incremental: bool = True,
                 slice_token: str = "",
                 backend: "ExecBackend | None" = None):
        super().__init__(sharded.table, display_capacity, target_max=target_max,
                         cache=cache, prefetch=None)
        self.sharded = sharded
        self.executor = executor
        self.incremental = incremental
        self.slice_token = slice_token
        #: Optional :class:`repro.backend.base.ExecBackend` given first
        #: refusal on leaf kernels; ``None`` (or a declined op) keeps the
        #: in-process per-shard computation below.
        self.backend = backend
        #: :class:`NodeDelta` per node path of the latest :meth:`evaluate`.
        self.node_deltas: dict[NodePath, NodeDelta] = {}
        #: raw_key -> (base raw_key, dirty shard set) learned while
        #: recomputing range leaves during this evaluation.
        self._raw_deltas: dict[str, tuple[str, frozenset]] = {}
        #: Slice generation this evaluation started under; entries are
        #: stamped with it so a concurrent cache clear() drops them.
        self._slice_generation = self.cache.slice_generation()
        #: Set by the engine when the displayed-set selection could use
        #: per-shard root top-k partials (percentage path, incremental).
        self.pipeline_topk_target: int | None = None
        #: ``(target, [TopKCandidates per shard])`` from an accepted
        #: pipeline op, for the engine's displayed-set construction.
        self.pipeline_topk: tuple[int, list] | None = None
        #: Per-node-path per-shard fulfilment-mask popcounts from an
        #: accepted pipeline op (reply-side aggregate; the full masks
        #: live in the shared block / node cache).
        self.pipeline_popcounts: dict[NodePath, list[int]] | None = None

    # ------------------------------------------------------------------ #
    def _map_shards(self, fn: Callable[[int], T]) -> list[T]:
        return _map_indexed(self.executor, fn, self.sharded.shard_count)

    def _map_over(self, indices: list[int], fn: Callable[[int], T]) -> list[T]:
        """Run ``fn`` over an explicit shard subset (the dirty shards)."""
        if self.executor is None or len(indices) <= 1:
            return [fn(i) for i in indices]
        return list(self.executor.map(fn, indices))

    def _site_key(self, path: NodePath) -> str:
        return stable_fingerprint(
            "site", self.slice_token, path, self.sharded.shard_count
        )

    def _valid_entry(self, path: NodePath) -> ShardSliceEntry | None:
        if not self.incremental:
            return None
        entry = self.cache.get_slice(self._site_key(path))
        if entry is None:
            return None
        if (entry.shard_count != self.sharded.shard_count
                or entry.target_max != self.target_max
                or len(entry.columns.normalized) != len(self.table)):
            return None
        return entry

    # ------------------------------------------------------------------ #
    def evaluate(self, plan):
        self.node_deltas = {}
        self._raw_deltas = {}
        self._slice_generation = self.cache.slice_generation()
        if self.incremental:
            self.cache.record_incremental_event()
        # Whole-pipeline offload: when the backend accepts, it seeds the
        # raw/node/slice caches with the assembled (bit-identical) columns,
        # so the in-process walk below is pure cache hits and the feedback
        # frames are built by the exact same code path as always.  A
        # declined or faulted op leaves the caches untouched and the walk
        # computes everything in-process.
        with obs.span("pipeline.offload") as offload:
            accepted = self._try_pipeline(plan)
            offload.annotate(accepted=accepted)
        return super().evaluate(plan)

    # ------------------------------------------------------------------ #
    # Whole-pipeline offload
    # ------------------------------------------------------------------ #
    def _pipeline_spec(self, plan) -> tuple[dict, list] | None:
        """The picklable pipeline spec, or None when the plan is ineligible.

        Eligibility keeps the offload where it wins and cannot diverge:
        pure predicate plans only (subquery distances may read whole-table
        state), a root the node LRU cannot serve wholesale, and at least
        one leaf whose raw column actually needs computing (weight-only
        moves patch in-process from clean slices).  Range leaves offload
        only while *cold* -- once an attribute has range history backed by
        sorted shard indexes, a micro-move patches O(changed rows)
        in-process, which no full per-shard recompute on a worker can
        beat; a cold range leaf recomputes from scratch either way, so it
        ships with the rest of the plan (and seeds the history for the
        next move, see :meth:`_try_pipeline`).
        """
        n = len(self.table)
        meta: list[tuple[object, NodePath, int]] = []

        def walk(node, path: NodePath) -> int | None:
            if isinstance(node, LeafPlan):
                if not isinstance(node.node, PredicateLeaf):
                    return None
                predicate = node.node.predicate
                if (isinstance(predicate, RangePredicate)
                        and self.cache.range_history(predicate.attribute)
                            is not None
                        and self.sharded.shard_indexes(predicate.attribute)
                            is not None):
                    return None
                meta.append((node, path, 0))
                return 0
            if not isinstance(node, CompositePlan):
                return None
            child_levels = []
            for i, child in enumerate(node.children):
                level = walk(child, path + (i,))
                if level is None:
                    return None
                child_levels.append(level)
            level = max(child_levels) + 1
            meta.append((node, path, level))
            return level

        if walk(plan, ()) is None:
            return None
        if self.cache.peek_node(
                plan.value_key(self.display_capacity, self.target_max)):
            return None
        if not any(
            isinstance(pnode, LeafPlan) and not self.cache.peek_raw(pnode.raw_key)
            for pnode, _, _ in meta
        ):
            return None
        ids = {path: node_id for node_id, (_, path, _) in enumerate(meta)}
        shard_count = self.sharded.shard_count
        nodes_spec: list[dict] = []
        levels: dict[int, list[int]] = {}
        partial_nodes: list[int] = []
        for node_id, (pnode, path, level) in enumerate(meta):
            keep = normalization_keep_count(
                pnode.node.weight, self.display_capacity, max(n, 1))
            if keep * shard_count <= n // 2:
                partial_nodes.append(node_id)
            if isinstance(pnode, LeafPlan):
                entry = {"id": node_id, "kind": "leaf",
                         "predicate": pnode.node.predicate, "keep": keep}
            else:
                entry = {
                    "id": node_id, "kind": "composite",
                    "rule": pnode.rule.name,
                    "children": [ids[path + (i,)]
                                 for i in range(len(pnode.children))],
                    "weights": [float(child.weight)
                                for child in pnode.children],
                    "keep": keep,
                }
            nodes_spec.append(entry)
            levels.setdefault(level, []).append(node_id)
        spec = {
            "rows": n,
            "target_max": self.target_max,
            "nodes": nodes_spec,
            "levels": [levels[level] for level in sorted(levels)],
            "partial_nodes": partial_nodes,
            "topk_target": self.pipeline_topk_target,
        }
        return spec, meta

    def _try_pipeline(self, plan) -> bool:
        """Offer the whole plan to the backend's pipeline op.

        On success, every node's assembled columns are installed into the
        raw/node LRUs and (when incremental) the per-site slice entries --
        with the same provenance and the same cold-run slice accounting
        the in-process path would record -- then the regular plan walk
        serves them back out.  Returns False when declined; nothing is
        cached then.
        """
        self.pipeline_topk = None
        self.pipeline_popcounts = None
        backend = self.backend
        if (backend is None or self.sharded.shard_count <= 1
                or len(self.table) == 0):
            return False
        built = self._pipeline_spec(plan)
        if built is None:
            return False
        spec, meta = built
        result = backend.shard_pipeline(self.sharded, spec)
        if result is None:
            return False
        shard_count = self.sharded.shard_count
        popcounts: dict[NodePath, list[int]] = {}
        for node_id, (pnode, path, _level) in enumerate(meta):
            data = result["nodes"][node_id]
            value_key = pnode.value_key(self.display_capacity, self.target_max)
            if isinstance(pnode, LeafPlan):
                predicate = pnode.node.predicate
                raw = _LeafRaw(
                    signed=data["signed"],
                    raw=data["raw"],
                    exact_mask=data["mask"],
                    supports_direction=predicate.supports_direction,
                )
                self.cache.put_raw(pnode.raw_key, raw)
                if isinstance(predicate, RangePredicate):
                    # Same seeding _range_leaf_raw does after a cold run:
                    # the next micro-move on this attribute finds history
                    # (and, once the engine builds indexes, patches
                    # in-process instead of offloading).
                    self.cache.set_range_history(
                        predicate.attribute, predicate.low, predicate.high,
                        raw, pnode.raw_key)
                columns = _NodeColumns(
                    normalized=data["normalized"],
                    signed=data["signed"] if predicate.supports_direction
                    else None,
                    exact_mask=data["mask"],
                    raw=data["raw"],
                )
                slice_extra: dict = {"raw_key": pnode.raw_key}
            else:
                columns = _NodeColumns(
                    normalized=data["normalized"], signed=None,
                    exact_mask=data["mask"], raw=data["raw"],
                )
                slice_extra = {
                    "child_keys": tuple(
                        child.value_key(self.display_capacity, self.target_max)
                        for child in pnode.children),
                    "child_weights": tuple(
                        float(child.weight) for child in pnode.children),
                    "rule": pnode.rule,
                }
            self.cache.put_node(value_key, columns)
            if self.incremental:
                self.cache.put_slice(self._site_key(path), ShardSliceEntry(
                    value_key=value_key,
                    columns=columns,
                    resolved=data["resolved"],
                    summaries=data["summaries"],
                    target_max=self.target_max,
                    shard_count=shard_count,
                    generation=self._slice_generation,
                    **slice_extra,
                ))
                self.cache.record_slice(
                    hit=False, recomputed=shard_count, reused=0)
            popcounts[path] = data["popcounts"]
        self.pipeline_popcounts = popcounts
        topk = result.get("topk")
        if topk is not None and spec["topk_target"] is not None:
            self.pipeline_topk = (spec["topk_target"], topk)
        return True

    def event_report(self) -> dict[str, object]:
        """Dirty-shard attribution of the latest :meth:`evaluate` call.

        ``root_dirty_shards`` is None when no delta relation was known at
        the root (a cold or wholesale-changed execution); ``patched_nodes``
        counts nodes recomputed through the slice cache, ``cached_nodes``
        nodes served wholesale from the node LRU.
        """
        root = self.node_deltas.get(())
        root_dirty = None
        if root is not None and root.dirty is not None:
            root_dirty = len(root.dirty)
        cached = sum(
            1 for d in self.node_deltas.values() if d.base_key == d.value_key
        )
        patched = sum(
            1 for d in self.node_deltas.values()
            if d.dirty is not None and d.base_key not in (None, d.value_key)
        )
        return {
            "nodes": len(self.node_deltas),
            "cached_nodes": cached,
            "patched_nodes": patched,
            "root_dirty_shards": root_dirty,
            "shard_count": self.sharded.shard_count,
            "chunks_patched": self._chunks_patched,
            "chunks_shared": self._chunks_shared,
        }

    # ------------------------------------------------------------------ #
    # Node columns with dirty-shard patching
    # ------------------------------------------------------------------ #
    def _leaf_columns(self, plan, path: NodePath = ()) -> _NodeColumns:
        value_key = plan.value_key(self.display_capacity, self.target_max)
        columns = self.cache.get_node(value_key)
        if columns is not None:
            # Served wholesale: identical content by fingerprint identity.
            self.node_deltas[path] = NodeDelta(value_key, value_key, frozenset())
            return columns
        marks = self._chunk_marks()
        raw = self.cache.get_raw(plan.raw_key)
        if raw is None:
            raw = self._compute_leaf_raw(plan.node, plan.raw_key)
            self.cache.put_raw(plan.raw_key, raw)
        entry = self._valid_entry(path)
        dirty: frozenset | None = None
        if entry is not None and entry.raw_key is not None:
            if entry.raw_key == plan.raw_key:
                # Same raw column (e.g. only the weight moved): nothing is
                # dirty -- the normalize stage decides whether the resolved
                # bounds (hence the normalized column) changed at all.
                dirty = frozenset()
            else:
                delta = self._raw_deltas.get(plan.raw_key)
                if delta is not None and delta[0] == entry.raw_key:
                    dirty = delta[1]
        normalized, resolved, summaries, out_dirty = \
            self._normalize_incremental(raw.raw, plan.node.weight, entry, dirty)
        columns = _NodeColumns(
            normalized=normalized,
            signed=raw.signed if raw.supports_direction else None,
            exact_mask=raw.exact_mask,
            raw=raw.raw,
        )
        self.cache.put_node(value_key, columns)
        if self.incremental:
            self.cache.put_slice(self._site_key(path), ShardSliceEntry(
                value_key=value_key,
                columns=columns,
                resolved=resolved,
                summaries=summaries,
                target_max=self.target_max,
                shard_count=self.sharded.shard_count,
                raw_key=plan.raw_key,
                generation=self._slice_generation,
            ))
        base = entry.value_key if (entry is not None and dirty is not None) else None
        self.node_deltas[path] = NodeDelta(value_key, base, out_dirty)
        self._annotate_chunks(marks)
        return columns

    def _composite_columns(self, plan, path: NodePath,
                           feedback: dict) -> _NodeColumns:
        child_columns = [
            self._evaluate(child, path + (i,), feedback)
            for i, child in enumerate(plan.children)
        ]
        value_key = plan.value_key(self.display_capacity, self.target_max)
        columns = self.cache.get_node(value_key)
        if columns is not None:
            self.node_deltas[path] = NodeDelta(value_key, value_key, frozenset())
            return columns
        marks = self._chunk_marks()
        weights = np.array([child.weight for child in plan.children], dtype=float)
        child_keys = tuple(
            child.value_key(self.display_capacity, self.target_max)
            for child in plan.children
        )
        entry = self._valid_entry(path)
        dirty = self._children_dirty(entry, child_keys, weights, plan.rule, path)
        bounds = self.sharded.bounds
        # OR over <= MAX_UNION_DISJUNCTS numeric range leaves: answer the
        # mask from the per-shard cached union regions (bit-identical to
        # OR-ing the leaf masks; see PlanEvaluator._union_boxes).
        union_boxes = self._union_boxes(plan)
        if dirty is not None:
            # Children changed only inside the dirty shards (and with
            # unchanged weights/rule), so the combined column and the
            # fulfilment mask change only there too.
            if not dirty:
                combined = entry.columns.raw
                exact = entry.columns.exact_mask
            else:
                dirty_sorted = sorted(dirty)

                def combine_one(i: int) -> np.ndarray:
                    start, stop = bounds[i]
                    return combine_columns(
                        plan.rule,
                        [c.normalized[start:stop] for c in child_columns],
                        weights,
                    )

                def mask_one(i: int) -> np.ndarray:
                    if union_boxes is not None:
                        return self.sharded.prefetch[i].fulfilment_mask_union(
                            union_boxes)
                    start, stop = bounds[i]
                    if plan.rule is CombinationRule.AND:
                        piece = np.ones(stop - start, dtype=bool)
                        for c in child_columns:
                            piece &= c.exact_mask[start:stop]
                    else:
                        piece = np.zeros(stop - start, dtype=bool)
                        for c in child_columns:
                            piece |= c.exact_mask[start:stop]
                    return piece

                fresh_combined = dict(zip(
                    dirty_sorted, self._map_over(dirty_sorted, combine_one)))
                fresh_masks = dict(zip(
                    dirty_sorted, self._map_over(dirty_sorted, mask_one)))
                # Copy-on-write assembly: dirty shards' spans are spliced
                # in (interior chunks alias the fresh pieces zero-copy);
                # every clean chunk is shared with the cached entry.
                combined = as_chunked(entry.columns.raw).patch_spans([
                    (bounds[i][0], bounds[i][1], fresh_combined[i])
                    for i in dirty_sorted
                ])
                exact = as_chunked(entry.columns.exact_mask).patch_spans([
                    (bounds[i][0], bounds[i][1], fresh_masks[i])
                    for i in dirty_sorted
                ])
                self._record_chunks(combined)
                self._record_chunks(exact)
        else:
            combined = self._combine(
                plan.rule, [c.normalized for c in child_columns], weights
            )
            if plan.rule is CombinationRule.AND:
                exact = np.ones(len(self.table), dtype=bool)
                for c in child_columns:
                    exact &= c.exact_mask
            elif union_boxes is not None:
                def mask_union(i: int) -> np.ndarray:
                    return self.sharded.prefetch[i].fulfilment_mask_union(
                        union_boxes)

                exact = np.concatenate(self._map_shards(mask_union))
            else:
                exact = np.zeros(len(self.table), dtype=bool)
                for c in child_columns:
                    exact |= c.exact_mask
        normalized, resolved, summaries, out_dirty = \
            self._normalize_incremental(combined, plan.node.weight, entry, dirty)
        columns = _NodeColumns(
            normalized=normalized, signed=None, exact_mask=exact, raw=combined
        )
        self.cache.put_node(value_key, columns)
        if self.incremental:
            self.cache.put_slice(self._site_key(path), ShardSliceEntry(
                value_key=value_key,
                columns=columns,
                resolved=resolved,
                summaries=summaries,
                target_max=self.target_max,
                shard_count=self.sharded.shard_count,
                child_keys=child_keys,
                child_weights=tuple(float(w) for w in weights),
                rule=plan.rule,
                generation=self._slice_generation,
            ))
        base = entry.value_key if (entry is not None and dirty is not None) else None
        self.node_deltas[path] = NodeDelta(value_key, base, out_dirty)
        self._annotate_chunks(marks)
        return columns

    def _children_dirty(self, entry: ShardSliceEntry | None,
                        child_keys: tuple, weights: np.ndarray,
                        rule: CombinationRule, path: NodePath) -> frozenset | None:
        """Union of the children's dirty shards, or None when unpatchable.

        A patch of the combined column is only sound when the combination
        inputs are unchanged outside the dirty shards: same rule, same child
        weights, and every child either carries the same value fingerprint
        the entry was built from or reports a delta against exactly that
        fingerprint.
        """
        if entry is None or entry.child_keys is None:
            return None
        if entry.rule is not rule or len(entry.child_keys) != len(child_keys):
            return None
        if entry.child_weights != tuple(float(w) for w in weights):
            return None
        acc: set = set()
        for i, key in enumerate(child_keys):
            if key == entry.child_keys[i]:
                continue
            delta = self.node_deltas.get(path + (i,))
            if (delta is None or delta.dirty is None
                    or delta.base_key != entry.child_keys[i]):
                return None
            acc |= delta.dirty
        return frozenset(acc)

    # ------------------------------------------------------------------ #
    # Leaf columns
    # ------------------------------------------------------------------ #
    def _compute_leaf_raw(self, node: Union[PredicateLeaf, SubqueryNode],
                          raw_key: str | None = None) -> _LeafRaw:
        if isinstance(node, SubqueryNode):
            # Subquery distances come from an arbitrary callable that may
            # depend on whole-table state; only row-local predicates are
            # safe to evaluate per shard.
            return super()._compute_leaf_raw(node, raw_key)
        predicate = node.predicate
        if isinstance(predicate, RangePredicate):
            return self._range_leaf_raw(predicate, raw_key)

        def one(i: int) -> np.ndarray:
            return np.asarray(predicate.signed_distances(self.sharded.shards[i]),
                              dtype=float)

        signed = self._backend_leaf_signed(predicate)
        if signed is None:
            signed = np.concatenate(self._map_shards(one))
        return _LeafRaw(
            signed=signed,
            raw=np.abs(signed),
            exact_mask=self._exact_mask(predicate),
            supports_direction=predicate.supports_direction,
        )

    def _range_leaf_raw(self, predicate: RangePredicate,
                        raw_key: str | None = None) -> _LeafRaw:
        """Per-shard version of the incremental range-leaf update.

        A slider event touches only the shards whose rows intersect the
        swept band: each shard's sorted index finds its changed rows in
        O(log s + k); shards outside the band contribute empty change sets
        and do no work.  The recomputation formula is identical to
        :meth:`RangePredicate.signed_distances`, so the result matches a
        full recomputation bit for bit.  The set of shards with a non-empty
        change set is recorded as this raw column's delta against the
        previous one, seeding the per-node dirty tracking; the fulfilment
        mask is patched from the previous mask over the same rows (a row's
        membership can only change where its distance changes).
        """
        attribute = predicate.attribute
        indexes = self.sharded.shard_indexes(attribute)
        history = self.cache.range_history(attribute) if indexes else None
        changed_parts: list[np.ndarray] = []
        dirty_shards: frozenset | None = None
        base_key = history.raw_key if history is not None else None
        if history is not None:
            old_low, old_high = history.low, history.high
            starts = [start for start, _ in self.sharded.bounds]

            def changed_for(i: int) -> np.ndarray:
                pieces = []
                if predicate.low != old_low:
                    pieces.append(indexes[i].range_query(
                        None, max(old_low, predicate.low), sort=False))
                if predicate.high != old_high:
                    pieces.append(indexes[i].range_query(
                        min(old_high, predicate.high), None, sort=False))
                if not pieces:
                    return np.empty(0, dtype=np.intp)
                # Shard-local hits -> global row numbers.
                return np.concatenate(pieces) + starts[i]

            changed_parts = self._map_shards(changed_for)
            dirty_shards = frozenset(
                i for i, c in enumerate(changed_parts) if len(c)
            )
            # Same trade-off as the monolithic path: past a third of the
            # table the full vectorised recomputation wins.  The content
            # delta (changed rows confined to the dirty shards) holds for
            # the full recomputation just the same, so it is still
            # recorded below.
            if sum(len(c) for c in changed_parts) > len(self.table) // 3:
                history = None
        if history is not None:
            old = history.raw
            column = self.table.column(attribute)

            def update(i: int) -> tuple:
                changed = changed_parts[i]
                values = np.asarray(column, dtype=float)[changed]
                below = np.where(values < predicate.low, values - predicate.low, 0.0)
                above = np.where(values > predicate.high, values - predicate.high, 0.0)
                delta = below + above
                delta = np.where(np.isnan(values), np.nan, delta)
                # Membership is "distance == 0": bit-identical to
                # RangePredicate.exact_mask on the changed rows, unchanged
                # (hence reusable) everywhere else.
                member = (values >= predicate.low) & (values <= predicate.high)
                return changed, delta, np.abs(delta), member

            # Per-shard delta computation fans out; the copy-on-write patch
            # then copies only the chunks the changed rows intersect and
            # aliases every clean chunk from the cached column.
            updates = self._map_over(sorted(dirty_shards), update)
            if updates:
                changed_all = np.concatenate([u[0] for u in updates])
                signed = as_chunked(old.signed).patch(
                    changed_all, np.concatenate([u[1] for u in updates]))
                raw = as_chunked(old.raw).patch(
                    changed_all, np.concatenate([u[2] for u in updates]))
                mask = as_chunked(old.exact_mask).patch(
                    changed_all, np.concatenate([u[3] for u in updates]))
                self._record_chunks(signed)
                self._record_chunks(raw)
                self._record_chunks(mask)
            else:
                signed, raw, mask = old.signed, old.raw, old.exact_mask
            result = _LeafRaw(
                signed=signed,
                raw=raw,
                exact_mask=mask,
                supports_direction=True,
            )
        else:
            def one(i: int) -> np.ndarray:
                return np.asarray(predicate.signed_distances(self.sharded.shards[i]),
                                  dtype=float)

            signed = self._backend_leaf_signed(predicate)
            if signed is None:
                signed = np.concatenate(self._map_shards(one))
            result = _LeafRaw(
                signed=signed,
                raw=np.abs(signed),
                exact_mask=self._exact_mask(predicate),
                supports_direction=predicate.supports_direction,
            )
        if (self.incremental and raw_key is not None and base_key is not None
                and dirty_shards is not None and raw_key != base_key):
            self._raw_deltas[raw_key] = (base_key, dirty_shards)
        self.cache.set_range_history(attribute, predicate.low, predicate.high,
                                     result, raw_key)
        return result

    def _exact_mask(self, predicate) -> np.ndarray:
        """Per-shard fulfilment masks, concatenated to the global mask.

        Range predicates on numeric columns go through the per-shard
        prefetch caches (widened regions answer a narrowing slider drag
        without rescanning); everything else evaluates the predicate on the
        shard view directly.  Masks are exact either way, so the global
        concatenation equals the monolithic mask.
        """
        if (
            isinstance(predicate, RangePredicate)
            and self.table.has_column(predicate.attribute)
            and self.table.is_numeric(predicate.attribute)
        ):
            ranges = {predicate.attribute: (predicate.low, predicate.high)}

            def one(i: int) -> np.ndarray:
                return self.sharded.prefetch[i].fulfilment_mask(ranges)
        else:
            mask = self._backend_leaf_mask(predicate)
            if mask is not None:
                return mask

            def one(i: int) -> np.ndarray:
                return np.asarray(predicate.exact_mask(self.sharded.shards[i]), dtype=bool)

        return np.concatenate(self._map_shards(one))

    def _backend_leaf_signed(self, predicate) -> np.ndarray | None:
        """Offer one leaf's signed distances to the backend (None = declined)."""
        if self.backend is None:
            return None
        return self.backend.leaf_signed(predicate, self.sharded)

    def _backend_leaf_mask(self, predicate) -> np.ndarray | None:
        """Offer one leaf's fulfilment mask to the backend (None = declined)."""
        if self.backend is None:
            return None
        return self.backend.leaf_mask(predicate, self.sharded)

    # ------------------------------------------------------------------ #
    # Normalization / combination
    # ------------------------------------------------------------------ #
    def _normalize_incremental(
        self, values: np.ndarray, weight: float,
        entry: ShardSliceEntry | None, dirty: frozenset | None,
    ) -> tuple[np.ndarray, tuple[float, float] | None, np.ndarray | None,
               frozenset | None]:
        """Normalize one node column, recomputing only dirty shards' state.

        Returns ``(normalized, resolved, summaries, out_dirty)``.  ``dirty``
        is the set of shards within which ``values`` may differ from
        ``entry.columns.raw`` (None = unknown).  Every path is bit-identical
        to the monolithic
        :func:`~repro.core.normalization.reduced_normalization`:

        * the cached per-shard summaries re-certify the resolved bounds in
          O(dirty rows + shard_count): the new global minimum falls out of
          the per-shard minima, and the ``keep``-th smallest equals the old
          ``d_max`` exactly when ``sum(count<) < keep <= sum(count<=)`` --
          both bounds are exact column elements either way, so no value
          multiset needs to be merged in the common case;
        * when the resolved bounds are bit-identical to the entry's, the
          elementwise transform of every clean shard is bit-identical too,
          so those slices are reused verbatim (``out_dirty = dirty``);
        * when the bounds moved (or no certificate applies), the column
          resolves through the per-shard partial merge or the direct
          partition -- the same two paths a cold run takes -- and all
          shards renormalize (``out_dirty = None``: ancestors treat the
          column as changed everywhere).
        """
        n = len(values)
        bounds = self.sharded.bounds
        shard_count = self.sharded.shard_count
        keep = normalization_keep_count(weight, self.display_capacity, max(n, 1))
        if n == 0:
            return np.asarray(values, dtype=float).copy(), None, None, frozenset()
        patched = (entry is not None and dirty is not None
                   and entry.summaries is not None)
        resolved: tuple[float, float] | None = None
        summaries: np.ndarray | None = None
        certified = False
        if patched:
            # Refresh only the dirty shards' summaries (against the entry's
            # d_max) and try to certify the resolved bounds from counts.
            old_resolved = entry.resolved
            d_max_old = old_resolved[1] if old_resolved is not None else float("nan")
            summaries = entry.summaries.copy()
            dirty_list = sorted(dirty)
            fresh = self._map_over(
                dirty_list,
                lambda i: _shard_summary(
                    values[bounds[i][0]:bounds[i][1]], d_max_old),
            )
            for i, row in zip(dirty_list, fresh):
                summaries[i] = row
            finite_total = int(summaries[:, 0].sum())
            if finite_total == 0:
                resolved = None
                certified = True
            else:
                present = summaries[:, 0] > 0
                d_min_new = float(summaries[present, 1].min())
                if keep >= finite_total:
                    resolved = (d_min_new, float(summaries[present, 2].max()))
                    certified = True
                elif old_resolved is not None:
                    below = summaries[:, 3].sum()
                    at_or_below = summaries[:, 4].sum()
                    if below < keep <= at_or_below:
                        resolved = (d_min_new, float(d_max_old))
                        certified = True
        if not certified:
            # Both resolve paths make a full pass over the column: a chunked
            # column is materialized once here (cached on the instance) so
            # the per-shard slices below are cheap contiguous views.
            values = as_array(values)
            if keep * shard_count <= n // 2:
                # Selective keep: per-shard partials are small, so the
                # serial merge is sublinear and the partition work fans out.
                partials = self._map_shards(
                    lambda i: distance_bounds_partial(
                        values[bounds[i][0]:bounds[i][1]], keep)
                )
                resolved = resolve_distance_bounds(
                    merge_distance_bounds_many(partials))
            else:
                # keep is a large fraction of the table: the partials would
                # retain nearly every value and the merge would re-partition
                # almost the whole column, doubling the selection work.  One
                # direct pass resolves the same exact array elements; the
                # elementwise transform below stays shard-parallel either way.
                partials = None
                resolved = reduced_bounds(values, keep)
        d_min, d_max = resolved if resolved is not None else (None, None)
        if patched and bounds_identical(resolved, entry.resolved):
            # Short-circuit: bounds unchanged, so clean shards' normalized
            # slices are bit-identical -- renormalize the dirty ones only.
            old = entry.columns.normalized
            if not dirty:
                normalized = old
            else:
                dirty_sorted = sorted(dirty)
                fresh = self._map_over(
                    dirty_sorted,
                    lambda i: apply_normalization(
                        values[bounds[i][0]:bounds[i][1]], d_min, d_max,
                        target_max=self.target_max),
                )
                # Copy-on-write: dirty shards' spans are spliced in, every
                # clean chunk is aliased from the cached normalized column.
                normalized = as_chunked(old).patch_spans([
                    (bounds[i][0], bounds[i][1], piece)
                    for i, piece in zip(dirty_sorted, fresh)
                ])
                self._record_chunks(normalized)
            if summaries is None or not certified:
                # Entry had no summaries (or the certificate failed while
                # the resolve still came out identical): capture fresh
                # summaries against the unchanged d_max so the next event
                # can certify cheaply.
                summaries = self._build_summaries(
                    values, resolved, partials if not certified else None)
            if self.incremental:
                self.cache.record_slice(
                    hit=True, recomputed=len(dirty),
                    reused=shard_count - len(dirty), shortcircuit=True,
                )
            obs.annotate(certificate="bounds", certified=certified,
                         shortcircuit=True, shards_recomputed=len(dirty),
                         shards_reused=shard_count - len(dirty))
            out_dirty: frozenset | None = dirty
        else:
            values = as_array(values)
            out = np.empty(n, dtype=float)

            def apply(i: int) -> None:
                start, stop = bounds[i]
                out[start:stop] = apply_normalization(
                    values[start:stop], d_min, d_max, target_max=self.target_max
                )

            self._map_shards(apply)
            normalized = out
            if self.incremental:
                summaries = self._build_summaries(
                    values, resolved, None if certified else partials)
                self.cache.record_slice(
                    hit=patched, recomputed=shard_count, reused=0,
                )
            else:
                summaries = None
            if patched:
                # A patch was attempted and every shard renormalized: the
                # counting certificate failed (or certified *moved* bounds).
                obs.annotate(certificate="bounds", certified=certified,
                             shortcircuit=False,
                             shards_recomputed=shard_count, shards_reused=0)
            out_dirty = None
        return normalized, resolved, summaries, out_dirty

    def _build_summaries(self, values: np.ndarray,
                         resolved: tuple[float, float] | None,
                         partials) -> np.ndarray:
        """Per-shard order-statistic summaries against the resolved bounds.

        Derived from the bounds partials when available (every value below
        ``d_max`` is retained in a partial's smallest-``keep`` multiset, and
        an undercounted ``count<=`` -- ties cut beyond the capacity -- can
        only fail a future certificate early, never falsely pass it);
        otherwise computed with one cheap counting pass per shard.
        """
        bounds = self.sharded.bounds
        if resolved is None:
            return np.asarray(
                [_EMPTY_SUMMARY] * self.sharded.shard_count, dtype=float)
        if partials is not None:
            return summaries_from_partials(partials, resolved)
        d_max = resolved[1]
        rows = self._map_shards(
            lambda i: _shard_summary(values[bounds[i][0]:bounds[i][1]], d_max)
        )
        return np.asarray(rows, dtype=float)

    def _combine(self, rule: CombinationRule, columns: list[np.ndarray],
                 weights: np.ndarray) -> np.ndarray:
        n = len(self.table)
        out = np.empty(n, dtype=float)
        bounds = self.sharded.bounds

        def one(i: int) -> None:
            start, stop = bounds[i]
            out[start:stop] = combine_columns(
                rule, [c[start:stop] for c in columns], weights
            )

        self._map_shards(one)
        return out


# --------------------------------------------------------------------------- #
# Sharded displayed-set selection
# --------------------------------------------------------------------------- #
def sharded_select_display_set(distances: np.ndarray, sharded: ShardedTable,
                               capacity: int, n_selection_predicates: int,
                               method: ReductionMethod = ReductionMethod.QUANTILE,
                               percentage: float | None = None,
                               multipeak_z: int | None = None,
                               executor: Executor | None = None) -> np.ndarray:
    """Shard-parallel :func:`~repro.core.reduction.select_display_set`.

    * the percentage path merges per-shard
      :class:`~repro.core.reduction.TopKCandidates` partials;
    * the quantile path concatenates per-shard finite values (preserving
      row order, hence the exact quantile input) and applies the resulting
      threshold shard by shard;
    * the multi-peak heuristic needs the globally sorted distance prefix,
      so it falls back to the monolithic implementation.

    Results are bit-identical to the monolithic selection in every case.
    """
    distances = np.asarray(distances, dtype=float)
    n = len(distances)
    bounds = sharded.bounds
    if n == 0 or n != len(sharded.table):
        return select_display_set(
            distances, capacity=capacity,
            n_selection_predicates=n_selection_predicates, method=method,
            percentage=percentage, multipeak_z=multipeak_z,
        )
    if method is ReductionMethod.PERCENTAGE or percentage is not None:
        if percentage is None:
            raise ValueError("percentage reduction requires a percentage value")
        if not 0.0 < percentage <= 1.0:
            raise ValueError(f"percentage must be in (0, 1], got {percentage}")
        target = max(1, int(round(percentage * n)))
        if target >= n:
            return np.arange(n, dtype=np.intp)
        if target * len(bounds) > n // 2:
            # The per-shard candidate sets would together approach the full
            # column, so the merge would redo a full-size selection; the
            # monolithic partition is cheaper and bit-identical.
            return select_display_set(
                distances, capacity=capacity,
                n_selection_predicates=n_selection_predicates,
                method=ReductionMethod.PERCENTAGE, percentage=percentage,
                multipeak_z=multipeak_z,
            )
        partials = _map_indexed(
            executor,
            lambda i: topk_candidates(distances[bounds[i][0]:bounds[i][1]],
                                      target, offset=bounds[i][0]),
            len(bounds),
        )
        return resolve_topk(merge_topk_candidates_many(partials))
    if method is ReductionMethod.QUANTILE:
        p = display_fraction(capacity, n, n_selection_predicates)
        finite_parts = _map_indexed(
            executor,
            lambda i: distances[bounds[i][0]:bounds[i][1]][
                np.isfinite(distances[bounds[i][0]:bounds[i][1]])
            ],
            len(bounds),
        )
        finite = np.concatenate(finite_parts)
        if len(finite) == 0:
            return np.empty(0, dtype=np.intp)
        threshold = float(np.quantile(finite, p))

        def select(i: int) -> np.ndarray:
            start, stop = bounds[i]
            part = distances[start:stop]
            mask = np.isfinite(part) & (part <= threshold)
            return np.nonzero(mask)[0] + start

        return np.concatenate(_map_indexed(executor, select, len(bounds)))
    return select_display_set(
        distances, capacity=capacity,
        n_selection_predicates=n_selection_predicates, method=method,
        percentage=percentage, multipeak_z=multipeak_z,
    )
