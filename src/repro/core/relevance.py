"""Relevance factors and the recursive evaluation of query trees.

The *relevance factor* of a data item is derived from its combined,
normalized distance: items fulfilling the whole query get the maximum
relevance, approximate answers get smaller values the further away they
are.  :class:`RelevanceEvaluator` walks a query tree bottom-up, producing a
:class:`~repro.core.result.NodeFeedback` for every node -- the per-predicate
windows of Figs. 4/5 are rendered straight from these.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.core.combine import CombinationRule, combine
from repro.core.normalization import NORMALIZED_MAX, reduced_normalization
from repro.core.result import NodeFeedback
from repro.query.expr import (
    AndNode,
    NodePath,
    NotNode,
    OrNode,
    PredicateLeaf,
    QueryNode,
    SubqueryNode,
)
from repro.storage.table import Table

__all__ = ["RelevanceScale", "relevance_factors", "RelevanceEvaluator"]


class RelevanceScale(Enum):
    """How normalized combined distances map to relevance factors."""

    #: ``relevance = 1 - d / d_max`` -- linear, 1 for exact answers, 0 for the
    #: most distant displayed answers.
    LINEAR = "linear"
    #: ``relevance = 1 / (1 + d)`` -- the literal "inverse of the distance
    #: value" reading of the paper, compressed towards zero.
    RECIPROCAL = "reciprocal"


def relevance_factors(normalized_distances: np.ndarray,
                      scale: RelevanceScale = RelevanceScale.LINEAR,
                      target_max: float = NORMALIZED_MAX) -> np.ndarray:
    """Convert normalized distances (``[0, target_max]``) to relevance factors.

    Both scales are monotonically decreasing in the distance, so they induce
    the same display ordering; the linear scale is the default because its
    values spread evenly over the colormap.
    """
    distances = np.asarray(normalized_distances, dtype=float)
    if scale is RelevanceScale.LINEAR:
        return np.clip(1.0 - distances / target_max, 0.0, 1.0)
    if scale is RelevanceScale.RECIPROCAL:
        return 1.0 / (1.0 + np.maximum(distances, 0.0))
    raise ValueError(f"unsupported relevance scale: {scale!r}")


class RelevanceEvaluator:
    """Evaluates a query condition tree over a table into per-node feedback.

    Parameters
    ----------
    display_capacity:
        The number of data items the display can show (``r`` in the paper's
        normalization formula); controls the outlier-robust reduced
        normalization of every node.
    target_max:
        Upper bound of the normalized distance range (255 by default).
    """

    def __init__(self, display_capacity: int, target_max: float = NORMALIZED_MAX):
        if display_capacity <= 0:
            raise ValueError("display_capacity must be positive")
        self.display_capacity = display_capacity
        self.target_max = target_max

    # ------------------------------------------------------------------ #
    def evaluate(self, condition: QueryNode, table: Table) -> dict[NodePath, NodeFeedback]:
        """Return a :class:`NodeFeedback` per node path; path ``()`` is the root."""
        feedback: dict[NodePath, NodeFeedback] = {}
        self._evaluate_node(condition, (), table, feedback)
        return feedback

    # ------------------------------------------------------------------ #
    def _evaluate_node(self, node: QueryNode, path: NodePath, table: Table,
                       feedback: dict[NodePath, NodeFeedback]) -> np.ndarray:
        if isinstance(node, PredicateLeaf):
            return self._evaluate_leaf(node, path, table, feedback)
        if isinstance(node, SubqueryNode):
            return self._evaluate_subquery(node, path, table, feedback)
        if isinstance(node, NotNode):
            # Rewrite NOT(a op b) into the inverted comparison; other
            # negations provide no distances (the paper's negation problem).
            simplified = node.simplify()
            return self._evaluate_node(simplified, path, table, feedback)
        if isinstance(node, (AndNode, OrNode)):
            return self._evaluate_composite(node, path, table, feedback)
        raise TypeError(f"unsupported query node type: {type(node).__name__}")

    def _evaluate_leaf(self, node: PredicateLeaf, path: NodePath, table: Table,
                       feedback: dict[NodePath, NodeFeedback]) -> np.ndarray:
        predicate = node.predicate
        signed = np.asarray(predicate.signed_distances(table), dtype=float)
        normalized = reduced_normalization(
            np.abs(signed), node.weight, self.display_capacity, target_max=self.target_max
        )
        feedback[path] = NodeFeedback(
            path=path,
            label=node.label,
            weight=node.weight,
            is_leaf=True,
            normalized_distances=normalized,
            signed_distances=signed if predicate.supports_direction else None,
            exact_mask=np.asarray(predicate.exact_mask(table), dtype=bool),
            raw_distances=np.abs(signed),
        )
        return normalized

    def _evaluate_subquery(self, node: SubqueryNode, path: NodePath, table: Table,
                           feedback: dict[NodePath, NodeFeedback]) -> np.ndarray:
        signed = np.asarray(node.signed_distances(table), dtype=float)
        normalized = reduced_normalization(
            np.abs(signed), node.weight, self.display_capacity, target_max=self.target_max
        )
        feedback[path] = NodeFeedback(
            path=path,
            label=node.label,
            weight=node.weight,
            is_leaf=True,
            normalized_distances=normalized,
            signed_distances=signed,
            exact_mask=np.asarray(node.exact_mask(table), dtype=bool),
            raw_distances=np.abs(signed),
        )
        return normalized

    def _evaluate_composite(self, node: AndNode | OrNode, path: NodePath, table: Table,
                            feedback: dict[NodePath, NodeFeedback]) -> np.ndarray:
        child_columns = []
        for i, child in enumerate(node.children):
            child_columns.append(self._evaluate_node(child, path + (i,), table, feedback))
        matrix = np.column_stack(child_columns)
        weights = np.array([child.weight for child in node.children], dtype=float)
        rule = CombinationRule.AND if isinstance(node, AndNode) else CombinationRule.OR
        combined = combine(rule, matrix, weights)
        # "Before a calculated combined distance is used as a parameter for
        # combining other distances, it is also normalized as described above."
        normalized = reduced_normalization(
            combined, node.weight, self.display_capacity, target_max=self.target_max
        )
        feedback[path] = NodeFeedback(
            path=path,
            label=node.label,
            weight=node.weight,
            is_leaf=False,
            normalized_distances=normalized,
            signed_distances=None,
            exact_mask=node.exact_mask(table),
            raw_distances=combined,
        )
        return normalized
