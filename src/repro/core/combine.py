"""Combining per-predicate distances into a single distance (section 5.2).

For each data item ``x_i`` with normalized per-child distances ``d_ij`` and
child weights ``w_j``:

* ``AND``-connected parts combine via the **weighted arithmetic mean**
  ``sum_j w_j * d_ij`` -- every child contributes, so an item must be close
  to *all* conjuncts to obtain a small combined distance;
* ``OR``-connected parts combine via the **weighted geometric mean**
  ``prod_j d_ij ** w_j`` -- a single exactly-fulfilled child (distance 0)
  drives the combined distance to 0, matching disjunction semantics.

Combined distances are re-normalized before being used as input to the next
tree level (handled by the evaluator, not here).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = ["CombinationRule", "combine_and", "combine_or", "combine", "combine_columns"]


class CombinationRule(Enum):
    """How a composite node combines its children's distances."""

    AND = "and"
    OR = "or"


def _validate(child_distances: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    matrix = np.asarray(child_distances, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("child_distances must be 2-dimensional (items x children)")
    weight_array = np.asarray(weights, dtype=float)
    if weight_array.shape != (matrix.shape[1],):
        raise ValueError(
            f"weights must have one entry per child ({matrix.shape[1]}), "
            f"got shape {weight_array.shape}"
        )
    if np.any((weight_array < 0) | (weight_array > 1)):
        raise ValueError("weights must lie in [0, 1]")
    return matrix, weight_array


def combine_and(child_distances: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Weighted arithmetic mean: ``sum_j w_j * d_ij`` per data item.

    The paper's formula is the plain weighted sum (not divided by the weight
    total); the subsequent re-normalization makes the scale irrelevant.
    """
    matrix, weight_array = _validate(child_distances, weights)
    return matrix @ weight_array


def combine_or(child_distances: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Weighted geometric mean: ``prod_j d_ij ** w_j`` per data item.

    A child with weight 0 contributes a neutral factor of 1 (``0 ** 0 == 1``
    under the NumPy convention), i.e. it is ignored -- which is exactly what
    a zero weighting factor should mean.

    Columns with the default weight 1 skip the (expensive) power evaluation:
    ``x ** 1.0 == x`` exactly, so the result is bit-identical while the
    common interactive case (one reweighted predicate among many defaults)
    costs one power instead of one per child.
    """
    matrix, weight_array = _validate(child_distances, weights)
    # 0 ** w is fine for w > 0; numpy evaluates 0 ** 0 as 1 which is the
    # desired neutral element for ignored children.
    def factor(j: int) -> np.ndarray:
        column = matrix[:, j]
        return column if weight_array[j] == 1.0 else np.power(column, weight_array[j])

    result = np.array(factor(0), copy=True)
    for j in range(1, matrix.shape[1]):
        result *= factor(j)
    return result


def combine(rule: CombinationRule, child_distances: np.ndarray,
            weights: np.ndarray) -> np.ndarray:
    """Dispatch to :func:`combine_and` or :func:`combine_or`."""
    if rule is CombinationRule.AND:
        return combine_and(child_distances, weights)
    if rule is CombinationRule.OR:
        return combine_or(child_distances, weights)
    raise ValueError(f"unsupported combination rule: {rule!r}")


def combine_columns(rule: CombinationRule, columns: list[np.ndarray],
                    weights: np.ndarray) -> np.ndarray:
    """Combine already-separate child columns without stacking them first.

    Semantically equivalent to ``combine(rule, np.column_stack(columns),
    weights)`` but avoids materialising the (items x children) matrix -- the
    incremental engine holds each child's normalized column individually, so
    stacking would copy every column on every re-execution.
    """
    weight_array = np.asarray(weights, dtype=float)
    if len(columns) == 0 or weight_array.shape != (len(columns),):
        raise ValueError(
            f"weights must have one entry per child ({len(columns)}), "
            f"got shape {weight_array.shape}"
        )
    if np.any((weight_array < 0) | (weight_array > 1)):
        raise ValueError("weights must lie in [0, 1]")
    if len(columns) == 1 and weight_array[0] == 1.0:
        # Single default-weight child under either rule: the combined
        # column *is* the child column (``x * 1.0 == x`` and
        # ``x ** 1.0 == x`` exactly).  Share the cached array rather than
        # copying it -- callers treat combined columns as read-only (the
        # evaluator freezes or copy-on-write-patches them), so aliasing
        # the child is safe.  Multi-child combinations below still copy:
        # the first column doubles as the accumulator there.
        return columns[0]
    if rule is CombinationRule.AND:
        # ``x * 1.0 == x`` exactly, so default-weight columns skip the
        # scaling pass and accumulate directly.
        first = weight_array[0]
        result = columns[0].copy() if first == 1.0 else columns[0] * first
        for column, weight in zip(columns[1:], weight_array[1:]):
            if weight == 1.0:
                result += column
            else:
                result += column * weight
        return result
    if rule is CombinationRule.OR:
        def factor(column: np.ndarray, weight: float) -> np.ndarray:
            return column if weight == 1.0 else np.power(column, weight)

        result = np.array(factor(columns[0], weight_array[0]), copy=True)
        for column, weight in zip(columns[1:], weight_array[1:]):
            result *= factor(column, weight)
        return result
    raise ValueError(f"unsupported combination rule: {rule!r}")
