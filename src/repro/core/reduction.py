"""Heuristics to reduce the amount of data displayed (paper section 5.1).

The number of data items that can be represented is bounded by the number
of pixels, so VisDB must decide *which* distances to show:

* **α-quantile cut** -- present the items whose combined distance lies in
  ``[0, p-quantile]`` where ``p = r / (n · (#sp + 1))``: ``r`` distance
  values fit on screen, and each item produces one value per selection
  predicate plus one for the overall result.
* **Signed window** -- when distances carry direction, the window
  ``[α₀·(1−p), α₀·(1−p)+p]`` of quantiles around the zero point is used,
  where ``α₀`` is the quantile at which the distance is 0.
* **Multi-peak heuristic** -- when the distance density has several peaks it
  is better to cut between the peaks: for candidate cut ranks
  ``i ∈ [r_min, r_max]`` compute ``s_i = Σ_{j=i−z..i+z} |d_i − d_j|`` over the
  sorted distances and cut at the rank with the largest ``s_i`` (the widest
  local gap).  The incremental evaluation is O(z + r_max − r_min).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

import numpy as np

__all__ = [
    "ReductionMethod",
    "display_fraction",
    "quantile_threshold",
    "select_by_quantile",
    "signed_quantile_window",
    "multipeak_cut",
    "select_display_set",
    "TopKCandidates",
    "topk_candidates",
    "merge_topk_candidates",
    "merge_topk_candidates_many",
    "resolve_topk",
    "DistanceBoundsPartial",
    "distance_bounds_partial",
    "empty_distance_bounds",
    "merge_distance_bounds",
    "merge_distance_bounds_many",
    "resolve_distance_bounds",
    "EMPTY_SHARD_SUMMARY",
    "shard_summary",
    "summaries_from_partials",
    "EMPTY_QUANTILE_COUNTS",
    "quantile_rank_bounds",
    "quantile_shard_counts",
    "quantile_certificate",
]


class ReductionMethod(Enum):
    """Which heuristic decides how many items are displayed."""

    QUANTILE = "quantile"
    MULTIPEAK = "multipeak"
    PERCENTAGE = "percentage"


def display_fraction(pixel_budget: int, n_items: int, n_selection_predicates: int) -> float:
    """The paper's ``p = r / (n · (#sp + 1))`` clipped into ``[0, 1]``.

    ``pixel_budget`` is ``r`` -- how many distance values fit on the screen;
    each data item consumes ``#sp + 1`` of them (one per predicate window
    plus the overall window).
    """
    if pixel_budget <= 0:
        raise ValueError("pixel_budget must be positive")
    if n_selection_predicates < 0:
        raise ValueError("n_selection_predicates must be non-negative")
    if n_items <= 0:
        return 1.0
    return float(np.clip(pixel_budget / (n_items * (n_selection_predicates + 1)), 0.0, 1.0))


def quantile_threshold(distances: np.ndarray, p: float) -> float:
    """The ``p``-quantile of the finite distances (NaN-safe)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    distances = np.asarray(distances, dtype=float)
    finite = distances[np.isfinite(distances)]
    if len(finite) == 0:
        return float("nan")
    return float(np.quantile(finite, p))


def select_by_quantile(distances: np.ndarray, p: float) -> np.ndarray:
    """Indices of items whose distance lies in ``[0, p-quantile]``.

    NaN distances (undefined) are never selected.  The number of selected
    items can slightly exceed ``p·n`` when there are ties at the threshold,
    matching the quantile definition in the paper.
    """
    distances = np.asarray(distances, dtype=float)
    threshold = quantile_threshold(distances, p)
    if np.isnan(threshold):
        return np.empty(0, dtype=np.intp)
    mask = np.isfinite(distances) & (distances <= threshold)
    return np.nonzero(mask)[0]


def signed_quantile_window(signed_distances: np.ndarray, p: float) -> np.ndarray:
    """Display window for signed distances: quantiles ``[α₀(1−p), α₀(1−p)+p]``.

    ``α₀`` is the quantile of the value 0 (the fraction of negative
    distances), so the retained window always brackets the correct answers
    and extends ``p`` quantile-mass across them, exactly as in section 5.1.
    Returns the indices of the retained items.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    signed = np.asarray(signed_distances, dtype=float)
    finite_mask = np.isfinite(signed)
    finite = signed[finite_mask]
    if len(finite) == 0:
        return np.empty(0, dtype=np.intp)
    alpha0 = float(np.mean(finite < 0.0))
    low_q = alpha0 * (1.0 - p)
    high_q = min(low_q + p, 1.0)
    low = np.quantile(finite, low_q)
    high = np.quantile(finite, high_q)
    mask = finite_mask & (signed >= low) & (signed <= high)
    return np.nonzero(mask)[0]


def multipeak_cut(sorted_distances: np.ndarray, r_min: int, r_max: int, z: int | None = None) -> int:
    """Choose the display cut-off rank for multi-peaked distance densities.

    Parameters
    ----------
    sorted_distances:
        Distances sorted in ascending order.
    r_min, r_max:
        The acceptable range for the number of displayed items.
    z:
        Half-width of the neighbourhood used for the gap statistic
        ``s_i = Σ_{j=i−z..i+z} |d_i − d_j|``.  The paper requires
        ``2 < z ≪ r_max − r_min``; the default is ``max(3, (r_max−r_min)//10)``.

    Returns
    -------
    The rank (number of items to display) with the largest ``s_i``, i.e. the
    cut sits just inside the widest local gap of the sorted distances.
    """
    distances = np.asarray(sorted_distances, dtype=float)
    n = len(distances)
    if n == 0:
        return 0
    if np.any(np.diff(distances) < -1e-12):
        raise ValueError("sorted_distances must be sorted in ascending order")
    r_min = int(np.clip(r_min, 1, n))
    r_max = int(np.clip(r_max, r_min, n))
    if z is None:
        z = max(3, (r_max - r_min) // 10)
    if z < 1:
        raise ValueError("z must be at least 1")
    # For ascending d and window j in [i-z, i+z]:
    #   s_i = sum_{j>i} (d_j - d_i) + sum_{j<i} (d_i - d_j)
    #       = (suffix window sum) - (prefix window sum) + d_i * (#prefix - #suffix)
    # computed with a cumulative sum in O(n).
    cumulative = np.concatenate(([0.0], np.cumsum(distances)))

    def window_sum(lo: int, hi: int) -> float:
        """Sum of distances over ranks [lo, hi) clipped to the valid range."""
        lo = max(lo, 0)
        hi = min(hi, n)
        if hi <= lo:
            return 0.0
        return float(cumulative[hi] - cumulative[lo])

    best_rank = r_min
    best_score = -np.inf
    for rank in range(r_min, r_max + 1):
        i = rank - 1  # index of the last displayed item
        prefix_lo, prefix_hi = i - z, i
        suffix_lo, suffix_hi = i + 1, i + z + 1
        n_prefix = max(0, min(prefix_hi, n) - max(prefix_lo, 0))
        n_suffix = max(0, min(suffix_hi, n) - max(suffix_lo, 0))
        score = (
            window_sum(suffix_lo, suffix_hi)
            - window_sum(prefix_lo, prefix_hi)
            + distances[i] * (n_prefix - n_suffix)
        )
        if score > best_score:
            best_score = score
            best_rank = rank
    return best_rank


# --------------------------------------------------------------------------- #
# Sharded displayed-set merge algebra
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TopKCandidates:
    """Mergeable partial result of the percentage (top-``target``) selection.

    One partial summarises one row range (shard) of the distance column: the
    global row indices and (NaN-masked, so non-finite becomes ``+inf``)
    distance values of every row that could still enter the global displayed
    set, plus the number of rows the partial has seen.

    The candidate rule keeps every row whose value is ``<=`` the partial's
    ``target``-th smallest value -- *including all ties* at that boundary.
    Keeping the full tie group (rather than truncating to ``target`` rows)
    is what makes :func:`merge_topk_candidates` associative and
    order-independent: tie-breaking by ascending row index happens exactly
    once, in :func:`resolve_topk`, reproducing the stable-argsort tie rule
    of the monolithic :func:`select_display_set`.
    """

    target: int
    indices: np.ndarray
    values: np.ndarray
    count: int

    def __post_init__(self) -> None:
        if self.target < 1:
            raise ValueError("target must be at least 1")
        if len(self.indices) != len(self.values):
            raise ValueError("indices and values must have equal length")


def _candidate_cut(indices: np.ndarray, values: np.ndarray,
                   target: int) -> tuple[np.ndarray, np.ndarray]:
    """Keep rows with value <= the target-th smallest value (ties included)."""
    if len(values) <= target:
        return indices, values
    threshold = values[np.argpartition(values, target - 1)[target - 1]]
    keep = values <= threshold
    return indices[keep], values[keep]


def topk_candidates(distances: np.ndarray, target: int, offset: int = 0) -> TopKCandidates:
    """Build the partial for one shard of the distance column.

    ``offset`` is the shard's first global row number; non-finite distances
    are masked to ``+inf`` exactly as the monolithic percentage selection
    masks them, so merged partials reproduce its threshold bit-for-bit.
    """
    distances = np.asarray(distances, dtype=float)
    finite = np.isfinite(distances)
    masked = distances if finite.all() else np.where(finite, distances, np.inf)
    indices = np.arange(offset, offset + len(masked), dtype=np.intp)
    indices, values = _candidate_cut(indices, masked, target)
    return TopKCandidates(target=target, indices=indices, values=values,
                          count=len(distances))


def merge_topk_candidates(a: TopKCandidates, b: TopKCandidates) -> TopKCandidates:
    """Merge two partials (associative, commutative up to row order).

    The merged candidate set is the union filtered by the union's
    ``target``-th smallest value.  Every row of the true global displayed
    set survives any merge order: a row among the ``target`` smallest of the
    union is among the ``target`` smallest of each sub-union it appears in,
    so no intermediate cut can drop it.
    """
    if a.target != b.target:
        raise ValueError(f"cannot merge partials with targets {a.target} != {b.target}")
    indices = np.concatenate([a.indices, b.indices])
    values = np.concatenate([a.values, b.values])
    indices, values = _candidate_cut(indices, values, a.target)
    return TopKCandidates(target=a.target, indices=indices, values=values,
                          count=a.count + b.count)


def merge_topk_candidates_many(partials: Sequence[TopKCandidates]) -> TopKCandidates:
    """Merge many partials with one concatenation and a single cut.

    Produces exactly the candidate set a pairwise :func:`merge_topk_candidates`
    reduction would: every intermediate pairwise threshold is >= the final
    union threshold, so the survivors of either merge order are precisely
    the rows whose value is <= the union's ``target``-th smallest value.
    One cut over the full concatenation does the same work once instead of
    re-partitioning after every pairwise step -- the shape the incremental
    displayed-set maintenance hits every event (S cached partials, a few
    fresh ones).
    """
    if not partials:
        raise ValueError("merge_topk_candidates_many needs at least one partial")
    target = partials[0].target
    for partial in partials[1:]:
        if partial.target != target:
            raise ValueError(
                f"cannot merge partials with targets {target} != {partial.target}"
            )
    indices = np.concatenate([p.indices for p in partials])
    values = np.concatenate([p.values for p in partials])
    indices, values = _candidate_cut(indices, values, target)
    return TopKCandidates(target=target, indices=indices, values=values,
                          count=sum(p.count for p in partials))


def resolve_topk(partial: TopKCandidates) -> np.ndarray:
    """Final displayed set from a fully merged partial (sorted row indices).

    Bit-identical to the monolithic percentage path of
    :func:`select_display_set`: the ``target`` smallest values win, with
    ties at the threshold broken by ascending global row index.
    """
    target, n = partial.target, partial.count
    if target >= n:
        return np.arange(n, dtype=np.intp)
    values, indices = partial.values, partial.indices
    threshold = values[np.argpartition(values, target - 1)[target - 1]]
    below = indices[values < threshold]
    ties = np.sort(indices[values == threshold])[: target - len(below)]
    return np.sort(np.concatenate([below, ties]))


def select_display_set(distances: np.ndarray, capacity: int, n_selection_predicates: int,
                       method: ReductionMethod = ReductionMethod.QUANTILE,
                       percentage: float | None = None,
                       multipeak_slack: float = 0.5,
                       multipeak_z: int | None = None) -> np.ndarray:
    """Select the indices of the data items to display, by the chosen heuristic.

    ``capacity`` is the pixel budget ``r`` (distance values displayable).
    ``percentage`` (0..1] overrides the capacity-derived fraction when the
    user sets the "% displayed" slider explicitly.
    """
    distances = np.asarray(distances, dtype=float)
    n = len(distances)
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if method is ReductionMethod.PERCENTAGE or percentage is not None:
        if percentage is None:
            raise ValueError("percentage reduction requires a percentage value")
        if not 0.0 < percentage <= 1.0:
            raise ValueError(f"percentage must be in (0, 1], got {percentage}")
        target = max(1, int(round(percentage * n)))
        finite = np.isfinite(distances)
        masked = distances if finite.all() else np.where(finite, distances, np.inf)
        if target >= n:
            return np.arange(n, dtype=np.intp)
        # The displayed set is the ``target`` smallest distances with ties
        # broken by ascending index (what a stable argsort would select);
        # a partition plus explicit tie handling finds the same set in O(n)
        # instead of O(n log n).
        threshold = masked[np.argpartition(masked, target - 1)[target - 1]]
        below = np.nonzero(masked < threshold)[0]
        ties = np.nonzero(masked == threshold)[0][: target - len(below)]
        return np.sort(np.concatenate([below, ties]))
    p = display_fraction(capacity, n, n_selection_predicates)
    if method is ReductionMethod.QUANTILE:
        return select_by_quantile(distances, p)
    if method is ReductionMethod.MULTIPEAK:
        return _select_multipeak(distances, p, multipeak_slack, multipeak_z)
    raise ValueError(f"unsupported reduction method: {method!r}")


def _select_multipeak(distances: np.ndarray, p: float,
                      multipeak_slack: float,
                      multipeak_z: int | None) -> np.ndarray:
    n = len(distances)
    finite_order = np.argsort(np.where(np.isfinite(distances), distances, np.inf),
                              kind="stable")
    n_finite = int(np.sum(np.isfinite(distances)))
    if n_finite == 0:
        return np.empty(0, dtype=np.intp)
    target = max(1, int(round(p * n)))
    r_min = max(1, int(round(target * (1.0 - multipeak_slack))))
    r_max = min(n_finite, max(r_min, int(round(target * (1.0 + multipeak_slack)))))
    sorted_distances = distances[finite_order[:n_finite]]
    cut = multipeak_cut(sorted_distances, r_min, r_max, z=multipeak_z)
    return np.sort(finite_order[:cut])


# --------------------------------------------------------------------------- #
# Mergeable normalization-bounds algebra
# --------------------------------------------------------------------------- #
# Lives here (not in repro.core.shard) so that worker processes of the
# ``process`` execution backend can construct and summarise partials over
# their shard spans without importing the plan/evaluator machinery: this
# module depends on NumPy only.  :mod:`repro.core.shard` re-exports every
# name for its callers and keeps the merge/resolve responsibilities on the
# coordinator.

@dataclass(frozen=True)
class DistanceBoundsPartial:
    """Mergeable summary of one shard's finite distances.

    Retains the ``min(capacity, count)`` smallest finite values (as a
    multiset, order irrelevant), the finite maximum and the finite count --
    enough to resolve, after merging all shards, the exact global ``d_min``
    and the exact global ``keep``-th smallest value ``d_max`` that
    :func:`~repro.core.normalization.reduced_normalization` computes, for
    any ``keep <= capacity``.

    The merge is associative and commutative: the smallest-``k`` multiset of
    a union equals the smallest-``k`` of the two sides' smallest-``k``
    multisets, maxima and counts merge trivially, and the empty partial
    (an all-NaN or zero-row shard) is the identity element.
    """

    capacity: int
    count: int
    smallest: np.ndarray
    maximum: float

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if len(self.smallest) != min(self.capacity, self.count):
            raise ValueError("partial must retain min(capacity, count) values")


def empty_distance_bounds(capacity: int) -> DistanceBoundsPartial:
    """The merge identity: a shard with no finite values."""
    return DistanceBoundsPartial(
        capacity=capacity, count=0,
        smallest=np.empty(0, dtype=float), maximum=float("-inf"),
    )


def distance_bounds_partial(values: np.ndarray, capacity: int) -> DistanceBoundsPartial:
    """Summarise one shard of a distance column (NaN/inf values are skipped)."""
    values = np.asarray(values, dtype=float)
    finite = values[np.isfinite(values)] if len(values) else values
    if len(finite) > capacity:
        smallest = np.partition(finite, capacity - 1)[:capacity]
    else:
        smallest = finite.copy()
    maximum = float(finite.max()) if len(finite) else float("-inf")
    return DistanceBoundsPartial(
        capacity=capacity, count=len(finite), smallest=smallest, maximum=maximum
    )


def merge_distance_bounds(a: DistanceBoundsPartial,
                          b: DistanceBoundsPartial) -> DistanceBoundsPartial:
    """Merge two partials of the same capacity (associative, commutative)."""
    if a.capacity != b.capacity:
        raise ValueError(f"cannot merge partials with capacities {a.capacity} != {b.capacity}")
    smallest = np.concatenate([a.smallest, b.smallest])
    if len(smallest) > a.capacity:
        smallest = np.partition(smallest, a.capacity - 1)[: a.capacity]
    return DistanceBoundsPartial(
        capacity=a.capacity,
        count=a.count + b.count,
        smallest=smallest,
        maximum=max(a.maximum, b.maximum),
    )


def merge_distance_bounds_many(partials: "list[DistanceBoundsPartial]") -> DistanceBoundsPartial:
    """Merge many partials with one concatenation and a single partition.

    Resolves to exactly the same ``(d_min, d_max)`` as a pairwise
    :func:`merge_distance_bounds` reduction (the smallest-``k`` multiset of a
    union is merge-order-independent), but does the selection work once --
    the shape the per-shard slice cache hits on every event, where most
    partials come from the cache and only the dirty shards' are fresh.
    """
    if not partials:
        raise ValueError("merge_distance_bounds_many needs at least one partial")
    capacity = partials[0].capacity
    for partial in partials[1:]:
        if partial.capacity != capacity:
            raise ValueError(
                f"cannot merge partials with capacities {capacity} != {partial.capacity}"
            )
    if len(partials) == 1:
        return partials[0]
    smallest = np.concatenate([p.smallest for p in partials])
    if len(smallest) > capacity:
        smallest = np.partition(smallest, capacity - 1)[:capacity]
    return DistanceBoundsPartial(
        capacity=capacity,
        count=sum(p.count for p in partials),
        smallest=smallest,
        maximum=max(p.maximum for p in partials),
    )


def resolve_distance_bounds(partial: DistanceBoundsPartial,
                            keep: int | None = None) -> tuple[float, float] | None:
    """The global ``(d_min, d_max)`` of the merged column, or None if no finite value.

    ``keep`` defaults to the partial's capacity and must not exceed it.
    Both bounds are exact elements of the original column, so they equal --
    bit for bit -- what the monolithic
    :func:`~repro.core.normalization.reduced_normalization` derives.
    """
    keep = partial.capacity if keep is None else keep
    if not 1 <= keep <= partial.capacity:
        raise ValueError(f"keep must be in [1, {partial.capacity}], got {keep}")
    if partial.count == 0:
        return None
    if keep >= partial.count:
        d_max = partial.maximum
    else:
        d_max = float(np.partition(partial.smallest, keep - 1)[keep - 1])
    return float(partial.smallest.min()), d_max


#: Summary row of a shard with no finite values (the counting identity).
EMPTY_SHARD_SUMMARY = (0.0, float("inf"), float("-inf"), 0.0, 0.0)


def shard_summary(values: np.ndarray, d_max: float) -> tuple:
    """Order-statistic summary of one shard against a candidate ``d_max``.

    Returns ``(finite_count, min, max, count < d_max, count <= d_max)``.
    Comparisons against a NaN ``d_max`` (an all-NaN previous resolve) are
    all False, yielding zero counts -- which can never certify, only force
    the full resolve, so a stale ``d_max`` stays harmless.
    """
    values = np.asarray(values, dtype=float)
    finite = np.isfinite(values)
    if not finite.any():
        return EMPTY_SHARD_SUMMARY
    finite_values = values[finite] if not finite.all() else values
    return (
        float(len(finite_values)),
        float(finite_values.min()),
        float(finite_values.max()),
        float(np.count_nonzero(finite_values < d_max)),
        float(np.count_nonzero(finite_values <= d_max)),
    )


def summaries_from_partials(partials: "Sequence[DistanceBoundsPartial]",
                            resolved: tuple[float, float] | None) -> np.ndarray:
    """Per-shard summary rows derived from bounds partials (no column pass).

    Every value below ``d_max`` is retained in a partial's
    smallest-``capacity`` multiset, and an undercounted ``count<=`` -- ties
    cut beyond the capacity -- can only fail a future certificate early,
    never falsely pass it.  With ``resolved`` None (no finite value in the
    column) every row is the counting identity.
    """
    if resolved is None:
        return np.asarray([EMPTY_SHARD_SUMMARY] * len(partials), dtype=float)
    d_max = resolved[1]
    rows = []
    for partial in partials:
        if partial.count == 0:
            rows.append(EMPTY_SHARD_SUMMARY)
            continue
        smallest = partial.smallest
        rows.append((
            float(partial.count),
            float(smallest.min()) if len(smallest) else float("inf"),
            float(partial.maximum),
            float(np.count_nonzero(smallest < d_max)),
            float(np.count_nonzero(smallest <= d_max)),
        ))
    return np.asarray(rows, dtype=float)


#: Counting row of a shard with no finite values for the quantile
#: certificate (the counting identity).
EMPTY_QUANTILE_COUNTS = (0.0, 0.0, 0.0, 0.0, 0.0)


def quantile_rank_bounds(m: int, p: float) -> tuple[int, int]:
    """0-based ranks of the order statistics ``np.quantile`` interpolates.

    With the default linear interpolation the ``p``-quantile of ``m``
    sorted finite values is a function of exactly two order statistics:
    the values at ranks ``floor(h)`` and ``ceil(h)`` where
    ``h = p * (m - 1)`` (the same virtual index numpy computes).  Proving
    those two values unchanged therefore proves the quantile *float*
    unchanged, without ever reproducing the interpolation arithmetic.
    """
    if m <= 0:
        return 0, 0
    h = p * (m - 1)
    return int(np.floor(h)), int(np.ceil(h))


def quantile_shard_counts(values: np.ndarray, v_lo: float, v_hi: float) -> tuple:
    """Counting row of one shard against the two quantile order statistics.

    Returns ``(finite_count, count < v_lo, count <= v_lo, count < v_hi,
    count <= v_hi)``.  Comparisons against NaN bounds (an all-NaN column)
    are all False, yielding zero counts -- which can only fail a future
    certificate, never falsely pass it.
    """
    values = np.asarray(values, dtype=float)
    finite = np.isfinite(values)
    if not finite.any():
        return EMPTY_QUANTILE_COUNTS
    finite_values = values[finite] if not finite.all() else values
    return (
        float(len(finite_values)),
        float(np.count_nonzero(finite_values < v_lo)),
        float(np.count_nonzero(finite_values <= v_lo)),
        float(np.count_nonzero(finite_values < v_hi)),
        float(np.count_nonzero(finite_values <= v_hi)),
    )


def quantile_certificate(totals: np.ndarray, m: int, k_lo: int, k_hi: int) -> bool:
    """Do summed counting rows prove the cached order statistics still hold?

    ``totals`` is the column-wise sum of :func:`quantile_shard_counts`
    rows (clean shards cached, dirty shards recounted).  The cached value
    ``v`` is still the rank-``k`` order statistic iff
    ``count(< v) <= k < count(<= v)`` -- the same counting argument the
    displayed-set and bounds certificates use.  The finite count must also
    be unchanged, because ``m`` itself determines the ranks.
    """
    if int(totals[0]) != m:
        return False
    if m == 0:
        return True
    return (totals[1] <= k_lo < totals[2]) and (totals[3] <= k_hi < totals[4])
