"""The prepared-query engine: assemble once, re-execute incrementally.

The whole point of VisDB is the interactive loop -- the user drags a slider
or a weighting factor and the system re-renders feedback fast enough to
steer the query.  :class:`QueryEngine` is the seam that makes that loop
cheap: ``engine.prepare(query)`` assembles the evaluation table once (the
cross product of joined tables is materialised a single time and cached),
compiles the condition tree into a fingerprinted execution plan and owns
the caches that carry per-leaf distance columns across re-executions.

:meth:`PreparedQuery.execute` then recomputes only what a modification
actually invalidated:

* ``SetWeight`` reuses every raw leaf column and redoes only the
  normalization/combination along the changed path;
* ``SetQueryRange`` / ``SetThreshold`` recompute exactly one leaf, with the
  fulfilment set of range predicates served through a
  :class:`~repro.storage.cache.PrefetchCache` backed by
  :class:`~repro.storage.index.SortedIndex` range indexes;
* ``SetPercentageDisplayed`` touches only reduction/normalization -- no
  pipeline object is rebuilt and no distances are recomputed.

:class:`~repro.core.pipeline.VisualFeedbackQuery` remains as a thin
backwards-compatible facade over this engine.
"""

from __future__ import annotations

import copy
import itertools
import os
import threading
from dataclasses import dataclass, field, replace
from typing import Sequence, Union

import numpy as np

from repro.core.chunks import as_chunked
from repro.core.normalization import NORMALIZED_MAX
from repro.obs import trace as obs
from repro.core.plan import (
    CacheStats,
    CompositePlan,
    EvaluationCache,
    LeafPlan,
    PlanEvaluator,
    compile_plan,
)
from repro.core.reduction import (
    ReductionMethod,
    display_fraction,
    EMPTY_QUANTILE_COUNTS,
    merge_topk_candidates_many,
    quantile_certificate,
    quantile_rank_bounds,
    quantile_shard_counts,
    select_display_set,
    topk_candidates,
)
from repro.core.shard import (
    ShardedPlanEvaluator,
    ShardedTable,
    pool_user,
    resolve_worker_count,
    shared_executor,
    sharded_select_display_set,
    shutdown_executors,
)
from repro.core.relevance import RelevanceScale, relevance_factors
from repro.core.result import (
    FeedbackDelta,
    FeedbackFrame,
    FeedbackStatistics,
    QueryFeedback,
)
from repro.query.builder import Query
from repro.query.expr import AndNode, NodePath, PredicateLeaf, QueryNode
from repro.query.fingerprint import stable_fingerprint
from repro.query.parser import parse_condition, parse_query
from repro.query.predicates import AttributePredicate, RangePredicate
from repro.storage.cache import PrefetchCache
from repro.storage.cross_product import CrossProduct
from repro.storage.database import Database
from repro.storage.index import SortedIndex
from repro.storage.table import Table

__all__ = ["ScreenSpec", "PipelineConfig", "QueryEngine", "PreparedQuery",
           "default_backend_name", "default_shard_count"]


def default_backend_name() -> str:
    """Execution backend used when the config leaves ``backend`` unset.

    Reads the ``REPRO_BACKEND`` environment variable (the CI
    ``backend-process`` leg runs the suite with ``REPRO_BACKEND=process``);
    unset or empty means ``"threads"``, the classic in-process path.  A
    name that is set but not registered raises ``ValueError`` listing the
    registered backends -- the same fail-fast contract as
    :func:`default_shard_count`.
    """
    from repro.backend import available_backends

    value = os.environ.get("REPRO_BACKEND", "").strip()
    if not value:
        return "threads"
    if value not in available_backends():
        known = ", ".join(available_backends()) or "(none)"
        raise ValueError(
            f"REPRO_BACKEND names an unknown execution backend {value!r}; "
            f"registered backends: {known}"
        )
    return value


def default_shard_count() -> int:
    """Shard count used when the config leaves ``shard_count`` unset.

    Reads the ``REPRO_SHARDS`` environment variable (the CI differential
    matrix leg runs the whole suite with ``REPRO_SHARDS=4``); unset or
    empty means 1, i.e. the classic monolithic execution.  A value that is
    set but not a positive integer raises ``ValueError`` immediately --
    silently falling back to 1 here used to turn a typo in a service
    deployment into an unexplained single-shard slowdown.
    """
    value = os.environ.get("REPRO_SHARDS", "").strip()
    if not value:
        return 1
    try:
        count = int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_SHARDS must be a positive integer, got {value!r}"
        ) from None
    if count < 1:
        raise ValueError(f"REPRO_SHARDS must be a positive integer, got {value!r}")
    return count


@dataclass(frozen=True)
class ScreenSpec:
    """Display size in pixels.

    The default is the paper's 19-inch display (1,024 x 1,280 = about 1.3
    million pixels), "the obvious limit for any kind of visualization".
    """

    width: int = 1280
    height: int = 1024

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("screen dimensions must be positive")

    @property
    def pixels(self) -> int:
        """Total number of pixels available for distance values."""
        return self.width * self.height


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable parameters of the visual-feedback pipeline."""

    #: Physical display; bounds how many distance values can be shown.
    screen: ScreenSpec = field(default_factory=ScreenSpec)
    #: Each data item is represented by 1, 4 or 16 pixels (paper section 4.2).
    pixels_per_item: int = 1
    #: Heuristic choosing how many data items are displayed.
    reduction: ReductionMethod = ReductionMethod.QUANTILE
    #: User-chosen fraction of the data to display (overrides the heuristics).
    percentage: float | None = None
    #: Mapping from normalized combined distance to relevance factor.
    relevance_scale: RelevanceScale = RelevanceScale.LINEAR
    #: Cap on the number of cross-product pairs materialised for joins.
    max_join_pairs: int | None = 250_000
    #: Seed for deterministic cross-product sampling.
    join_seed: int = 0
    #: Upper end of the normalized distance range.
    target_max: float = NORMALIZED_MAX
    #: Half-width parameter z for the multi-peak heuristic (None = automatic).
    multipeak_z: int | None = None
    #: Row-range shards the evaluation table is split into.  None defers to
    #: the ``REPRO_SHARDS`` environment variable (default 1 = monolithic);
    #: any value keeps results bit-identical -- sharding only changes *how*
    #: the same arrays are computed.
    shard_count: int | None = None
    #: Worker threads for per-shard work (None = CPU count, capped at the
    #: shard count; 1 runs inline without a pool).
    max_workers: int | None = None
    #: Dirty-shard tracking for sharded execution: per-node slice caching,
    #: incremental bounds/top-k maintenance and displayed-set patching.
    #: Off means every event pays the full per-shard renormalize/recombine/
    #: select pass (the pre-incremental behaviour); results are
    #: bit-identical either way.
    incremental_shards: bool = True
    #: Execution backend for sharded work ("threads", "process", or any
    #: name registered via :func:`repro.backend.register_backend`).  None
    #: defers to the ``REPRO_BACKEND`` environment variable (default
    #: "threads"); every backend is bit-identical -- like sharding, it
    #: only changes *where* the same arrays are computed.
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.pixels_per_item not in (1, 4, 16):
            raise ValueError("pixels_per_item must be 1, 4 or 16")
        if self.percentage is not None and not 0.0 < self.percentage <= 1.0:
            raise ValueError("percentage must be in (0, 1]")
        if not isinstance(self.incremental_shards, bool):
            raise ValueError(
                f"incremental_shards must be a bool, got {self.incremental_shards!r}"
            )
        for name in ("shard_count", "max_workers"):
            value = getattr(self, name)
            if value is None:
                continue
            # Reject non-integers (strings from a config file, floats,
            # bools) up front: a "4" would only blow up deep inside the
            # thread-pool sizing with an unrelated TypeError.
            if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
                raise ValueError(
                    f"{name} must be a positive integer or None, got {value!r}"
                )
            if value < 1:
                raise ValueError(
                    f"{name} must be a positive integer or None, got {value!r}"
                )
        if self.backend is not None:
            from repro.backend import available_backends

            if not isinstance(self.backend, str):
                raise ValueError(
                    f"backend must be a registered backend name or None, "
                    f"got {self.backend!r}"
                )
            if self.backend not in available_backends():
                known = ", ".join(available_backends()) or "(none)"
                raise ValueError(
                    f"unknown execution backend {self.backend!r}; "
                    f"registered backends: {known}"
                )

    def with_(self, **changes) -> "PipelineConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **changes)


QuerySource = Union[Query, QueryNode, str]

#: Slice-site namespace tokens, one per PreparedQuery (regenerated when the
#: query shape changes wholesale, which orphans -- i.e. invalidates -- every
#: slice entry of the old plan).
_SLICE_TOKENS = itertools.count(1)


def _plan_shape(plan) -> tuple:
    """Structural identity of a compiled plan, ignoring mutable parameters.

    Two plans share a shape when they have the same tree of composites and
    leaves over the same attributes/predicate kinds -- exactly the states
    between which per-site dirty-shard patching is meaningful.  Bounds and
    weights are deliberately excluded: those are what the events move.
    """
    if isinstance(plan, LeafPlan):
        predicate = getattr(plan.node, "predicate", None)
        return (
            "leaf",
            type(plan.node).__name__,
            type(predicate).__name__ if predicate is not None else None,
            getattr(predicate, "attribute", None),
        )
    if isinstance(plan, CompositePlan):
        return (str(plan.rule), tuple(_plan_shape(child) for child in plan.children))
    return (type(plan).__name__,)


@dataclass
class _DisplayedState:
    """Cached displayed-set decomposition for the percentage reduction.

    ``threshold`` is the resolved ``target``-th smallest (NaN-masked)
    distance; ``below``/``ties`` hold, per shard, the ascending global row
    indices strictly below / exactly at the threshold.  An event then only
    rebuilds the dirty shards' lists and re-certifies the threshold by
    counting -- ``sum(len(below)) < target <= sum(len(below) + len(ties))``
    proves the target-th smallest is still the cached threshold -- after
    which the displayed set reassembles in O(target) under the stable tie
    rule (smallest global row indices win at the boundary).
    """

    column_key: str
    target: int
    n: int
    threshold: float
    below: tuple
    ties: tuple
    displayed: np.ndarray


@dataclass
class _QuantileState:
    """Cached quantile-reduction decomposition for one column identity.

    ``np.quantile``'s linear interpolation makes the threshold a function
    of exactly two order statistics of the ``m`` finite distances --
    ``v_lo``/``v_hi`` at ranks ``k_lo``/``k_hi`` (see
    :func:`~repro.core.reduction.quantile_rank_bounds`).  ``counts`` holds
    the per-shard :func:`~repro.core.reduction.quantile_shard_counts`
    rows; an event recounts only the dirty shards and the summed rows
    certify (or refute) that both order statistics still hold, in which
    case the cached threshold *float* is provably unchanged and only the
    dirty shards' ``selected`` index lists rebuild.  Certificate failure
    falls back to the exact concatenate-and-quantile path, so the
    displayed set stays bit-identical either way.
    """

    column_key: str
    n: int
    p: float
    m: int
    threshold: float
    k_lo: int
    k_hi: int
    v_lo: float
    v_hi: float
    #: Per-shard counting rows, shape ``(shards, 5)``.
    counts: np.ndarray
    #: Per-shard ascending global row indices with distance <= threshold.
    selected: tuple
    displayed: np.ndarray


@dataclass
class _RelevanceState:
    """Cached relevance column for one overall-distance column identity."""

    column_key: str
    scale: RelevanceScale
    target_max: float
    relevance: np.ndarray


@dataclass
class _ResultCountState:
    """Per-shard popcounts of the root fulfilment mask for one column identity.

    ``result_count`` used to be the last O(n) statistic recomputed on every
    event (a full popcount of the root exact mask).  The mask can only
    change where the root column changed, so the per-shard counts are
    patched exactly like the relevance column: recount the dirty shards,
    reuse every clean shard's cached count, sum in O(shard_count).
    """

    column_key: str
    mask: np.ndarray
    per_shard: np.ndarray
    total: int


@dataclass
class _FrameState:
    """What the previous execution's frame looked like, for delta derivation."""

    frame_id: int
    n: int
    display_order: np.ndarray
    #: Ascending copy of ``display_order`` (the displayed *set*).
    displayed_sorted: np.ndarray
    #: Root value key + relevance parameters of the previous frame.
    root_key: str | None
    scale: RelevanceScale
    target_max: float
    relevance: np.ndarray


def coerce_query(source: Database | Table, query: QuerySource) -> Query:
    """Accept a :class:`Query`, a bare condition tree or SQL-like text."""
    if isinstance(query, Query):
        return query
    if isinstance(query, QueryNode):
        table_names = [source.name] if isinstance(source, Table) else list(
            getattr(source, "table_names", [])
        )[:1]
        return Query(name="ad-hoc", tables=table_names or ["?"], condition=query)
    if isinstance(query, str):
        text = query.strip()
        if text.lower().startswith("select"):
            return parse_query(text)
        condition = parse_condition(text)
        table_names = [source.name] if isinstance(source, Table) else list(
            getattr(source, "table_names", [])
        )[:1]
        return Query(name="ad-hoc", tables=table_names or ["?"], condition=condition)
    raise TypeError(f"unsupported query type: {type(query).__name__}")


def item_capacity(config: PipelineConfig, n_selection_predicates: int) -> int:
    """Number of data items displayable given the screen and the query size.

    Every item occupies ``pixels_per_item`` pixels in each of the
    ``#sp + 1`` windows (overall plus one per selection predicate).
    """
    per_item = config.pixels_per_item * (n_selection_predicates + 1)
    return max(1, config.screen.pixels // per_item)


def qualify_condition(condition: QueryNode, table: Table) -> QueryNode:
    """Rewrite unqualified attribute references for a cross-product table.

    Cross-product columns are prefixed with their table names
    (``Weather.Temperature``); predicates written with bare attribute
    names are rewritten to the unique matching prefixed column.
    """
    condition = copy.deepcopy(condition)
    for _, leaf in condition.iter_leaves():
        predicate = leaf.predicate
        attribute = getattr(predicate, "attribute", None)
        if attribute is None or table.has_column(attribute):
            continue
        matches = [c for c in table.column_names if c.endswith(f".{attribute}")]
        if len(matches) == 1:
            # All concrete predicates are dataclasses with an
            # ``attribute`` field, so this assignment is well-defined.
            predicate.attribute = matches[0]
        elif len(matches) > 1:
            raise ValueError(
                f"attribute {attribute!r} is ambiguous in the join result; "
                f"qualify it as one of {matches}"
            )
        else:
            raise KeyError(
                f"attribute {attribute!r} not found in the join result columns"
            )
    return condition


class QueryEngine:
    """Prepares queries against one source and owns the shared caches.

    Parameters
    ----------
    source:
        A :class:`~repro.storage.database.Database` (required for queries
        with connections) or a single :class:`~repro.storage.table.Table`.
    config:
        Default pipeline configuration; keyword overrides may be passed
        directly, e.g. ``QueryEngine(db, percentage=0.4)``.

    The engine caches three kinds of state across :meth:`prepare` calls:

    * materialised cross-product tables, keyed by the joined tables and the
      sampling parameters;
    * an :class:`~repro.core.plan.EvaluationCache` of distance columns per
      evaluation table;
    * a :class:`~repro.storage.cache.PrefetchCache` (with lazily built
      :class:`~repro.storage.index.SortedIndex` range indexes) per
      evaluation table, serving range-predicate fulfilment sets.
    """

    #: Cap on cached cross-product tables (each pins up to ``max_join_pairs``
    #: rows plus its evaluation/prefetch caches); oldest evicted first.
    max_cached_tables = 8

    def __init__(self, source: Database | Table, config: PipelineConfig | None = None,
                 **overrides):
        self.source = source
        base = config or PipelineConfig()
        self.config = base.with_(**overrides) if overrides else base
        self._tables: dict[str, Table] = {}
        # Keyed by id() but each entry keeps the table strongly referenced,
        # so the id cannot be recycled while the entry exists; a mismatched
        # table at the same address (freed + reallocated) is detected and
        # its stale entry replaced.
        self._caches: dict[int, tuple[Table, EvaluationCache]] = {}
        self._prefetch: dict[int, tuple[Table, PrefetchCache]] = {}
        # Per (table, shard count): the row-range partitioning with its
        # per-shard prefetch caches and indexes.
        self._sharded: dict[tuple[int, int], tuple[Table, ShardedTable]] = {}
        # Lazily instantiated execution backends, one per backend name used
        # by this engine; created through the provider registry so stats
        # and close() stay engine-scoped.
        self._backends: dict[str, "ExecBackend"] = {}
        # Guards the shared per-table state above: the feedback service
        # prepares and executes sessions on concurrent worker threads, and
        # every execution resolves its caches through these dictionaries.
        self._lock = threading.RLock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; :meth:`prepare` then raises."""
        return self._closed

    def close(self) -> None:
        """Release cached tables/caches and shut worker pools down (idempotent).

        Embedding services use this for deterministic teardown: after
        ``close()`` the engine holds no cross-product tables, distance
        caches or prefetch regions, and the process-shared shard pools have
        joined their threads (they are lazily recreated should another
        engine execute afterwards).  Calling :meth:`prepare` on a closed
        engine raises ``RuntimeError``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._tables.clear()
            self._caches.clear()
            self._prefetch.clear()
            self._sharded.clear()
            backends = list(self._backends.values())
            self._backends.clear()
        for backend in backends:
            backend.close()
        shutdown_executors()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def execution_backend(self, name: str) -> "ExecBackend":
        """The engine's backend instance for ``name`` (created on first use).

        Instances come from the provider registry
        (:func:`repro.backend.create_backend`), one per name per engine, so
        their counters are engine-scoped and :meth:`close` can release them
        deterministically.
        """
        from repro.backend import create_backend

        with self._lock:
            if self._closed:
                raise RuntimeError("QueryEngine is closed")
            backend = self._backends.get(name)
            if backend is None:
                backend = create_backend(name, max_workers=self.config.max_workers)
                self._backends[name] = backend
            return backend

    def stats(self) -> dict[str, int]:
        """Aggregate cache counters across every evaluation table.

        Sums the :class:`~repro.core.plan.CacheStats` of all evaluation
        caches with the hit/miss/eviction counters of all prefetch caches
        (monolithic and per-shard); the service metrics endpoint surfaces
        this dictionary as the engine-wide cache picture.
        """
        with self._lock:
            caches = [entry[1] for entry in self._caches.values()]
            prefetch = [entry[1] for entry in self._prefetch.values()]
            for _, sharded in self._sharded.values():
                prefetch.extend(sharded.prefetch)
            backends = list(self._backends.values())
        totals: dict[str, int] = {key: 0 for key in CacheStats().as_dict()}
        totals.update({
            "prefetch_hits": 0, "prefetch_misses": 0, "prefetch_evictions": 0,
        })
        for cache in caches:
            for key, value in cache.stats.as_dict().items():
                totals[key] += value
        for cache in prefetch:
            stats = cache.stats()
            totals["prefetch_hits"] += stats["hits"]
            totals["prefetch_misses"] += stats["misses"]
            totals["prefetch_evictions"] += stats["evictions"]
        totals["backend"] = self._backend_stats(backends)
        return totals

    def _backend_stats(self, backends: "list[ExecBackend]") -> dict:
        """Merged view of this engine's backend instances.

        Counters (ops, fallbacks, restarts, traffic) sum across instances;
        gauges describing shared infrastructure (worker/publication state)
        take the maximum so a pool is not double-counted when several
        backend instances share it.
        """
        from repro.backend import ExecBackend

        gauges = {"worker_count", "workers_alive",
                  "published_tables", "published_bytes"}
        merged: dict = dict(ExecBackend().stats())
        try:
            merged["name"] = self.config.backend or default_backend_name()
        except ValueError:
            merged["name"] = self.config.backend or "threads"
        for backend in backends:
            for key, value in backend.stats().items():
                if not isinstance(value, int):
                    continue
                if key in gauges:
                    merged[key] = max(merged.get(key, 0), value)
                else:
                    merged[key] = merged.get(key, 0) + value
        return merged

    # ------------------------------------------------------------------ #
    # Preparation
    # ------------------------------------------------------------------ #
    def prepare(self, query: QuerySource, **overrides) -> "PreparedQuery":
        """Assemble the evaluation table and compile the query into a plan.

        Table assembly (including the cross product for joins) happens here,
        once; the returned :class:`PreparedQuery` only re-walks the compiled
        plan on :meth:`~PreparedQuery.execute`.
        """
        if self._closed:
            raise RuntimeError("QueryEngine is closed; create a new engine to prepare queries")
        query = coerce_query(self.source, query)
        config = self.config.with_(**overrides) if overrides else self.config
        table = self._assemble_table(query, config)
        prepared = PreparedQuery(self, query, table, config)
        if query.condition is not None:
            prepared.refresh()
        return prepared

    def _base_tables(self, query: Query) -> list[Table]:
        if isinstance(self.source, Table):
            return [self.source]
        tables: list[Table] = []
        for name in query.tables:
            if name in self.source:
                tables.append(self.source.table(name))
        if not tables:
            raise ValueError(
                f"none of the query tables {query.tables!r} exist in the database"
            )
        return tables

    def _assemble_table(self, query: Query, config: PipelineConfig | None = None) -> Table:
        """Resolve (and for joins, materialise and cache) the evaluation table."""
        config = config if config is not None else self.config
        tables = self._base_tables(query)
        if not query.connections:
            if len(tables) > 1:
                raise ValueError(
                    "multi-table queries need at least one connection (join) "
                    "to relate the tables"
                )
            return tables[0]
        involved = {c.left_table for c in query.connections} | {
            c.right_table for c in query.connections
        }
        if len(involved) != 2:
            raise NotImplementedError(
                "the pipeline currently supports joins between exactly two tables; "
                f"the query connects {sorted(involved)}"
            )
        if isinstance(self.source, Table):
            raise ValueError("queries with connections require a Database source")
        first = query.connections[0]
        key = stable_fingerprint(
            first.left_table, first.right_table,
            config.max_join_pairs, config.join_seed,
        )
        with self._lock:
            table = self._tables.get(key)
        if table is not None:
            return table
        # Materialise outside the lock: the cross product can take seconds,
        # and concurrent sessions must keep resolving their caches (which
        # also take self._lock) meanwhile.  Two threads may race to build
        # the same table; the first insert wins so identity stays single.
        product = CrossProduct(
            self.source.table(first.left_table),
            self.source.table(first.right_table),
            max_pairs=config.max_join_pairs,
            seed=config.join_seed,
        )
        # The parallel unit here is one column gather, independent of
        # sharding: any multi-core host benefits even at shard_count 1.
        workers = config.max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        with pool_user():
            table = product.to_table(executor=shared_executor(workers))
        with self._lock:
            existing = self._tables.get(key)
            if existing is not None:
                return existing
            self._tables[key] = table
            while len(self._tables) > self.max_cached_tables:
                oldest = self._tables.pop(next(iter(self._tables)))
                self._caches.pop(id(oldest), None)
                self._prefetch.pop(id(oldest), None)
                for stale in [k for k in self._sharded if k[0] == id(oldest)]:
                    del self._sharded[stale]
        return table

    # ------------------------------------------------------------------ #
    # Shared per-table state
    # ------------------------------------------------------------------ #
    #: Approximate byte budget per cache level (raw leaves / node columns)
    #: per evaluation table; entry counts derive from it so memory stays
    #: bounded independent of table size.
    cache_budget_bytes = 128 * 1024 * 1024

    def evaluation_cache(self, table: Table) -> EvaluationCache:
        """The distance-column cache for one evaluation table."""
        with self._lock:
            entry = self._caches.get(id(table))
            if entry is None or entry[0] is not table:
                # ~24 bytes/row per entry (two float64 columns + masks).
                per_entry = max(len(table), 1) * 24
                max_entries = int(np.clip(self.cache_budget_bytes // per_entry, 8, 128))
                entry = (table, EvaluationCache(
                    max_leaf_entries=min(max_entries, 64),
                    max_node_entries=max_entries,
                ))
                self._caches[id(table)] = entry
            return entry[1]

    def prefetch_for(self, table: Table) -> PrefetchCache:
        """The prefetch cache (widened range regions) for one evaluation table."""
        with self._lock:
            entry = self._prefetch.get(id(table))
            if entry is None or entry[0] is not table:
                entry = (table, PrefetchCache(table, indexes={}))
                self._prefetch[id(table)] = entry
            return entry[1]

    def sharded_table(self, table: Table, shard_count: int) -> ShardedTable:
        """The (cached) row-range partitioning of one evaluation table."""
        with self._lock:
            key = (id(table), shard_count)
            entry = self._sharded.get(key)
            if entry is None or entry[0] is not table:
                entry = (table, ShardedTable(table, shard_count))
                self._sharded[key] = entry
            return entry[1]

    def ensure_range_index(self, table: Table, attribute: str,
                           shard_count: int = 1) -> None:
        """Build (once) sorted range indexes serving a slider attribute.

        With ``shard_count > 1`` the indexes are per shard (each reporting
        global row numbers), so a slider event later touches only the
        shards whose rows the swept band intersects; otherwise one global
        index backs the monolithic prefetch cache.
        """
        # The O(n log n) builds run outside the engine lock (it guards only
        # the cache-dictionary lookups), so concurrent sessions keep
        # resolving their caches while one session's slider goes hot.
        if shard_count > 1:
            self.sharded_table(table, shard_count).ensure_index(attribute)
            return
        prefetch = self.prefetch_for(table)
        if attribute in prefetch.indexes:
            return
        if table.has_column(attribute) and table.is_numeric(attribute):
            index = SortedIndex(table, attribute)
            # Two racing builders both build; the first publish wins so the
            # index every reader sees stays one object.
            prefetch.indexes.setdefault(attribute, index)


class PreparedQuery:
    """A query bound to its (already assembled) evaluation table.

    Obtained from :meth:`QueryEngine.prepare`; supports cheap incremental
    re-execution after interactive modifications.  The condition tree is
    shared with ``query.condition`` and may be mutated between executions
    (that is exactly what session events do); :meth:`execute` detects the
    change through fingerprints and recomputes only the dirty subtrees.
    """

    def __init__(self, engine: QueryEngine, query: Query, table: Table,
                 config: PipelineConfig):
        self.engine = engine
        self.query = query
        self.table = table
        self.config = config
        #: Effective shard count, resolved once (config, else REPRO_SHARDS)
        #: so the execution mode cannot flip mid-session with the
        #: environment; the per-shard state built by refresh() stays valid.
        self.shard_count = max(1, config.shard_count or default_shard_count())
        #: Effective execution backend, resolved once for the same reason:
        #: where shard work runs must not flip mid-session with the
        #: environment.
        self.backend_name = config.backend or default_backend_name()
        self.executions = 0
        self._join_leaves: list[PredicateLeaf] | None = None
        self._effective: QueryNode | None = None
        self._effective_fp: str | None = None
        self._plan = None
        self._shape_fp = self._query_shape_fingerprint()
        #: Namespace for this query's shard-slice sites.  Regenerated when
        #: the plan *shape* changes (wholesale query replacement), which
        #: invalidates every slice entry of the old plan at once.
        self._slice_token = f"pq-{next(_SLICE_TOKENS)}"
        self._plan_shape: tuple | None = None
        #: Incremental displayed-set / relevance state (percentage path).
        self._displayed_state: _DisplayedState | None = None
        self._relevance_state: _RelevanceState | None = None
        #: Per-shard order-statistic certificate state (quantile path).
        self._quantile_state: _QuantileState | None = None
        #: Per-shard popcounts backing the incremental ``result_count``.
        self._result_count_state: _ResultCountState | None = None
        #: Monotonically increasing frame id; each execute() returns the
        #: next frame, stamped with a delta against the previous one.
        self._frame_counter = 0
        self._frame_state: _FrameState | None = None

    def _query_shape_fingerprint(self) -> str:
        """Identity of the parts that determine the evaluation table."""
        return stable_fingerprint(
            tuple(self.query.tables),
            *[
                (c.key, c.kind, c.parameter, c.tolerance,
                 str(c.left_attribute), str(c.right_attribute))
                for c in self.query.connections
            ],
        )

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def condition(self) -> QueryNode | None:
        """The user-level condition tree (mutated by modification events)."""
        return self.query.condition

    @property
    def cache_stats(self) -> dict[str, int]:
        """Hit/miss counters of the distance caches plus prefetch activity."""
        stats = self.engine.evaluation_cache(self.table).stats.as_dict()
        if self.shard_count > 1:
            shards = self.engine.sharded_table(self.table, self.shard_count).prefetch
            stats["prefetch_hits"] = sum(p.cache_hits for p in shards)
            stats["prefetch_fetches"] = sum(p.fetches for p in shards)
        else:
            prefetch = self.engine.prefetch_for(self.table)
            stats["prefetch_hits"] = prefetch.cache_hits
            stats["prefetch_fetches"] = prefetch.fetches
        return stats

    # ------------------------------------------------------------------ #
    # Plan maintenance
    # ------------------------------------------------------------------ #
    def _build_join_leaves(self) -> list[PredicateLeaf]:
        if self._join_leaves is None:
            self._join_leaves = [
                PredicateLeaf(connection.to_predicate(), label=connection.describe())
                for connection in self.query.connections
            ]
        return self._join_leaves

    def refresh(self) -> None:
        """Recompile the plan if the user condition changed since last time.

        Called automatically by :meth:`execute`; cheap (a fingerprint walk)
        when nothing changed.
        """
        shape = self._query_shape_fingerprint()
        if shape != self._shape_fp:
            # Tables or connections were mutated: the evaluation table
            # itself is stale.  Re-assemble (the engine caches cross
            # products, so an unchanged join key is still cheap).
            self.table = self.engine._assemble_table(self.query, self.config)
            self._join_leaves = None
            self._effective_fp = None
            self._shape_fp = shape
        condition = self.query.condition
        if condition is None:
            if not self.query.connections:
                raise ValueError("the query has no condition; nothing to visualize")
            fingerprint = stable_fingerprint("no-condition")
        else:
            fingerprint = condition.fingerprint()
        if fingerprint == self._effective_fp:
            return
        if not self.query.connections:
            effective = copy.deepcopy(condition)
        else:
            join_leaves = self._build_join_leaves()
            if condition is not None:
                qualified = qualify_condition(condition, self.table)
                effective = AndNode([qualified, *join_leaves], label="overall")
            elif len(join_leaves) == 1:
                effective = join_leaves[0]
            else:
                effective = AndNode(join_leaves, label="overall")
        self._effective = effective
        self._plan = compile_plan(effective)
        self._effective_fp = fingerprint
        shape = _plan_shape(self._plan)
        if shape != self._plan_shape:
            if self._plan_shape is not None:
                # The query was restructured wholesale: a fresh token
                # orphans every slice entry of the old plan, and the
                # displayed/relevance caches cannot be patched across the
                # change either.
                self._slice_token = f"pq-{next(_SLICE_TOKENS)}"
                self._displayed_state = None
                self._relevance_state = None
                self._quantile_state = None
                self._result_count_state = None
            self._plan_shape = shape
        if self.executions > 0:
            # The query is being re-executed interactively: mark the range
            # (slider) attributes as hot and index them once, so subsequent
            # drags resolve their fulfilment sets in O(log n + k).  Cold
            # one-shot runs never reach this and skip the index build.
            for _, leaf in effective.iter_leaves():
                if isinstance(leaf.predicate, RangePredicate):
                    self.engine.ensure_range_index(
                        self.table, leaf.predicate.attribute,
                        shard_count=self.shard_count,
                    )

    # ------------------------------------------------------------------ #
    # Modification
    # ------------------------------------------------------------------ #
    def apply_change(self, event) -> None:
        """Apply one query-modification event to the prepared state.

        Supported events: :class:`SetWeight`, :class:`SetQueryRange`,
        :class:`SetThreshold` (all mutate the condition tree) and
        :class:`SetPercentageDisplayed` (a config change; no rebuild).
        """
        # Imported lazily: repro.interact imports the core pipeline, so a
        # module-level import here would be circular.
        from repro.interact.events import (
            SetPercentageDisplayed,
            SetQueryRange,
            SetThreshold,
            SetWeight,
        )

        if isinstance(event, SetWeight):
            self._condition_root().find(tuple(event.path)).with_weight(event.weight)
        elif isinstance(event, SetQueryRange):
            leaf = self._leaf_at(event.path)
            predicate = leaf.predicate
            if isinstance(predicate, RangePredicate):
                leaf.predicate = predicate.with_range(event.low, event.high)
            elif isinstance(predicate, AttributePredicate):
                leaf.predicate = RangePredicate(predicate.attribute, event.low, event.high)
            else:
                raise TypeError(
                    f"predicate {predicate.describe()!r} does not support a range slider"
                )
        elif isinstance(event, SetThreshold):
            leaf = self._leaf_at(event.path)
            predicate = leaf.predicate
            if not isinstance(predicate, AttributePredicate):
                raise TypeError(
                    f"predicate {predicate.describe()!r} has no single threshold to move"
                )
            leaf.predicate = AttributePredicate(
                predicate.attribute, predicate.operator, float(event.value)
            )
        elif isinstance(event, SetPercentageDisplayed):
            self.config = self.config.with_(percentage=event.percentage)
        else:
            raise TypeError(
                f"unsupported query modification: {type(event).__name__}"
            )

    def _condition_root(self) -> QueryNode:
        if self.query.condition is None:
            raise ValueError("the query has no condition to modify")
        return self.query.condition

    def _leaf_at(self, path: NodePath) -> PredicateLeaf:
        node = self._condition_root().find(tuple(path))
        if not isinstance(node, PredicateLeaf):
            raise TypeError(f"node at path {path!r} is not a predicate leaf")
        return node

    # ------------------------------------------------------------------ #
    # Incremental displayed-set / relevance maintenance
    # ------------------------------------------------------------------ #
    def _displayed_incremental(self, distances: np.ndarray, sharded: ShardedTable,
                               method: ReductionMethod, root_delta,
                               executor,
                               pipeline_topk: tuple[int, list] | None = None,
                               ) -> np.ndarray | None:
        """Percentage-path displayed set from cached per-shard top-k partials.

        Returns None when this path does not apply (other reduction methods,
        degenerate targets, or the adaptive cutoff where per-shard candidate
        sets would approach the full column) -- the caller then falls back
        to :func:`~repro.core.shard.sharded_select_display_set`, which is
        bit-identical by the same merge algebra.

        When it applies: only the shards the root delta marks dirty rebuild
        their :class:`~repro.core.reduction.TopKCandidates`; clean shards'
        cached partials merge in unchanged, and ties at the capacity
        boundary resolve exactly once under the stable-argsort rule, so the
        patched displayed set equals a cold selection bit for bit.
        """
        percentage = self.config.percentage
        if not self.config.incremental_shards or percentage is None:
            return None
        if method is not ReductionMethod.PERCENTAGE:
            return None
        n = len(distances)
        if n == 0 or n != len(sharded.table):
            return None
        target = max(1, int(round(percentage * n)))
        if target >= n or target * sharded.shard_count > n // 2:
            return None
        cache = self.engine.evaluation_cache(self.table)
        bounds = sharded.bounds
        state = self._displayed_state
        root_key = root_delta.value_key if root_delta is not None else None
        if (state is not None and root_key is not None
                and state.target == target and state.n == n):
            if state.column_key == root_key:
                # Same overall column, same target: the displayed set is
                # provably unchanged.
                cache.record_displayed_patch()
                return state.displayed
            if (root_delta.dirty is not None
                    and root_delta.base_key == state.column_key):
                if not root_delta.dirty:
                    # Column content unchanged under a new fingerprint
                    # (e.g. a weight move whose bounds held): re-key the
                    # state, reuse everything.
                    self._displayed_state = _DisplayedState(
                        root_key, target, n, state.threshold,
                        state.below, state.ties, state.displayed)
                    cache.record_displayed_patch()
                    return state.displayed
                threshold = state.threshold
                below = list(state.below)
                ties = list(state.ties)
                for i in sorted(root_delta.dirty):
                    start, stop = bounds[i]
                    part = distances[start:stop]
                    finite = np.isfinite(part)
                    masked = part if finite.all() else np.where(finite, part, np.inf)
                    below[i] = np.nonzero(masked < threshold)[0] + start
                    ties[i] = np.nonzero(masked == threshold)[0] + start
                total_below = sum(len(x) for x in below)
                total_ties = sum(len(x) for x in ties)
                if total_below < target <= total_below + total_ties:
                    # The target-th smallest is provably still `threshold`:
                    # fewer than `target` rows lie strictly below it and at
                    # least `target` lie at or below.  Reassemble under the
                    # stable tie rule -- per-shard lists are ascending and
                    # shard ranges are ordered, so their concatenation is
                    # the global ascending index order.
                    # Only the first `take` ties (in global row order) are
                    # displayed; the cached tie lists can hold O(n) rows on
                    # heavily tied distributions, so walk the per-shard
                    # prefixes instead of concatenating them all.
                    need = target - total_below
                    pieces = [x for x in below if len(x)]
                    for x in ties:
                        if need <= 0:
                            break
                        if not len(x):
                            continue
                        piece = x if len(x) <= need else x[:need]
                        pieces.append(piece)
                        need -= len(piece)
                    if not pieces:
                        pieces.append(np.empty(0, dtype=np.intp))
                    displayed = np.sort(np.concatenate(pieces))
                    displayed.flags.writeable = False
                    self._displayed_state = _DisplayedState(
                        root_key, target, n, threshold,
                        tuple(below), tuple(ties), displayed)
                    cache.record_displayed_patch()
                    return displayed
        # Full per-shard construction (cold run, threshold shift, or no
        # usable delta); the below/tie decomposition is kept so the next
        # event can patch.
        def one(i: int):
            start, stop = bounds[i]
            return topk_candidates(distances[start:stop], target, offset=start)

        if (pipeline_topk is not None and pipeline_topk[0] == target
                and len(pipeline_topk[1]) == len(bounds)):
            # An accepted pipeline op already built the per-shard partials
            # worker-side, over the same normalized bits with the same
            # function and offsets -- identical by construction.
            partials = list(pipeline_topk[1])
        elif executor is not None and len(bounds) > 1:
            partials = list(executor.map(one, range(len(bounds))))
        else:
            partials = [one(i) for i in range(len(bounds))]
        merged = merge_topk_candidates_many(partials)
        # Every row at or below the threshold survives the candidate cuts
        # (cut thresholds only tighten towards the final one), so the
        # merged set decomposes exactly into below/ties -- and the
        # displayed set falls straight out of that decomposition, exactly
        # as resolve_topk would produce it (the tie arrays are already in
        # ascending global row order).
        threshold = float(merged.values[
            np.argpartition(merged.values, target - 1)[target - 1]])
        below_all = merged.indices[merged.values < threshold]
        ties_all = merged.indices[merged.values == threshold]
        displayed = np.sort(np.concatenate(
            [below_all, ties_all[:target - len(below_all)]]))
        displayed.flags.writeable = False
        if root_key is not None:
            starts = [start for start, _ in bounds[1:]]
            below = np.split(below_all, np.searchsorted(below_all, starts))
            ties = np.split(ties_all, np.searchsorted(ties_all, starts))
            self._displayed_state = _DisplayedState(
                root_key, target, n, threshold,
                tuple(below), tuple(ties), displayed)
        return displayed

    def _quantile_incremental(self, distances, sharded: ShardedTable,
                              root_delta, executor, capacity: int,
                              n_selection_predicates: int,
                              ) -> "tuple[np.ndarray, bool] | None":
        """Quantile-path displayed set via per-shard order-statistic certificates.

        Returns ``(displayed, certified)``, or None when the path does not
        apply (incremental sharding off, size mismatch) and the caller
        should fall back to
        :func:`~repro.core.shard.sharded_select_display_set`.

        ``certified`` True means dirty-shard recounts alone proved the
        cached threshold element is still the p-quantile (see
        :class:`_QuantileState`): O(dirty shards) work, no O(n)
        concatenate or quantile.  Otherwise the exact rebuild runs here,
        mirroring the sharded selection bit for bit, and re-seeds the
        certificate for the next event.
        """
        if not self.config.incremental_shards:
            return None
        n = len(distances)
        if n == 0 or n != len(sharded.table):
            return None
        p = display_fraction(capacity, n, n_selection_predicates)
        cache = self.engine.evaluation_cache(self.table)
        bounds = sharded.bounds
        state = self._quantile_state
        root_key = root_delta.value_key if root_delta is not None else None
        if (state is not None and root_key is not None
                and state.n == n and state.p == p
                and len(state.counts) == len(bounds)):
            if state.column_key == root_key:
                # Same overall column identity: provably unchanged.
                cache.record_quantile(True)
                return state.displayed, True
            if (root_delta.dirty is not None
                    and root_delta.base_key == state.column_key):
                if not root_delta.dirty:
                    # Bit-identical column under a new fingerprint: reuse
                    # everything, re-keyed.
                    self._quantile_state = replace(state, column_key=root_key)
                    cache.record_quantile(True)
                    return state.displayed, True
                dirty = sorted(root_delta.dirty)
                counts = state.counts.copy()
                for i in dirty:
                    start, stop = bounds[i]
                    counts[i] = quantile_shard_counts(
                        distances[start:stop], state.v_lo, state.v_hi)
                if quantile_certificate(counts.sum(axis=0), state.m,
                                        state.k_lo, state.k_hi):
                    # Both order statistics held, so np.quantile over the
                    # (provably equal as a multiset) finite values would
                    # return the exact cached float; only the dirty
                    # shards' selected lists rebuild, and the per-shard
                    # concatenation in shard order is the same global
                    # ascending-index order the fallback produces.
                    threshold = state.threshold
                    selected = list(state.selected)
                    for i in dirty:
                        start, stop = bounds[i]
                        part = distances[start:stop]
                        mask = np.isfinite(part) & (part <= threshold)
                        selected[i] = np.nonzero(mask)[0] + start
                    displayed = np.concatenate(selected)
                    self._quantile_state = _QuantileState(
                        root_key, n, p, state.m, threshold,
                        state.k_lo, state.k_hi, state.v_lo, state.v_hi,
                        counts, tuple(selected), displayed)
                    cache.record_quantile(True)
                    return displayed, True
        # Exact rebuild (cold run, certificate failure, or no usable
        # delta), mirroring sharded_select_display_set's quantile branch
        # bit for bit -- plus the order statistics and counting rows that
        # seed the next event's certificate.
        def finite_part(i: int) -> np.ndarray:
            start, stop = bounds[i]
            part = distances[start:stop]
            return part[np.isfinite(part)]

        if executor is not None and len(bounds) > 1:
            finite_parts = list(executor.map(finite_part, range(len(bounds))))
        else:
            finite_parts = [finite_part(i) for i in range(len(bounds))]
        finite = np.concatenate(finite_parts)
        m = int(len(finite))
        if m == 0:
            threshold = v_lo = v_hi = float("nan")
            k_lo = k_hi = 0
            counts = np.asarray([EMPTY_QUANTILE_COUNTS] * len(bounds),
                                dtype=float)
            selected = tuple(np.empty(0, dtype=np.intp) for _ in bounds)
            displayed = np.empty(0, dtype=np.intp)
        else:
            threshold = float(np.quantile(finite, p))
            k_lo, k_hi = quantile_rank_bounds(m, p)
            kth = (k_lo,) if k_lo == k_hi else (k_lo, k_hi)
            order_stats = np.partition(finite, kth)
            v_lo = float(order_stats[k_lo])
            v_hi = float(order_stats[k_hi])
            counts = np.asarray(
                [quantile_shard_counts(part, v_lo, v_hi)
                 for part in finite_parts],
                dtype=float)

            def select(i: int) -> np.ndarray:
                start, stop = bounds[i]
                part = distances[start:stop]
                mask = np.isfinite(part) & (part <= threshold)
                return np.nonzero(mask)[0] + start

            if executor is not None and len(bounds) > 1:
                selected = tuple(executor.map(select, range(len(bounds))))
            else:
                selected = tuple(select(i) for i in range(len(bounds)))
            displayed = np.concatenate(selected)
        if root_key is not None:
            self._quantile_state = _QuantileState(
                root_key, n, p, m, threshold, k_lo, k_hi, v_lo, v_hi,
                counts, selected, displayed)
        cache.record_quantile(False)
        return displayed, False

    def _relevance_incremental(self, distances: np.ndarray,
                               sharded: ShardedTable | None,
                               root_delta) -> np.ndarray:
        """Relevance factors, recomputing only dirty shards' slices.

        The relevance transform is purely elementwise, so any slice of an
        unchanged distance column maps to a bit-identical relevance slice --
        the cached column is patched exactly like the node columns are.
        """
        scale = self.config.relevance_scale
        target_max = self.config.target_max
        root_key = root_delta.value_key if root_delta is not None else None
        state = self._relevance_state
        if (sharded is not None and root_key is not None and state is not None
                and state.scale is scale and state.target_max == target_max
                and len(state.relevance) == len(distances)):
            if state.column_key == root_key:
                return state.relevance
            if (root_delta.dirty is not None
                    and root_delta.base_key == state.column_key):
                if not root_delta.dirty:
                    # Bit-identical column under a new fingerprint: reuse
                    # the whole relevance array, re-keyed.
                    self._relevance_state = _RelevanceState(
                        root_key, scale, target_max, state.relevance)
                    return state.relevance
                # The relevance column patches like the node columns do:
                # recompute only the dirty shards' spans and splice them
                # into the cached (chunked, copy-on-write) column --
                # O(dirty rows + edge chunks), not an O(n) reassembly.
                bounds = sharded.bounds
                dirty_sorted = sorted(root_delta.dirty)
                relevance = as_chunked(state.relevance).patch_spans([
                    (bounds[i][0], bounds[i][1], relevance_factors(
                        distances[bounds[i][0]:bounds[i][1]],
                        scale, target_max))
                    for i in dirty_sorted
                ])
                self.engine.evaluation_cache(self.table).record_chunks(
                    relevance.patched_chunks, relevance.shared_chunks)
                self._relevance_state = _RelevanceState(
                    root_key, scale, target_max, relevance)
                return relevance
        relevance = relevance_factors(distances, scale, target_max)
        if sharded is not None and root_key is not None:
            relevance.flags.writeable = False
            self._relevance_state = _RelevanceState(
                root_key, scale, target_max, relevance)
        return relevance

    def _result_count_incremental(self, mask: np.ndarray,
                                  sharded: ShardedTable | None,
                                  root_delta) -> int:
        """``result_count`` from per-shard mask popcounts, patched per event.

        The root fulfilment mask changes only inside the shards the root
        delta marks dirty (a mask entry is a pure function of the row's
        distances), so cached clean-shard counts stay exact; the sum over
        shards equals ``np.count_nonzero(mask)`` bit for bit.  Without a
        usable relation (monolithic execution, cold run, reshape) the count
        falls back to the direct popcount.
        """
        root_key = root_delta.value_key if root_delta is not None else None
        if sharded is None or root_key is None or len(mask) != len(sharded.table):
            return int(np.count_nonzero(mask))
        bounds = sharded.bounds
        state = self._result_count_state
        if state is not None and len(state.per_shard) == len(bounds):
            if state.mask is mask or state.column_key == root_key:
                # Same mask object (wholesale cache hit) or same column
                # identity: the count is provably unchanged.
                self._result_count_state = _ResultCountState(
                    root_key, mask, state.per_shard, state.total)
                self.engine.evaluation_cache(self.table).record_result_count_patch()
                return state.total
            if (root_delta.dirty is not None
                    and root_delta.base_key == state.column_key):
                per_shard = state.per_shard.copy()
                for i in sorted(root_delta.dirty):
                    start, stop = bounds[i]
                    per_shard[i] = np.count_nonzero(mask[start:stop])
                total = int(per_shard.sum())
                self._result_count_state = _ResultCountState(
                    root_key, mask, per_shard, total)
                self.engine.evaluation_cache(self.table).record_result_count_patch()
                return total
        per_shard = np.array(
            [np.count_nonzero(mask[start:stop]) for start, stop in bounds],
            dtype=np.int64,
        )
        total = int(per_shard.sum())
        self._result_count_state = _ResultCountState(root_key, mask, per_shard, total)
        return total

    def _frame_delta(self, display_order: np.ndarray, displayed_sorted: np.ndarray,
                     relevance: np.ndarray, root_key: str | None,
                     sharded: ShardedTable | None, root_delta,
                     n: int) -> FeedbackDelta | None:
        """Delta of the frame being built against the previous frame (if any).

        Displayed-set membership changes are exact set differences of two
        capacity-bounded index arrays; the relevance spans reuse the dirty
        shard certificate the engine already validated for this event.
        """
        prev = self._frame_state
        if prev is None or prev.n != n:
            return None
        if (len(display_order) == len(prev.display_order)
                and np.array_equal(display_order, prev.display_order)):
            entered = np.empty(0, dtype=np.intp)
            left = np.empty(0, dtype=np.intp)
            order_unchanged = True
        else:
            entered = np.setdiff1d(displayed_sorted, prev.displayed_sorted,
                                   assume_unique=True)
            left = np.setdiff1d(prev.displayed_sorted, displayed_sorted,
                                assume_unique=True)
            order_unchanged = False
        spans: tuple[tuple[int, int], ...] | None = None
        same_params = (prev.scale is self.config.relevance_scale
                       and prev.target_max == self.config.target_max)
        if relevance is prev.relevance:
            spans = ()
        elif same_params and root_key is not None and root_key == prev.root_key:
            # Identical root column and relevance parameters: the values are
            # bit-identical even when the array object was rebuilt.
            spans = ()
        elif (same_params and sharded is not None and root_delta is not None
                and root_delta.dirty is not None
                and root_delta.base_key == prev.root_key):
            spans = tuple(sharded.bounds[i] for i in sorted(root_delta.dirty))
        return FeedbackDelta(
            base_frame_id=prev.frame_id,
            entered=entered,
            left=left,
            order_unchanged=order_unchanged,
            relevance_spans=spans,
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, changes: Sequence | None = None) -> FeedbackFrame:
        """Re-execute the prepared query, recomputing only dirty subtrees.

        ``changes`` (optional) are applied first via :meth:`apply_change` --
        a convenience for scripted feedback loops; events applied directly
        to the shared condition tree are detected just the same.

        Returns a :class:`~repro.core.result.FeedbackFrame`: the full
        feedback (a :class:`~repro.core.result.QueryFeedback`, so existing
        consumers are unaffected) stamped with a monotonically increasing
        ``frame_id`` and, when the engine's incremental bookkeeping proved
        a relation to the previous frame, a
        :class:`~repro.core.result.FeedbackDelta` naming exactly the rows
        that entered/left the displayed set and the row spans whose
        relevance may have changed -- what the streaming service layers
        ship instead of O(n) snapshots.
        """
        if changes:
            for event in changes:
                self.apply_change(event)
        with obs.span("engine.refresh"):
            self.refresh()
        condition = self._effective
        table = self.table
        n = len(table)
        n_predicates = condition.leaf_count()
        capacity_items = item_capacity(self.config, n_predicates)
        if self.config.percentage is not None:
            # A user-chosen display percentage changes the normalization range:
            # "changing the percentage of data being displayed may completely
            # change the visualization since the distance values are normalized
            # according to the new range" (section 4.3).
            capacity_items = min(
                capacity_items, max(1, int(round(self.config.percentage * n)))
            )
        shard_count = self.shard_count
        # Registered as a pool user across all shard waves, so a concurrent
        # QueryEngine.close() elsewhere in the process drains this
        # execution instead of shutting the pool down between two waves.
        with pool_user():
            sharded = executor = None
            incremental = False
            if shard_count > 1:
                sharded = self.engine.sharded_table(table, shard_count)
                backend = self.engine.execution_backend(self.backend_name)
                backend.prepare(sharded)
                executor = backend.local_executor(
                    shard_count, self.config.max_workers
                )
                incremental = self.config.incremental_shards
                evaluator = ShardedPlanEvaluator(
                    sharded,
                    display_capacity=capacity_items,
                    target_max=self.config.target_max,
                    cache=self.engine.evaluation_cache(table),
                    executor=executor,
                    incremental=incremental,
                    slice_token=self._slice_token,
                    backend=backend,
                )
                # When the displayed set will be built from per-shard
                # top-k partials (percentage path, below the adaptive
                # cutoff -- the same conditions _displayed_incremental
                # checks), ask an accepted pipeline op to return the
                # root's partials alongside, saving the coordinator pass.
                if (incremental and self.config.percentage is not None
                        and n > 0):
                    target = max(1, int(round(self.config.percentage * n)))
                    if target < n and target * shard_count <= n // 2:
                        evaluator.pipeline_topk_target = target
            else:
                evaluator = PlanEvaluator(
                    table,
                    display_capacity=capacity_items,
                    target_max=self.config.target_max,
                    cache=self.engine.evaluation_cache(table),
                    prefetch=self.engine.prefetch_for(table),
                )
            with obs.span("plan.evaluate", shards=shard_count,
                          backend=self.backend_name if shard_count > 1 else None
                          ) as eval_span:
                node_feedback = evaluator.evaluate(self._plan)
                if incremental:
                    eval_span.annotate(**evaluator.event_report())
            overall = node_feedback[()]
            root_delta = evaluator.node_deltas.get(()) if incremental else None
            pixel_budget = max(1, self.config.screen.pixels // self.config.pixels_per_item)
            method = (
                ReductionMethod.PERCENTAGE
                if self.config.percentage is not None
                else self.config.reduction
            )
            displayed = None
            if sharded is not None:
                with obs.span("displayed.select", method=method.name) as sel:
                    if method is ReductionMethod.QUANTILE:
                        quantile = self._quantile_incremental(
                            overall.normalized_distances, sharded,
                            root_delta, executor, pixel_budget, n_predicates,
                        )
                        if quantile is not None:
                            displayed, certified = quantile
                            # The quantile certificate: dirty-shard
                            # recounts proved the cached threshold element
                            # still the p-quantile, or the exact rebuild
                            # ran (bit-identical either way).
                            sel.annotate(certificate="quantile", node="()",
                                         certified=certified)
                    else:
                        displayed = self._displayed_incremental(
                            overall.normalized_distances, sharded, method,
                            root_delta, executor,
                            pipeline_topk=getattr(evaluator, "pipeline_topk", None),
                        )
                        # The displayed-set certificate: the per-shard top-k
                        # partial path held (patched/reused) or the selection
                        # fell back to a full sharded pass.
                        sel.annotate(certificate="displayed-topk", node="()",
                                     certified=displayed is not None)
                    if displayed is None:
                        displayed = sharded_select_display_set(
                            overall.normalized_distances,
                            sharded,
                            capacity=pixel_budget,
                            n_selection_predicates=n_predicates,
                            method=method,
                            percentage=self.config.percentage,
                            multipeak_z=self.config.multipeak_z,
                            executor=executor,
                        )
            else:
                with obs.span("displayed.select", method=method.name):
                    displayed = select_display_set(
                        overall.normalized_distances,
                        capacity=pixel_budget,
                        n_selection_predicates=n_predicates,
                        method=method,
                        percentage=self.config.percentage,
                        multipeak_z=self.config.multipeak_z,
                    )
        if len(displayed) > capacity_items:
            # More items fall inside the quantile window than fit on screen
            # (ties at the threshold): keep the closest ones.
            distances = overall.normalized_distances[displayed]
            order = np.argsort(distances, kind="stable")
            displayed = displayed[order[:capacity_items]]
        # Sort the displayed items by relevance (ascending combined distance);
        # this ordering drives the spiral arrangement of the overall window
        # and, via positional correspondence, all per-predicate windows.
        display_order = displayed[
            np.argsort(overall.normalized_distances[displayed], kind="stable")
        ]
        with obs.span("relevance.update"):
            relevance = self._relevance_incremental(
                overall.normalized_distances, sharded, root_delta
            )
        # The sharded evaluator already derived the root's value key for its
        # node delta (same fingerprint function, same capacity/target_max);
        # only the monolithic path needs the plan walk.
        root_key = (root_delta.value_key if root_delta is not None
                    else self._plan.value_key(capacity_items, self.config.target_max))
        with obs.span("result_count"):
            num_results = self._result_count_incremental(
                overall.exact_mask, sharded if incremental else None, root_delta
            )
        statistics = FeedbackStatistics(
            num_objects=n,
            num_displayed=len(display_order),
            percentage_displayed=(len(display_order) / n) if n else 0.0,
            num_results=num_results,
        )
        self.executions += 1
        extra = {
            "display_fraction": display_fraction(pixel_budget, n, n_predicates),
            "pixels_per_item": self.config.pixels_per_item,
            # Map node path -> query-tree node, used by the slider layer to
            # recover predicate attributes and query ranges.
            "condition_nodes": dict(condition.iter_nodes()),
        }
        if sharded is not None and incremental:
            # Dirty-shard attribution of this event, for benchmarks and the
            # service metrics: how many shards the event actually touched
            # and how many node columns were patched vs. served wholesale.
            extra["incremental"] = evaluator.event_report()
        displayed_sorted = np.sort(display_order)
        with obs.span("frame.delta"):
            delta = self._frame_delta(
                display_order, displayed_sorted, relevance, root_key,
                sharded, root_delta, n,
            )
        self._frame_counter += 1
        frame_id = self._frame_counter
        base_frame_id = self._frame_state.frame_id if self._frame_state else None
        self._frame_state = _FrameState(
            frame_id=frame_id,
            n=n,
            display_order=display_order,
            displayed_sorted=displayed_sorted,
            root_key=root_key,
            scale=self.config.relevance_scale,
            target_max=self.config.target_max,
            relevance=relevance,
        )
        return FeedbackFrame(
            table=table,
            query_description=self.query.describe(),
            node_feedback=node_feedback,
            display_order=display_order,
            relevance=relevance,
            statistics=statistics,
            display_capacity=capacity_items,
            extra=extra,
            frame_id=frame_id,
            base_frame_id=base_frame_id,
            delta=delta,
        )
