"""Weighting factors for selection predicates.

"The relative importance of the multiple selection predicates is highly
user and query dependent [and] can only be solved by user interaction":
weighting factors ``w_j in [0, 1]`` express the order of importance.  The
weights live on the query-tree nodes; :class:`WeightSet` is the convenience
view used by the interactive session (the "weight" row below the sliders in
Fig. 4/5) to read and write them by node path.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.query.expr import NodePath, QueryNode

__all__ = ["WeightSet"]


class WeightSet:
    """Read/write view of the weighting factors of a query tree."""

    def __init__(self, root: QueryNode):
        self._root = root

    def __getitem__(self, path: NodePath) -> float:
        return self._root.find(tuple(path)).weight

    def __setitem__(self, path: NodePath, weight: float) -> None:
        self._root.find(tuple(path)).with_weight(weight)

    def __iter__(self) -> Iterator[NodePath]:
        for path, _ in self._root.iter_nodes():
            yield path

    def leaf_weights(self) -> dict[NodePath, float]:
        """Weights of all predicate leaves, keyed by node path."""
        return {path: leaf.weight for path, leaf in self._root.iter_leaves()}

    def set_many(self, weights: Mapping[NodePath, float]) -> None:
        """Assign several weighting factors at once."""
        for path, weight in weights.items():
            self[path] = weight

    def reset(self, weight: float = 1.0) -> None:
        """Set every node's weight to the same value (default: all equally important)."""
        for path, node in self._root.iter_nodes():
            node.with_weight(weight)

    def normalized_leaf_weights(self) -> dict[NodePath, float]:
        """Leaf weights rescaled so the largest weight is exactly 1.

        Handy when the user has dragged all sliders down: relative
        importance is what matters for the combination formulas.
        """
        weights = self.leaf_weights()
        largest = max(weights.values(), default=1.0)
        if largest <= 0:
            return {path: 1.0 for path in weights}
        return {path: w / largest for path, w in weights.items()}
