"""Core relevance engine: the paper's primary contribution.

Pipeline (paper sections 3 and 5):

1. For every selection predicate, compute application-dependent distances
   (:mod:`repro.distance`, via the predicates of :mod:`repro.query`).
2. Reduce the data considered per predicate (proportional to ``r/(n·w_j)``)
   and normalize the remaining distances to a fixed range
   (:mod:`repro.core.normalization`).
3. Combine the normalized distances bottom-up over the query tree: weighted
   arithmetic mean for ``AND``, weighted geometric mean for ``OR``
   (:mod:`repro.core.combine`), re-normalizing between levels.
4. Turn the final combined distance into relevance factors and choose the
   subset of data items to display using the α-quantile or multi-peak
   heuristics (:mod:`repro.core.reduction`, :mod:`repro.core.relevance`).
5. Package everything into a :class:`~repro.core.result.QueryFeedback` that
   the visualization layer arranges into pixel windows.

:class:`~repro.core.engine.QueryEngine` is the public entry point for
interactive feedback loops (prepare once, re-execute incrementally);
:class:`~repro.core.pipeline.VisualFeedbackQuery` remains as the one-shot
facade over it.
"""

from repro.core.normalization import (
    NORMALIZED_MAX,
    minmax_normalize,
    reduced_normalization,
    normalize_signed,
)
from repro.core.weights import WeightSet
from repro.core.combine import combine_and, combine_or, CombinationRule
from repro.core.reduction import (
    display_fraction,
    quantile_threshold,
    select_by_quantile,
    signed_quantile_window,
    multipeak_cut,
    ReductionMethod,
)
from repro.core.relevance import RelevanceEvaluator, relevance_factors, RelevanceScale
from repro.core.result import (
    FeedbackDelta,
    FeedbackFrame,
    FeedbackStatistics,
    NodeFeedback,
    QueryFeedback,
)
from repro.core.plan import CacheStats, EvaluationCache, PlanEvaluator, compile_plan
from repro.core.shard import (
    ShardedPlanEvaluator,
    ShardedTable,
    shard_bounds,
    sharded_select_display_set,
)
from repro.core.engine import QueryEngine, PreparedQuery, ScreenSpec, PipelineConfig
from repro.core.pipeline import VisualFeedbackQuery

__all__ = [
    "NORMALIZED_MAX",
    "minmax_normalize",
    "reduced_normalization",
    "normalize_signed",
    "WeightSet",
    "combine_and",
    "combine_or",
    "CombinationRule",
    "display_fraction",
    "quantile_threshold",
    "select_by_quantile",
    "signed_quantile_window",
    "multipeak_cut",
    "ReductionMethod",
    "RelevanceEvaluator",
    "relevance_factors",
    "RelevanceScale",
    "NodeFeedback",
    "QueryFeedback",
    "FeedbackStatistics",
    "FeedbackDelta",
    "FeedbackFrame",
    "CacheStats",
    "EvaluationCache",
    "PlanEvaluator",
    "compile_plan",
    "ShardedPlanEvaluator",
    "ShardedTable",
    "shard_bounds",
    "sharded_select_display_set",
    "QueryEngine",
    "PreparedQuery",
    "VisualFeedbackQuery",
    "ScreenSpec",
    "PipelineConfig",
]
