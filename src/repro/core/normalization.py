"""Distance normalization (paper section 5.2).

Distances computed by different distance functions "may be in completely
different orders of magnitude", so before they can be combined they are
transformed linearly from their observed range ``[d_min, d_max]`` to a fixed
range (``[0, 255]`` here, matching the paper's example).

A plain min-max transformation is vulnerable to outliers: "a single data
item with an exceptionally high or low value may cause a completely
different transformation, even if the combined distance of this data item
is too high to be displayed".  The paper's improved scheme first restricts
the data considered per selection predicate to a number of items
proportional to ``r / (n · w_j)`` (the less a predicate is weighted, the
more of its distance range is kept) and only then normalizes over the
remaining range.  Items beyond that range saturate at the maximum.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NORMALIZED_MAX",
    "minmax_normalize",
    "normalization_keep_count",
    "reduced_bounds",
    "bounds_identical",
    "apply_normalization",
    "reduced_normalization",
    "normalize_signed",
]

#: Upper end of the fixed normalization range used throughout the system.
NORMALIZED_MAX = 255.0


def minmax_normalize(distances: np.ndarray, target_max: float = NORMALIZED_MAX) -> np.ndarray:
    """Linear transformation of ``[d_min, d_max]`` to ``[0, target_max]``.

    * NaN distances (items for which no distance is defined, e.g. failing
      negations) map to ``target_max``.
    * If all finite distances are equal they map to 0 when that value is 0
      ("all the data represent completely correct results" -> all yellow)
      and to ``target_max`` otherwise (equally wrong everywhere).
    """
    if target_max <= 0:
        raise ValueError("target_max must be positive")
    distances = np.asarray(distances, dtype=float)
    result = np.full(distances.shape, target_max, dtype=float)
    finite = np.isfinite(distances)
    if not np.any(finite):
        return result
    finite_values = distances[finite]
    d_min = float(finite_values.min())
    d_max = float(finite_values.max())
    if d_max == d_min:
        result[finite] = 0.0 if d_max == 0.0 else target_max
        return result
    result[finite] = (finite_values - d_min) / (d_max - d_min) * target_max
    return result


def normalization_keep_count(weight: float, display_capacity: int, n: int) -> int:
    """Number of items whose distances define the reduced normalization range.

    Proportional to ``r / w_j`` (inverse proportionality to the weight), but
    at least the display capacity itself and at most all ``n`` items.  This
    is the ``keep`` used by :func:`reduced_normalization`; it is exposed
    separately so a sharded evaluation can size its per-shard smallest-value
    partials to exactly the global order statistic it must resolve.
    """
    if display_capacity <= 0:
        raise ValueError("display_capacity must be positive")
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"weight must be in [0, 1], got {weight}")
    effective_weight = max(weight, 1e-6)
    return int(np.clip(np.ceil(display_capacity / effective_weight), 1, max(n, 1)))


def reduced_bounds(distances: np.ndarray, keep: int) -> tuple[float, float] | None:
    """The ``(d_min, d_max)`` of the reduced normalization, or None if no finite value.

    ``d_max`` is the ``keep``-th smallest finite distance (the whole finite
    range when ``keep`` covers it); both bounds are exact array elements.
    This is the single source of truth shared by the monolithic
    :func:`reduced_normalization` and the sharded evaluator's direct path,
    and the reference the per-shard partial merge
    (:mod:`repro.core.shard`) must reproduce bit for bit.
    """
    finite_mask = np.isfinite(distances)
    finite = distances if finite_mask.all() else distances[finite_mask]
    if len(finite) == 0:
        return None
    if keep >= len(finite):
        d_max = float(finite.max())
    else:
        d_max = float(np.partition(finite, keep - 1)[keep - 1])
    return float(finite.min()), d_max


def bounds_identical(a: tuple[float, float] | None,
                     b: tuple[float, float] | None) -> bool:
    """True when two resolved ``(d_min, d_max)`` pairs are the same *bits*.

    This is the gate of the incremental renormalization short-circuit: when
    an event leaves the resolved bounds bit-identical, the elementwise
    transform of every unchanged value is bit-identical too, so clean
    shards' normalized slices can be reused verbatim.  Plain ``==`` on the
    floats is exactly the right comparison (bounds are exact column
    elements, never recomputed arithmetic) *except* for NaN, which can
    legitimately appear as a resolved bound of an all-NaN-distance column
    and must compare equal to itself here.
    """
    if a is None or b is None:
        return a is None and b is None

    def same(x: float, y: float) -> bool:
        return x == y or (np.isnan(x) and np.isnan(y))

    return same(a[0], b[0]) and same(a[1], b[1])


def apply_normalization(distances: np.ndarray, d_min: float | None, d_max: float | None,
                        target_max: float = NORMALIZED_MAX) -> np.ndarray:
    """Elementwise reduced normalization against precomputed global bounds.

    ``d_min``/``d_max`` are the bounds :func:`reduced_normalization` derives
    from the *whole* distance column (``None`` meaning no finite value
    exists anywhere).  Because the transform is purely elementwise once the
    bounds are fixed, applying it shard by shard and concatenating yields a
    result bit-identical to the monolithic call -- the invariant the
    sharded evaluator relies on.
    """
    distances = np.asarray(distances, dtype=float)
    n = len(distances)
    if n == 0:
        return distances.copy()
    if d_min is None or d_max is None:
        return np.full(n, target_max, dtype=float)
    finite = np.isfinite(distances)
    all_finite = bool(finite.all())
    if d_max == d_min:
        result = np.full(n, target_max, dtype=float)
        result[finite] = 0.0 if d_max == 0.0 else target_max
        return result
    if all_finite:
        scaled = (distances - d_min) / (d_max - d_min) * target_max
        return np.clip(scaled, 0.0, target_max, out=scaled)
    result = np.full(n, target_max, dtype=float)
    scaled = (distances[finite] - d_min) / (d_max - d_min) * target_max
    result[finite] = np.clip(scaled, 0.0, target_max)
    return result


def reduced_normalization(distances: np.ndarray, weight: float, display_capacity: int,
                          target_max: float = NORMALIZED_MAX) -> np.ndarray:
    """The paper's outlier-robust normalization for one selection predicate.

    Parameters
    ----------
    distances:
        Absolute distances of all ``n`` data items for this predicate.
    weight:
        The predicate's weighting factor ``w_j`` in ``[0, 1]``.  Smaller
        weights keep a larger share of the distance range, because "the less
        a selection predicate is weighted, the higher is the probability
        that data with a greater distance for this selection predicate are
        needed".
    display_capacity:
        ``r`` -- the number of data items that can be displayed.

    Returns
    -------
    Normalized distances in ``[0, target_max]``; items whose distance falls
    outside the retained range saturate at ``target_max``.
    """
    keep = normalization_keep_count(weight, display_capacity, len(distances))
    distances = np.asarray(distances, dtype=float)
    if len(distances) == 0:
        return distances.copy()
    bounds = reduced_bounds(distances, keep)
    d_min, d_max = bounds if bounds is not None else (None, None)
    return apply_normalization(distances, d_min, d_max, target_max=target_max)


def normalize_signed(signed_distances: np.ndarray,
                     target_max: float = NORMALIZED_MAX) -> np.ndarray:
    """Normalize signed distances to ``[-target_max, target_max]`` preserving the sign.

    Used by the 2D arrangement (Fig. 1b), which needs the direction of the
    distance as well as its magnitude.  Positive and negative sides are
    scaled by the same factor (the larger absolute bound) so that the
    ordering of magnitudes is preserved across the sign boundary.
    """
    signed = np.asarray(signed_distances, dtype=float)
    result = np.full(signed.shape, target_max, dtype=float)
    finite = np.isfinite(signed)
    if not np.any(finite):
        return result
    bound = float(np.max(np.abs(signed[finite])))
    if bound == 0.0:
        result[finite] = 0.0
        return result
    result[finite] = signed[finite] / bound * target_max
    return result
