"""The VisDB visual-feedback query pipeline (backwards-compatible facade).

:class:`VisualFeedbackQuery` is the original one-shot entry point: it ties
together table assembly (single table, or the cross product of two tables
when the query uses connections/approximate joins), evaluation of the
weighted query tree into per-node distances, the display-set reduction
heuristics of section 5.1 and the :class:`~repro.core.result.QueryFeedback`
packaging the visualization layer consumes.

Since the introduction of :class:`~repro.core.engine.QueryEngine` this class
is a thin facade: it owns a private engine and delegates ``execute()`` to a
prepared query.  Repeated ``execute()`` calls on the *same* instance
therefore benefit from the engine's incremental caches (identical results,
less recomputation); constructing a fresh instance gives a cold run.  New
code that drives an interactive feedback loop should use the engine API
directly -- see the migration guide in README.md.

The dominating cost is the final sort of the combined distances, so the
whole pipeline is O(n log n) in the number of considered data items --
the efficiency requirement the paper sets for data mining tools.
"""

from __future__ import annotations

from repro.core.engine import (
    PipelineConfig,
    PreparedQuery,
    QueryEngine,
    QuerySource,
    ScreenSpec,
    coerce_query,
    item_capacity,
)
from repro.core.result import QueryFeedback
from repro.query.builder import Query
from repro.query.expr import QueryNode
from repro.storage.database import Database
from repro.storage.table import Table

__all__ = ["ScreenSpec", "PipelineConfig", "VisualFeedbackQuery"]


class VisualFeedbackQuery:
    """Execute a query with visual relevance feedback.

    Parameters
    ----------
    source:
        Either a :class:`~repro.storage.database.Database` (required when the
        query names tables or uses connections) or a single
        :class:`~repro.storage.table.Table`.
    query:
        A :class:`~repro.query.builder.Query`, a bare condition tree
        (:class:`~repro.query.expr.QueryNode`), or SQL-like text (parsed with
        :func:`repro.query.parser.parse_query` /
        :func:`~repro.query.parser.parse_condition`).
    config:
        Pipeline configuration; keyword overrides may be passed directly,
        e.g. ``VisualFeedbackQuery(db, q, percentage=0.4)``.
    """

    def __init__(self, source: Database | Table, query: QuerySource,
                 config: PipelineConfig | None = None, **overrides):
        self.source = source
        self.query = coerce_query(source, query)
        base = config or PipelineConfig()
        self.config = base.with_(**overrides) if overrides else base
        self._engine = QueryEngine(source, self.config)
        self._prepared: PreparedQuery | None = None
        #: (id(query), id(config)) the prepared state was built from; both
        #: attributes are public and reassignable, and the original class
        #: re-read them on every execute.
        self._prepared_from: tuple[int, int] | None = None

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def prepare(self) -> PreparedQuery:
        """The underlying prepared query (assembled on first use).

        Re-prepares when the public ``query`` or ``config`` attribute was
        reassigned wholesale since the last execution, preserving the
        original class's read-on-every-execute semantics.  (In-place
        condition mutation needs no re-prepare; fingerprints catch it.)
        """
        if self._prepared is None or self._prepared_from != (id(self.query), id(self.config)):
            self._engine.config = self.config
            self._prepared = self._engine.prepare(self.query)
            self._prepared_from = (id(self.query), id(self.config))
        return self._prepared

    def execute(self) -> QueryFeedback:
        """Run the pipeline and return the query feedback.

        Mutations of ``self.query.condition`` between calls are picked up
        automatically (the prepared plan refreshes itself via fingerprints).
        """
        return self.prepare().execute()

    def item_capacity(self, n_selection_predicates: int) -> int:
        """Number of data items displayable given the screen and the query size.

        Every item occupies ``pixels_per_item`` pixels in each of the
        ``#sp + 1`` windows (overall plus one per selection predicate).
        """
        return item_capacity(self.config, n_selection_predicates)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def with_percentage(self, percentage: float) -> "VisualFeedbackQuery":
        """Return a copy of the pipeline with a user-chosen display percentage."""
        return VisualFeedbackQuery(self.source, self.query, self.config.with_(percentage=percentage))

    def with_condition(self, condition: QueryNode) -> "VisualFeedbackQuery":
        """Return a copy with a modified condition (interactive query modification)."""
        new_query = Query(
            name=self.query.name,
            tables=list(self.query.tables),
            result_list=list(self.query.result_list),
            condition=condition,
            connections=list(self.query.connections),
        )
        return VisualFeedbackQuery(self.source, new_query, self.config)
