"""The VisDB visual-feedback query pipeline (public entry point).

:class:`VisualFeedbackQuery` ties everything together: it assembles the
evaluation table (single table, or the cross product of two tables when the
query uses connections/approximate joins), evaluates the weighted query
tree into per-node distances, reduces the displayed set with the heuristics
of section 5.1 and returns a :class:`~repro.core.result.QueryFeedback`
that the visualization layer turns into pixel windows.

The dominating cost is the final sort of the combined distances, so the
whole pipeline is O(n log n) in the number of considered data items --
the efficiency requirement the paper sets for data mining tools.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Union

import numpy as np

from repro.core.reduction import ReductionMethod, display_fraction, select_display_set
from repro.core.relevance import RelevanceEvaluator, RelevanceScale, relevance_factors
from repro.core.result import FeedbackStatistics, QueryFeedback
from repro.core.normalization import NORMALIZED_MAX
from repro.query.builder import Query
from repro.query.expr import AndNode, PredicateLeaf, QueryNode
from repro.query.parser import parse_condition, parse_query
from repro.storage.cross_product import CrossProduct
from repro.storage.database import Database
from repro.storage.table import Table

__all__ = ["ScreenSpec", "PipelineConfig", "VisualFeedbackQuery"]


@dataclass(frozen=True)
class ScreenSpec:
    """Display size in pixels.

    The default is the paper's 19-inch display (1,024 x 1,280 = about 1.3
    million pixels), "the obvious limit for any kind of visualization".
    """

    width: int = 1280
    height: int = 1024

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("screen dimensions must be positive")

    @property
    def pixels(self) -> int:
        """Total number of pixels available for distance values."""
        return self.width * self.height


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable parameters of the visual-feedback pipeline."""

    #: Physical display; bounds how many distance values can be shown.
    screen: ScreenSpec = field(default_factory=ScreenSpec)
    #: Each data item is represented by 1, 4 or 16 pixels (paper section 4.2).
    pixels_per_item: int = 1
    #: Heuristic choosing how many data items are displayed.
    reduction: ReductionMethod = ReductionMethod.QUANTILE
    #: User-chosen fraction of the data to display (overrides the heuristics).
    percentage: float | None = None
    #: Mapping from normalized combined distance to relevance factor.
    relevance_scale: RelevanceScale = RelevanceScale.LINEAR
    #: Cap on the number of cross-product pairs materialised for joins.
    max_join_pairs: int | None = 250_000
    #: Seed for deterministic cross-product sampling.
    join_seed: int = 0
    #: Upper end of the normalized distance range.
    target_max: float = NORMALIZED_MAX
    #: Half-width parameter z for the multi-peak heuristic (None = automatic).
    multipeak_z: int | None = None

    def __post_init__(self) -> None:
        if self.pixels_per_item not in (1, 4, 16):
            raise ValueError("pixels_per_item must be 1, 4 or 16")
        if self.percentage is not None and not 0.0 < self.percentage <= 1.0:
            raise ValueError("percentage must be in (0, 1]")

    def with_(self, **changes) -> "PipelineConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **changes)


QuerySource = Union[Query, QueryNode, str]


class VisualFeedbackQuery:
    """Execute a query with visual relevance feedback.

    Parameters
    ----------
    source:
        Either a :class:`~repro.storage.database.Database` (required when the
        query names tables or uses connections) or a single
        :class:`~repro.storage.table.Table`.
    query:
        A :class:`~repro.query.builder.Query`, a bare condition tree
        (:class:`~repro.query.expr.QueryNode`), or SQL-like text (parsed with
        :func:`repro.query.parser.parse_query` /
        :func:`~repro.query.parser.parse_condition`).
    config:
        Pipeline configuration; keyword overrides may be passed directly,
        e.g. ``VisualFeedbackQuery(db, q, percentage=0.4)``.
    """

    def __init__(self, source: Database | Table, query: QuerySource,
                 config: PipelineConfig | None = None, **overrides):
        self.source = source
        self.query = self._coerce_query(source, query)
        base = config or PipelineConfig()
        self.config = base.with_(**overrides) if overrides else base

    # ------------------------------------------------------------------ #
    # Query coercion and table assembly
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce_query(source: Database | Table, query: QuerySource) -> Query:
        if isinstance(query, Query):
            return query
        if isinstance(query, QueryNode):
            table_names = [source.name] if isinstance(source, Table) else list(
                getattr(source, "table_names", [])
            )[:1]
            return Query(name="ad-hoc", tables=table_names or ["?"], condition=query)
        if isinstance(query, str):
            text = query.strip()
            if text.lower().startswith("select"):
                return parse_query(text)
            condition = parse_condition(text)
            table_names = [source.name] if isinstance(source, Table) else list(
                getattr(source, "table_names", [])
            )[:1]
            return Query(name="ad-hoc", tables=table_names or ["?"], condition=condition)
        raise TypeError(f"unsupported query type: {type(query).__name__}")

    def _base_tables(self) -> list[Table]:
        if isinstance(self.source, Table):
            return [self.source]
        tables: list[Table] = []
        for name in self.query.tables:
            if name in self.source:
                tables.append(self.source.table(name))
        if not tables:
            raise ValueError(
                f"none of the query tables {self.query.tables!r} exist in the database"
            )
        return tables

    def _qualify_condition(self, condition: QueryNode, table: Table) -> QueryNode:
        """Rewrite unqualified attribute references for a cross-product table.

        Cross-product columns are prefixed with their table names
        (``Weather.Temperature``); predicates written with bare attribute
        names are rewritten to the unique matching prefixed column.
        """
        condition = copy.deepcopy(condition)
        for _, leaf in condition.iter_leaves():
            predicate = leaf.predicate
            attribute = getattr(predicate, "attribute", None)
            if attribute is None or table.has_column(attribute):
                continue
            matches = [c for c in table.column_names if c.endswith(f".{attribute}")]
            if len(matches) == 1:
                # All concrete predicates are dataclasses with an
                # ``attribute`` field, so this assignment is well-defined.
                predicate.attribute = matches[0]
            elif len(matches) > 1:
                raise ValueError(
                    f"attribute {attribute!r} is ambiguous in the join result; "
                    f"qualify it as one of {matches}"
                )
            else:
                raise KeyError(
                    f"attribute {attribute!r} not found in the join result columns"
                )
        return condition

    def _assemble(self) -> tuple[Table, QueryNode]:
        """Build the evaluation table and the effective condition tree."""
        condition = self.query.condition
        tables = self._base_tables()
        if not self.query.connections:
            if condition is None:
                raise ValueError("the query has no condition; nothing to visualize")
            table = tables[0]
            if len(tables) > 1:
                raise ValueError(
                    "multi-table queries need at least one connection (join) "
                    "to relate the tables"
                )
            return table, copy.deepcopy(condition)
        # Approximate join: evaluate over the cross product of the two tables
        # named by the connections; every join becomes an additional
        # AND-connected selection predicate with its own window.
        involved = {c.left_table for c in self.query.connections} | {
            c.right_table for c in self.query.connections
        }
        if len(involved) != 2:
            raise NotImplementedError(
                "the pipeline currently supports joins between exactly two tables; "
                f"the query connects {sorted(involved)}"
            )
        if isinstance(self.source, Table):
            raise ValueError("queries with connections require a Database source")
        first = self.query.connections[0]
        left = self.source.table(first.left_table)
        right = self.source.table(first.right_table)
        product = CrossProduct(
            left, right, max_pairs=self.config.max_join_pairs, seed=self.config.join_seed
        )
        table = product.to_table()
        join_leaves = [
            PredicateLeaf(connection.to_predicate(), label=connection.describe())
            for connection in self.query.connections
        ]
        if condition is not None:
            condition = self._qualify_condition(condition, table)
            effective = AndNode([condition, *join_leaves], label="overall")
        elif len(join_leaves) == 1:
            effective = join_leaves[0]
        else:
            effective = AndNode(join_leaves, label="overall")
        return table, effective

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def item_capacity(self, n_selection_predicates: int) -> int:
        """Number of data items displayable given the screen and the query size.

        Every item occupies ``pixels_per_item`` pixels in each of the
        ``#sp + 1`` windows (overall plus one per selection predicate).
        """
        per_item = self.config.pixels_per_item * (n_selection_predicates + 1)
        return max(1, self.config.screen.pixels // per_item)

    def execute(self) -> QueryFeedback:
        """Run the pipeline and return the query feedback."""
        table, condition = self._assemble()
        n = len(table)
        n_predicates = condition.leaf_count()
        capacity_items = self.item_capacity(n_predicates)
        if self.config.percentage is not None:
            # A user-chosen display percentage changes the normalization range:
            # "changing the percentage of data being displayed may completely
            # change the visualization since the distance values are normalized
            # according to the new range" (section 4.3).
            capacity_items = min(capacity_items, max(1, int(round(self.config.percentage * n))))
        evaluator = RelevanceEvaluator(
            display_capacity=capacity_items, target_max=self.config.target_max
        )
        node_feedback = evaluator.evaluate(condition, table)
        overall = node_feedback[()]
        pixel_budget = max(1, self.config.screen.pixels // self.config.pixels_per_item)
        displayed = select_display_set(
            overall.normalized_distances,
            capacity=pixel_budget,
            n_selection_predicates=n_predicates,
            method=(
                ReductionMethod.PERCENTAGE
                if self.config.percentage is not None
                else self.config.reduction
            ),
            percentage=self.config.percentage,
            multipeak_z=self.config.multipeak_z,
        )
        if len(displayed) > capacity_items:
            # More items fall inside the quantile window than fit on screen
            # (ties at the threshold): keep the closest ones.
            distances = overall.normalized_distances[displayed]
            order = np.argsort(distances, kind="stable")
            displayed = displayed[order[:capacity_items]]
        # Sort the displayed items by relevance (ascending combined distance);
        # this ordering drives the spiral arrangement of the overall window
        # and, via positional correspondence, all per-predicate windows.
        display_order = displayed[
            np.argsort(overall.normalized_distances[displayed], kind="stable")
        ]
        relevance = relevance_factors(
            overall.normalized_distances, self.config.relevance_scale, self.config.target_max
        )
        statistics = FeedbackStatistics(
            num_objects=n,
            num_displayed=len(display_order),
            percentage_displayed=(len(display_order) / n) if n else 0.0,
            num_results=overall.result_count,
        )
        return QueryFeedback(
            table=table,
            query_description=self.query.describe(),
            node_feedback=node_feedback,
            display_order=display_order,
            relevance=relevance,
            statistics=statistics,
            display_capacity=capacity_items,
            extra={
                "display_fraction": display_fraction(pixel_budget, n, n_predicates),
                "pixels_per_item": self.config.pixels_per_item,
                # Map node path -> query-tree node, used by the slider layer to
                # recover predicate attributes and query ranges.
                "condition_nodes": dict(condition.iter_nodes()),
            },
        )

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def with_percentage(self, percentage: float) -> "VisualFeedbackQuery":
        """Return a copy of the pipeline with a user-chosen display percentage."""
        return VisualFeedbackQuery(self.source, self.query, self.config.with_(percentage=percentage))

    def with_condition(self, condition: QueryNode) -> "VisualFeedbackQuery":
        """Return a copy with a modified condition (interactive query modification)."""
        new_query = Query(
            name=self.query.name,
            tables=list(self.query.tables),
            result_list=list(self.query.result_list),
            condition=condition,
            connections=list(self.query.connections),
        )
        return VisualFeedbackQuery(self.source, new_query, self.config)
