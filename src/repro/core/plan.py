"""Execution plans: compiled query trees evaluated through a result cache.

:func:`compile_plan` turns a condition tree into a tree of plan nodes, each
carrying a stable fingerprint of the computation it performs.  The paper's
conclusions ask for exactly this seam: "retrieve more data than necessary in
the beginning and retrieve only the additional portion of the data that is
needed for a slightly modified query later on" -- between two executions of
an interactively modified query most of the tree is unchanged, so most
per-node results can be reused byte-for-byte.

Caching happens at two levels, matching what each modification invalidates:

* **raw leaf columns** (signed distances, absolute distances, exact masks)
  are keyed by the predicate fingerprint alone.  Weight, percentage and
  display-capacity changes reuse them untouched; only an actual predicate
  change (a slider move) recomputes the one affected leaf.
* **normalized node columns** are keyed by the node's value fingerprint
  (raw identity + weights + normalization parameters).  A weight change
  re-normalizes the affected path; everything off the path is a cache hit.

Incremental and cold executions share this evaluator, so an incremental
re-execution returns exactly (bit-for-bit) the feedback a cold
:class:`~repro.core.pipeline.VisualFeedbackQuery` run would.  Against the
classic :class:`~repro.core.relevance.RelevanceEvaluator` the results are
numerically equivalent but not guaranteed bit-identical: the AND
combination accumulates per-column here versus a BLAS matrix-vector
product there, which may round differently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.core.chunks import ChunkedColumn, as_array, as_chunked
from repro.core.combine import CombinationRule, combine_columns
from repro.core.normalization import NORMALIZED_MAX, reduced_normalization
from repro.core.result import NodeFeedback
from repro.obs import trace as obs
from repro.query.expr import (
    AndNode,
    NodePath,
    NotNode,
    OrNode,
    PredicateLeaf,
    QueryNode,
    SubqueryNode,
)
from repro.query.fingerprint import stable_fingerprint
from repro.query.predicates import RangePredicate
from repro.storage.cache import MAX_UNION_DISJUNCTS, PrefetchCache

__all__ = [
    "LeafPlan",
    "CompositePlan",
    "PlanNode",
    "compile_plan",
    "CacheStats",
    "EvaluationCache",
    "PlanEvaluator",
    "ShardSliceCache",
    "ShardSliceEntry",
]


# --------------------------------------------------------------------------- #
# Cached values
# --------------------------------------------------------------------------- #
def _freeze(*arrays: np.ndarray | None) -> None:
    """Mark cached arrays read-only.

    The cache hands the same ndarray objects to every execution (inside
    :class:`NodeFeedback`), so an in-place mutation by a consumer would
    silently corrupt all later results; freezing turns that into an error.

    :class:`ChunkedColumn` values are skipped by type: their chunks are
    already individually read-only, and touching ``.flags`` on one would
    silently materialize the whole column on the hot path.
    """
    for array in arrays:
        if array is None or isinstance(array, ChunkedColumn):
            continue
        if array.flags.writeable:
            array.flags.writeable = False


#: Cached columns are plain frozen ndarrays on cold paths and chunked
#: copy-on-write columns once the incremental patch paths have touched them.
Column = Union[np.ndarray, ChunkedColumn]


@dataclass
class _LeafRaw:
    """Normalization-independent arrays of one leaf (shared across executes)."""

    signed: Column
    raw: Column
    exact_mask: Column
    supports_direction: bool

    def __post_init__(self) -> None:
        _freeze(self.signed, self.raw, self.exact_mask)


@dataclass
class _NodeColumns:
    """Per-node arrays for one (weights, capacity) configuration."""

    normalized: Column
    signed: Column | None
    exact_mask: Column
    raw: Column

    def __post_init__(self) -> None:
        _freeze(self.normalized, self.signed, self.exact_mask, self.raw)


@dataclass(frozen=True)
class _RangeHistory:
    """Last computed state of a range (slider) leaf on one attribute."""

    low: float
    high: float
    raw: _LeafRaw
    #: Fingerprint of the raw computation that produced ``raw`` -- the base
    #: identity the sharded dirty-tracking patches against.
    raw_key: str | None = None


@dataclass(frozen=True)
class ShardSliceEntry:
    """Incremental per-shard state of one plan-node *site*.

    A site is a structural position in one prepared query's plan (leaf or
    composite), identified independently of the mutable parameters (bounds,
    weights).  The entry remembers what the node's column looked like after
    the previous execution -- its value fingerprint, the resolved
    ``(d_min, d_max)``, per-shard order-statistic summaries against that
    resolve, and the arrays themselves (shared with the node LRU, so no
    extra column memory) -- which is exactly what a later execution needs
    to recompute only the shards an event actually dirtied.

    ``summaries`` is a ``(shard_count, 5)`` array of per-shard
    ``(finite_count, min, max, count < d_max, count <= d_max)``.  Summing
    the counts over all shards re-certifies the resolved bounds in O(dirty
    shards + shard_count) without touching clean shards: the ``keep``-th
    smallest of the new column equals the old ``d_max`` exactly when
    ``count< < keep <= count<=`` -- no merge of value multisets needed.

    Entries are validated structurally before any patch: the stored
    provenance (leaf raw key / composite child keys + weights) must match
    what the current computation would have used, so a stale or foreign
    entry can only cause a full recompute, never a wrong patch.
    """

    value_key: str
    columns: _NodeColumns
    resolved: tuple[float, float] | None
    #: (shard_count, 5) float array of per-shard order-statistic summaries
    #: relative to ``resolved`` (None when not captured).
    summaries: np.ndarray | None
    target_max: float
    shard_count: int
    #: Leaf provenance: identity of the raw column the entry derives from.
    raw_key: str | None = None
    #: Composite provenance: child value keys / weights / rule at build time.
    child_keys: tuple[str, ...] | None = None
    child_weights: tuple[float, ...] | None = None
    rule: object | None = None
    generation: int = 0


class ShardSliceCache:
    """Generation-tagged LRU of :class:`ShardSliceEntry` per node site.

    ``invalidate()`` bumps the generation, making every existing entry
    stale at once; :meth:`EvaluationCache.clear` uses it so entries cached
    by an in-flight evaluation cannot be re-published after the clear.
    Wholesale *shape* changes of one prepared query are invalidated
    differently -- the query regenerates its slice token, orphaning its
    old sites without touching other sessions' entries (which share this
    per-table store).  Parameter-level changes (bounds, weights, capacity)
    need no explicit invalidation at all: entries carry their provenance
    and a mismatch falls back to a full recompute.
    """

    def __init__(self, max_entries: int = 64):
        self._lru = _LRU(max_entries)
        self.generation = 0

    def get(self, key: str) -> ShardSliceEntry | None:
        entry = self._lru.get(key)
        if entry is not None and entry.generation != self.generation:
            return None
        return entry

    def put(self, key: str, entry: ShardSliceEntry) -> None:
        """Publish an entry stamped with the generation its writer read.

        An entry carrying a stale generation is silently dropped: its
        writer started evaluating before an ``invalidate()`` (a concurrent
        :meth:`EvaluationCache.clear`), so publishing it would resurrect
        state the clear was meant to discard.
        """
        if entry.generation != self.generation:
            return
        self._lru.put(key, entry)

    def invalidate(self) -> None:
        self.generation += 1

    def clear(self) -> None:
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)


class _LRU:
    """A tiny bounded mapping evicting the least recently used entry."""

    def __init__(self, max_entries: int):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.evictions = 0
        self._data: OrderedDict[str, object] = OrderedDict()

    def get(self, key: str):
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def contains(self, key: str) -> bool:
        """Membership test without touching recency."""
        return key in self._data

    def put(self, key: str, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`EvaluationCache` (for tests/benchmarks)."""

    leaf_hits: int = 0
    leaf_misses: int = 0
    node_hits: int = 0
    node_misses: int = 0
    leaf_evictions: int = 0
    node_evictions: int = 0
    #: Sharded dirty-tracking: node recomputations that patched a previous
    #: column (slice_hits) vs. falling back to a full per-shard recompute.
    slice_hits: int = 0
    slice_misses: int = 0
    #: Per-shard work attribution across all patched/full node stages:
    #: shards whose slice had to be recomputed vs. reused verbatim.
    shards_recomputed: int = 0
    shards_reused: int = 0
    #: Patched nodes whose merged (d_min, d_max) came out unchanged, so the
    #: clean shards' normalized slices were reused without renormalizing.
    bounds_shortcircuits: int = 0
    #: Displayed-set selections patched from cached per-shard top-k partials.
    displayed_patches: int = 0
    #: Result counts served from per-shard mask popcounts (dirty shards
    #: recounted, clean shards' cached counts reused) instead of a full
    #: O(n) popcount of the root fulfilment mask.
    result_count_patches: int = 0
    #: Executions that ran with dirty-shard tracking enabled.
    incremental_events: int = 0
    #: Chunked copy-on-write accounting across all column patches: chunks
    #: that had to be copied (a dirty row/span intersected them) vs. chunks
    #: aliased verbatim from the previous column.
    chunks_patched: int = 0
    chunks_shared: int = 0
    #: Quantile-reduction displayed sets served by the per-shard
    #: order-statistic certificate vs. falling back to the exact O(n)
    #: concatenate-and-quantile path.
    quantile_certified: int = 0
    quantile_fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "leaf_hits": self.leaf_hits,
            "leaf_misses": self.leaf_misses,
            "node_hits": self.node_hits,
            "node_misses": self.node_misses,
            "leaf_evictions": self.leaf_evictions,
            "node_evictions": self.node_evictions,
            "slice_hits": self.slice_hits,
            "slice_misses": self.slice_misses,
            "shards_recomputed": self.shards_recomputed,
            "shards_reused": self.shards_reused,
            "bounds_shortcircuits": self.bounds_shortcircuits,
            "displayed_patches": self.displayed_patches,
            "result_count_patches": self.result_count_patches,
            "incremental_events": self.incremental_events,
            "chunks_patched": self.chunks_patched,
            "chunks_shared": self.chunks_shared,
            "quantile_certified": self.quantile_certified,
            "quantile_fallbacks": self.quantile_fallbacks,
        }


class EvaluationCache:
    """Two-level result cache for one evaluation table.

    Parameters
    ----------
    max_leaf_entries / max_node_entries:
        LRU entry bounds.  Each entry holds O(n) float arrays, so the total
        footprint scales with the table size times the entry count;
        :meth:`QueryEngine.evaluation_cache` derives the counts from a byte
        budget for the table at hand rather than using the defaults.
    """

    def __init__(self, max_leaf_entries: int = 64, max_node_entries: int = 128,
                 max_slice_entries: int = 64):
        self._raw = _LRU(max_leaf_entries)
        self._nodes = _LRU(max_node_entries)
        #: Last range-leaf result per attribute, enabling delta recomputation
        #: when a slider moves: only the rows between the old and the new
        #: bounds get fresh distances.
        self._range_history: dict[str, _RangeHistory] = {}
        #: Per-site incremental shard state (sharded evaluator only).  The
        #: entries reference the same arrays as the node LRU, so the extra
        #: footprint is the (small) per-shard partials plus metadata.
        self._slices = ShardSliceCache(max_slice_entries)
        self.stats = CacheStats()
        # One evaluation cache is shared by every session executing against
        # the same table; the service runs those executions on concurrent
        # worker threads.  All entries are immutable (frozen arrays), so the
        # lock only has to make the LRU bookkeeping and counters atomic --
        # two threads racing to fill the same key both produce exact values.
        self._lock = threading.Lock()

    # Raw leaf columns ---------------------------------------------------- #
    def get_raw(self, key: str) -> _LeafRaw | None:
        with self._lock:
            value = self._raw.get(key)
            if value is None:
                self.stats.leaf_misses += 1
            else:
                self.stats.leaf_hits += 1
            return value

    def put_raw(self, key: str, value: _LeafRaw) -> None:
        with self._lock:
            self._raw.put(key, value)
            self.stats.leaf_evictions = self._raw.evictions

    def peek_raw(self, key: str) -> bool:
        """True when the raw column is cached; no stats, no LRU touch.

        Eligibility probes (is there any work to offload?) use this so
        they neither skew the hit/miss counters nor promote entries the
        probe itself is not going to read.
        """
        with self._lock:
            return self._raw.contains(key)

    # Normalized node columns --------------------------------------------- #
    def get_node(self, key: str) -> _NodeColumns | None:
        with self._lock:
            value = self._nodes.get(key)
            if value is None:
                self.stats.node_misses += 1
            else:
                self.stats.node_hits += 1
            return value

    def put_node(self, key: str, value: _NodeColumns) -> None:
        with self._lock:
            self._nodes.put(key, value)
            self.stats.node_evictions = self._nodes.evictions

    def peek_node(self, key: str) -> bool:
        """True when the node column is cached; no stats, no LRU touch."""
        with self._lock:
            return self._nodes.contains(key)

    # Range-leaf history ---------------------------------------------------- #
    def range_history(self, attribute: str) -> _RangeHistory | None:
        with self._lock:
            return self._range_history.get(attribute)

    def set_range_history(self, attribute: str, low: float, high: float,
                          raw: _LeafRaw, raw_key: str | None = None) -> None:
        with self._lock:
            self._range_history[attribute] = _RangeHistory(low, high, raw, raw_key)

    # Shard-slice entries --------------------------------------------------- #
    def slice_generation(self) -> int:
        """Current slice generation; writers stamp their entries with it."""
        with self._lock:
            return self._slices.generation

    def get_slice(self, site: str) -> ShardSliceEntry | None:
        with self._lock:
            return self._slices.get(site)

    def put_slice(self, site: str, entry: ShardSliceEntry) -> None:
        with self._lock:
            self._slices.put(site, entry)

    def record_incremental_event(self) -> None:
        with self._lock:
            self.stats.incremental_events += 1

    def record_displayed_patch(self) -> None:
        with self._lock:
            self.stats.displayed_patches += 1

    def record_result_count_patch(self) -> None:
        with self._lock:
            self.stats.result_count_patches += 1

    def record_chunks(self, patched: int, shared: int) -> None:
        """Account one copy-on-write column patch's chunk reuse."""
        with self._lock:
            self.stats.chunks_patched += patched
            self.stats.chunks_shared += shared

    def record_quantile(self, certified: bool) -> None:
        """Account one quantile-reduction selection's certificate outcome."""
        with self._lock:
            if certified:
                self.stats.quantile_certified += 1
            else:
                self.stats.quantile_fallbacks += 1

    def record_slice(self, *, hit: bool, recomputed: int, reused: int,
                     shortcircuit: bool = False) -> None:
        """Account one node-column computation's dirty-shard outcome."""
        with self._lock:
            if hit:
                self.stats.slice_hits += 1
            else:
                self.stats.slice_misses += 1
            self.stats.shards_recomputed += recomputed
            self.stats.shards_reused += reused
            if shortcircuit:
                self.stats.bounds_shortcircuits += 1

    def clear(self) -> None:
        """Drop all cached arrays (counters are kept)."""
        with self._lock:
            self._raw.clear()
            self._nodes.clear()
            self._range_history.clear()
            self._slices.clear()
            self._slices.invalidate()


# --------------------------------------------------------------------------- #
# Plan compilation
# --------------------------------------------------------------------------- #
@dataclass
class LeafPlan:
    """A leaf of the execution plan (predicate or subquery distances)."""

    node: Union[PredicateLeaf, SubqueryNode]
    #: Identity of the raw distance computation (weight-independent).
    raw_key: str

    @property
    def weight(self) -> float:
        return self.node.weight

    def value_key(self, capacity: int, target_max: float) -> str:
        return stable_fingerprint("leaf", self.raw_key, self.node.weight, capacity, target_max)


@dataclass
class CompositePlan:
    """An AND/OR combination step over child plans."""

    node: Union[AndNode, OrNode]
    rule: CombinationRule
    children: list["PlanNode"] = field(default_factory=list)

    @property
    def weight(self) -> float:
        return self.node.weight

    def value_key(self, capacity: int, target_max: float) -> str:
        return stable_fingerprint(
            self.rule,
            self.node.weight,
            capacity,
            target_max,
            *[child.value_key(capacity, target_max) for child in self.children],
        )


PlanNode = Union[LeafPlan, CompositePlan]


def compile_plan(condition: QueryNode) -> PlanNode:
    """Compile a condition tree into an execution plan.

    ``NOT`` nodes are rewritten into their inverted comparison at compile
    time (the same rewrite :class:`RelevanceEvaluator` applies during
    evaluation); negations that cannot be rewritten raise ``ValueError``,
    mirroring the paper's statement that they provide no distance values.

    Composite exact masks are reduced from the rewritten children's masks,
    so for NaN data a negated comparison follows SQL three-valued logic
    (NaN fulfils neither ``a > 5`` nor ``NOT (a > 5)``).  The v1.0
    evaluator was internally inconsistent here: the NOT node's own window
    used the rewritten mask while its parent's mask used the set
    complement, counting NaN rows as results of the negation.
    """
    if isinstance(condition, NotNode):
        return compile_plan(condition.simplify())
    if isinstance(condition, (PredicateLeaf, SubqueryNode)):
        return LeafPlan(node=condition, raw_key=condition.source_fingerprint())
    if isinstance(condition, (AndNode, OrNode)):
        rule = CombinationRule.AND if isinstance(condition, AndNode) else CombinationRule.OR
        return CompositePlan(
            node=condition,
            rule=rule,
            children=[compile_plan(child) for child in condition.children],
        )
    raise TypeError(f"unsupported query node type: {type(condition).__name__}")


# --------------------------------------------------------------------------- #
# Plan evaluation
# --------------------------------------------------------------------------- #
class PlanEvaluator:
    """Evaluate a compiled plan over a table, reusing cached node results.

    Parameters
    ----------
    table:
        The evaluation table (base table or materialised cross product).
    display_capacity:
        ``r`` in the paper's normalization formula (see
        :class:`~repro.core.relevance.RelevanceEvaluator`).
    cache:
        Shared :class:`EvaluationCache`; pass a fresh instance for a cold run.
    prefetch:
        Optional :class:`~repro.storage.cache.PrefetchCache` over ``table``;
        when present, range-predicate fulfilment sets are answered through
        it (and through its range indexes) instead of a fresh column scan.
    """

    def __init__(self, table, display_capacity: int, target_max: float = NORMALIZED_MAX,
                 cache: EvaluationCache | None = None,
                 prefetch: PrefetchCache | None = None):
        if display_capacity <= 0:
            raise ValueError("display_capacity must be positive")
        self.table = table
        self.display_capacity = display_capacity
        self.target_max = target_max
        self.cache = cache if cache is not None else EvaluationCache()
        self.prefetch = prefetch
        #: Per-event chunked copy-on-write accounting (reset by ``evaluate``).
        self._chunks_patched = 0
        self._chunks_shared = 0

    # ------------------------------------------------------------------ #
    def evaluate(self, plan: PlanNode) -> dict[NodePath, NodeFeedback]:
        """Return a :class:`NodeFeedback` per node path; path ``()`` is the root."""
        self._chunks_patched = 0
        self._chunks_shared = 0
        feedback: dict[NodePath, NodeFeedback] = {}
        self._evaluate(plan, (), feedback)
        return feedback

    # ------------------------------------------------------------------ #
    def _record_chunks(self, column) -> None:
        """Account a freshly patched column's chunk reuse (evaluator + cache)."""
        patched = getattr(column, "patched_chunks", 0)
        shared = getattr(column, "shared_chunks", 0)
        if patched or shared:
            self._chunks_patched += patched
            self._chunks_shared += shared
            self.cache.record_chunks(patched, shared)

    def _chunk_marks(self) -> tuple[int, int]:
        return (self._chunks_patched, self._chunks_shared)

    def _annotate_chunks(self, marks: tuple[int, int]) -> None:
        """Annotate the ambient span with chunk counts accrued since ``marks``."""
        patched = self._chunks_patched - marks[0]
        shared = self._chunks_shared - marks[1]
        if patched or shared:
            obs.annotate(chunks_patched=patched, chunks_shared=shared)

    # ------------------------------------------------------------------ #
    def _evaluate(self, plan: PlanNode, path: NodePath,
                  feedback: dict[NodePath, NodeFeedback]) -> _NodeColumns:
        is_leaf = isinstance(plan, LeafPlan)
        with obs.span("node.evaluate", node=str(path),
                      kind="leaf" if is_leaf else "composite"):
            if is_leaf:
                columns = self._leaf_columns(plan, path)
            else:
                columns = self._composite_columns(plan, path, feedback)
        feedback[path] = NodeFeedback(
            path=path,
            label=plan.node.label,
            weight=plan.node.weight,
            is_leaf=isinstance(plan, LeafPlan),
            normalized_distances=columns.normalized,
            signed_distances=columns.signed,
            exact_mask=columns.exact_mask,
            raw_distances=columns.raw,
        )
        return columns

    def _leaf_columns(self, plan: LeafPlan, path: NodePath = ()) -> _NodeColumns:
        value_key = plan.value_key(self.display_capacity, self.target_max)
        columns = self.cache.get_node(value_key)
        if columns is not None:
            obs.annotate(cache="node-hit")
            return columns
        marks = self._chunk_marks()
        raw = self.cache.get_raw(plan.raw_key)
        if raw is None:
            with obs.span("leaf.raw"):
                raw = self._compute_leaf_raw(plan.node, plan.raw_key)
            self.cache.put_raw(plan.raw_key, raw)
            obs.annotate(cache="miss")
        else:
            obs.annotate(cache="raw-hit")
        self._annotate_chunks(marks)
        with obs.span("normalize"):
            # Monolithic normalization is a full elementwise pass anyway, so
            # a chunked raw column is materialized once (and cached) here.
            normalized = self._normalize(as_array(raw.raw), plan.node.weight)
        columns = _NodeColumns(
            normalized=normalized,
            signed=raw.signed if raw.supports_direction else None,
            exact_mask=raw.exact_mask,
            raw=raw.raw,
        )
        self.cache.put_node(value_key, columns)
        return columns

    def _compute_leaf_raw(self, node: Union[PredicateLeaf, SubqueryNode],
                          raw_key: str | None = None) -> _LeafRaw:
        if isinstance(node, SubqueryNode):
            signed = np.asarray(node.signed_distances(self.table), dtype=float)
            return _LeafRaw(
                signed=signed,
                raw=np.abs(signed),
                exact_mask=np.asarray(node.exact_mask(self.table), dtype=bool),
                supports_direction=True,
            )
        predicate = node.predicate
        if isinstance(predicate, RangePredicate):
            return self._range_leaf_raw(predicate, raw_key)
        signed = np.asarray(predicate.signed_distances(self.table), dtype=float)
        exact = self._exact_mask(predicate)
        return _LeafRaw(
            signed=signed,
            raw=np.abs(signed),
            exact_mask=exact,
            supports_direction=predicate.supports_direction,
        )

    def _range_leaf_raw(self, predicate: RangePredicate,
                        raw_key: str | None = None) -> _LeafRaw:
        """Range-leaf distances, recomputed only between the old and new bounds.

        A slider move from ``[old_low, old_high]`` to ``[low, high]`` changes
        the signed distance only for rows with ``v <= max(old_low, low)`` or
        ``v >= min(old_high, high)``.  When the attribute has a range index
        (built once the slider becomes hot) those rows are found in
        O(log n + k) and recomputed with exactly the formula
        :meth:`RangePredicate.signed_distances` uses, so the result is
        bit-identical to a full recomputation -- "retrieve only the
        additional portion of the data" from the paper's conclusions.
        """
        attribute = predicate.attribute
        index = None
        if self.prefetch is not None and self.prefetch.indexes:
            index = self.prefetch.indexes.get(attribute)
        history = self.cache.range_history(attribute) if index is not None else None
        if history is not None:
            # Distances change only on the side of a bound that moved: every
            # row violating that bound (its distance is measured against the
            # bound), plus the band the bound swept over.  Rows on the side
            # of an unmoved bound keep their exact values.
            pieces = []
            if predicate.low != history.low:
                pieces.append(index.range_query(None, max(history.low, predicate.low),
                                                sort=False))
            if predicate.high != history.high:
                pieces.append(index.range_query(min(history.high, predicate.high), None,
                                                sort=False))
            changed = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.intp)
            # A delta update only pays off while the touched row set is small;
            # past a third of the table the full vectorised recomputation wins.
            if len(changed) > len(self.table) // 3:
                history = None
        if history is not None:
            # Copy-on-write: only the chunks the swept band intersects are
            # copied; every clean chunk is aliased from the cached column.
            old = history.raw
            signed = as_chunked(old.signed)
            raw = as_chunked(old.raw)
            if len(changed):
                values = np.asarray(self.table.column(attribute), dtype=float)[changed]
                below = np.where(values < predicate.low, values - predicate.low, 0.0)
                above = np.where(values > predicate.high, values - predicate.high, 0.0)
                delta = below + above
                delta = np.where(np.isnan(values), np.nan, delta)
                signed = signed.patch(changed, delta)
                raw = raw.patch(changed, np.abs(delta))
                self._record_chunks(signed)
                self._record_chunks(raw)
            result = _LeafRaw(
                signed=signed,
                raw=raw,
                exact_mask=self._exact_mask(predicate),
                supports_direction=True,
            )
        else:
            signed = np.asarray(predicate.signed_distances(self.table), dtype=float)
            result = _LeafRaw(
                signed=signed,
                raw=np.abs(signed),
                exact_mask=self._exact_mask(predicate),
                supports_direction=predicate.supports_direction,
            )
        self.cache.set_range_history(attribute, predicate.low, predicate.high, result,
                                     raw_key)
        return result

    def _normalize(self, values: np.ndarray, weight: float) -> np.ndarray:
        """Reduced normalization of one node column.

        Overridden by the sharded evaluator, which resolves the global
        ``(d_min, d_max)`` bounds from mergeable per-shard partials and then
        applies the (elementwise, hence bit-identical) transform shard by
        shard -- see :mod:`repro.core.shard`.
        """
        return reduced_normalization(
            values, weight, self.display_capacity, target_max=self.target_max
        )

    def _combine(self, rule: CombinationRule, columns: list[np.ndarray],
                 weights: np.ndarray) -> np.ndarray:
        """Combine child columns (overridden to run shard-parallel)."""
        return combine_columns(rule, columns, weights)

    def _exact_mask(self, predicate) -> np.ndarray:
        """Fulfilment mask of one predicate, through the prefetch cache if possible."""
        if (
            self.prefetch is not None
            and isinstance(predicate, RangePredicate)
            and self.table.has_column(predicate.attribute)
            and self.table.is_numeric(predicate.attribute)
        ):
            return self.prefetch.fulfilment_mask(
                {predicate.attribute: (predicate.low, predicate.high)}
            )
        return np.asarray(predicate.exact_mask(self.table), dtype=bool)

    def _union_boxes(self, plan: CompositePlan) -> list[dict] | None:
        """One query box per child when an OR's mask can use the union cache.

        Eligible when every child is a range-predicate leaf over a numeric
        column and there are 2..``MAX_UNION_DISJUNCTS`` of them -- exactly
        the shape :meth:`PrefetchCache.fulfilment_mask_union` answers from
        one cached union region.  A row fulfils the OR iff it fulfils some
        disjunct, and both paths use the identical closed-interval filter
        (NaN excluded), so the union mask is bit-identical to OR-ing the
        per-leaf masks.
        """
        if plan.rule is not CombinationRule.OR:
            return None
        if not 2 <= len(plan.children) <= MAX_UNION_DISJUNCTS:
            return None
        boxes: list[dict] = []
        for child in plan.children:
            if not isinstance(child, LeafPlan):
                return None
            predicate = getattr(child.node, "predicate", None)
            if not isinstance(predicate, RangePredicate):
                return None
            if not (self.table.has_column(predicate.attribute)
                    and self.table.is_numeric(predicate.attribute)):
                return None
            boxes.append({predicate.attribute: (predicate.low, predicate.high)})
        return boxes

    def _composite_columns(self, plan: CompositePlan, path: NodePath,
                           feedback: dict[NodePath, NodeFeedback]) -> _NodeColumns:
        # Children are always walked so that every node path gets feedback;
        # each child resolves from the cache when its subtree is unchanged.
        child_columns = [
            self._evaluate(child, path + (i,), feedback)
            for i, child in enumerate(plan.children)
        ]
        value_key = plan.value_key(self.display_capacity, self.target_max)
        columns = self.cache.get_node(value_key)
        if columns is not None:
            obs.annotate(cache="node-hit")
            return columns
        obs.annotate(cache="miss")
        weights = np.array([child.weight for child in plan.children], dtype=float)
        with obs.span("combine", rule=plan.rule.name):
            combined = self._combine(
                plan.rule, [c.normalized for c in child_columns], weights
            )
        with obs.span("normalize"):
            normalized = self._normalize(combined, plan.node.weight)
        with obs.span("mask"):
            if plan.rule is CombinationRule.AND:
                exact = np.ones(len(self.table), dtype=bool)
                for c in child_columns:
                    exact &= c.exact_mask
            else:
                boxes = self._union_boxes(plan) if self.prefetch is not None else None
                if boxes is not None:
                    exact = self.prefetch.fulfilment_mask_union(boxes)
                else:
                    exact = np.zeros(len(self.table), dtype=bool)
                    for c in child_columns:
                        exact |= c.exact_mask
        columns = _NodeColumns(normalized=normalized, signed=None, exact_mask=exact, raw=combined)
        self.cache.put_node(value_key, columns)
        return columns
