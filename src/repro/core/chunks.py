"""Chunked copy-on-write columns for the incremental hot path.

The evaluation caches share frozen (read-only) column arrays across
executions, snapshots and sessions, so a patched column used to be a
fresh O(n) array assembled from reused clean slices plus recomputed
dirty ones -- the "O(n) memcpy floor" named in the roadmap.  A
:class:`ChunkedColumn` removes that floor: the column is a sequence of
fixed-size read-only chunks, and a patch produces a *new* column that
copies only the chunks the dirty rows intersect while aliasing every
clean chunk from the previous column.  The frozen-array contract
survives because chunks, not whole columns, stay read-only; consumers
that need a contiguous ndarray go through the lazy, cached
:meth:`ChunkedColumn.materialize` seam (or ``np.asarray``, which routes
through ``__array__``).

Design points that matter for bit-identity and safety:

* the chunk grid is fixed at construction (chunk ``k`` covers rows
  ``[k*chunk_rows, (k+1)*chunk_rows)``), so patches of patches keep
  aliasing cheaply and never re-split data;
* :meth:`patch` accepts unsorted, possibly duplicated row indices (the
  range-leaf delta path concatenates a low-side and a high-side band
  that can overlap); duplicates carry identical values, and the grouped
  assignment writes them exactly like the fancy assignment it replaces;
* :meth:`patch_spans` aliases *fresh* data too: a chunk fully covered
  by a recomputed span becomes a zero-copy view of the span's piece,
  so patching a whole dirty shard costs O(edge chunks) memcpy;
* ``__setitem__`` raises the same ``read-only`` ``ValueError`` a frozen
  ndarray raises, and unknown attributes delegate to the materialized
  array, so most ndarray consumers work unchanged -- but hot-path code
  must *not* touch attributes like ``.flags`` on a chunked column (that
  would silently materialize); the evaluator guards those sites with
  ``isinstance`` checks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CHUNK_ROWS",
    "ChunkedColumn",
    "as_array",
    "as_chunked",
]

#: Default chunk size in rows.  128 KiB of float64 per chunk: large enough
#: that per-chunk Python overhead is negligible against the memcpy, small
#: enough that a few-thousand-row dirty band touches O(1) chunks of a
#: multi-million-row column.  Read at construction time so tests can
#: monkeypatch it to force many-chunk columns on small tables.
CHUNK_ROWS = 16_384


def _freeze(array: np.ndarray) -> np.ndarray:
    if array.flags.writeable:
        array.flags.writeable = False
    return array


class ChunkedColumn:
    """An immutable column stored as fixed-size read-only chunks.

    Instances are value-immutable: every mutating operation returns a new
    column sharing the untouched chunks.  ``patched_chunks`` /
    ``shared_chunks`` describe how the instance was built (both zero for
    a column built from a whole array) and feed the ``chunks_patched`` /
    ``chunks_shared`` observability counters.
    """

    __slots__ = ("_chunks", "_n", "_chunk_rows", "_dtype", "_materialized",
                 "_slice_cache", "patched_chunks", "shared_chunks")

    def __init__(self, chunks: tuple[np.ndarray, ...], n: int, chunk_rows: int,
                 dtype, materialized: np.ndarray | None = None,
                 patched: int = 0, shared: int = 0):
        self._chunks = chunks
        self._n = n
        self._chunk_rows = chunk_rows
        self._dtype = np.dtype(dtype)
        self._materialized = materialized
        self._slice_cache = None
        self.patched_chunks = patched
        self.shared_chunks = shared

    # ------------------------------------------------------------------ #
    @classmethod
    def from_array(cls, array, chunk_rows: int | None = None) -> "ChunkedColumn":
        """Wrap a 1-D array as zero-copy chunk views (freezing the array)."""
        array = np.asarray(array)
        if array.ndim != 1:
            raise ValueError("ChunkedColumn wraps 1-D columns only")
        rows = int(chunk_rows) if chunk_rows is not None else CHUNK_ROWS
        if rows <= 0:
            raise ValueError("chunk_rows must be positive")
        _freeze(array)
        n = len(array)
        chunks = tuple(array[i:i + rows] for i in range(0, n, rows))
        return cls(chunks, n, rows, array.dtype, materialized=array)

    # ------------------------------------------------------------------ #
    def patch(self, rows, values) -> "ChunkedColumn":
        """A new column with ``self[rows] = values``, copying touched chunks.

        ``rows`` may be unsorted and may contain duplicates (each duplicate
        must carry the same value, as in the range-leaf delta bands).
        """
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            return self
        values = np.asarray(values)
        if rows.size > 1 and np.any(np.diff(rows) < 0):
            order = np.argsort(rows, kind="stable")
            rows = rows[order]
            values = values[order]
        if rows[0] < 0 or rows[-1] >= self._n:
            raise IndexError("patch rows out of range")
        size = self._chunk_rows
        chunk_ids = rows // size
        cuts = np.flatnonzero(np.diff(chunk_ids)) + 1
        starts = np.concatenate(([0], cuts))
        stops = np.concatenate((cuts, [rows.size]))
        chunks = list(self._chunks)
        for lo, hi in zip(starts, stops):
            k = int(chunk_ids[lo])
            fresh = np.array(chunks[k])
            fresh[rows[lo:hi] - k * size] = values[lo:hi]
            chunks[k] = _freeze(fresh)
        patched = len(starts)
        return ChunkedColumn(tuple(chunks), self._n, size, self._dtype,
                             patched=patched, shared=len(chunks) - patched)

    def patch_spans(self, spans) -> "ChunkedColumn":
        """A new column with each ``(start, stop, piece)`` span replaced.

        Chunks fully covered by a span become zero-copy views of the
        span's ``piece`` (which is frozen); only chunks a span edge cuts
        through are splice-copied.  Spans must be disjoint; two spans may
        share an edge chunk (each splice works on the already-updated
        chunk).
        """
        size = self._chunk_rows
        chunks = list(self._chunks)
        replaced: set[int] = set()
        for start, stop, piece in spans:
            start = int(start)
            stop = int(stop)
            if stop <= start:
                continue
            if start < 0 or stop > self._n:
                raise IndexError("patch span out of range")
            piece = _freeze(np.asarray(piece))
            first = start // size
            last = (stop - 1) // size
            for k in range(first, last + 1):
                chunk_start = k * size
                chunk_stop = min(chunk_start + size, self._n)
                lo = max(start, chunk_start)
                hi = min(stop, chunk_stop)
                if lo == chunk_start and hi == chunk_stop:
                    chunks[k] = piece[lo - start:hi - start]
                else:
                    fresh = np.array(chunks[k])
                    fresh[lo - chunk_start:hi - chunk_start] = piece[lo - start:hi - start]
                    chunks[k] = _freeze(fresh)
                replaced.add(k)
        if not replaced:
            return self
        return ChunkedColumn(tuple(chunks), self._n, size, self._dtype,
                             patched=len(replaced),
                             shared=len(chunks) - len(replaced))

    # ------------------------------------------------------------------ #
    def materialize(self) -> np.ndarray:
        """The contiguous frozen ndarray view of this column (cached)."""
        out = self._materialized
        if out is None:
            out = np.empty(self._n, dtype=self._dtype)
            position = 0
            for chunk in self._chunks:
                out[position:position + len(chunk)] = chunk
                position += len(chunk)
            self._materialized = _freeze(out)
        return out

    # ------------------------------------------------------------------ #
    @property
    def dtype(self):
        return self._dtype

    @property
    def shape(self) -> tuple[int]:
        return (self._n,)

    @property
    def size(self) -> int:
        return self._n

    @property
    def ndim(self) -> int:
        return 1

    @property
    def chunk_rows(self) -> int:
        return self._chunk_rows

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    def __len__(self) -> int:
        return self._n

    def __array__(self, dtype=None, copy=None):
        out = self.materialize()
        if dtype is not None and np.dtype(dtype) != out.dtype:
            return out.astype(dtype)
        if copy:
            return out.copy()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ChunkedColumn(n={self._n}, chunks={len(self._chunks)}, "
                f"chunk_rows={self._chunk_rows}, dtype={self._dtype})")

    # ------------------------------------------------------------------ #
    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            index = int(key)
            if index < 0:
                index += self._n
            if not 0 <= index < self._n:
                raise IndexError("index out of range")
            return self._chunks[index // self._chunk_rows][index % self._chunk_rows]
        if isinstance(key, slice):
            return self._slice(key)
        index = np.asarray(key)
        if index.dtype == np.bool_:
            return self.materialize()[index]
        return self._gather(index)

    def _slice(self, key: slice) -> np.ndarray:
        start, stop, step = key.indices(self._n)
        if step != 1:
            return self.materialize()[key]
        if self._materialized is not None:
            return self._materialized[start:stop]
        if stop <= start:
            return _freeze(np.empty(0, dtype=self._dtype))
        size = self._chunk_rows
        first = start // size
        last = (stop - 1) // size
        if first == last:
            return self._chunks[first][start - first * size:stop - first * size]
        # Multi-chunk slices pay an O(span) assemble; the evaluator's hot
        # path slices the same dirty-shard span from one column several
        # times per event (summary, renormalize, select), so remember the
        # last assembled span.  Safe because instances and the returned
        # frozen array are both immutable.
        cache = self._slice_cache
        if cache is None:
            cache = self._slice_cache = {}
        cached = cache.get((start, stop))
        if cached is not None:
            return cached
        out = np.empty(stop - start, dtype=self._dtype)
        for k in range(first, last + 1):
            chunk_start = k * size
            lo = max(start, chunk_start)
            hi = min(stop, chunk_start + len(self._chunks[k]))
            out[lo - start:hi - start] = self._chunks[k][lo - chunk_start:hi - chunk_start]
        out = _freeze(out)
        if len(cache) >= 32:
            cache.clear()
        cache[(start, stop)] = out
        return out

    def _gather(self, index: np.ndarray) -> np.ndarray:
        """Fancy integer gather grouped by chunk -- never materializes."""
        index = index.astype(np.intp, copy=False)
        if index.ndim != 1:
            return self.materialize()[index]
        if index.size == 0:
            return np.empty(0, dtype=self._dtype)
        if self._materialized is not None:
            return self._materialized[index]
        order = None
        ordered = index
        if index.size > 1 and np.any(np.diff(index) < 0):
            order = np.argsort(index, kind="stable")
            ordered = index[order]
        if ordered[0] < 0 or ordered[-1] >= self._n:
            # Negative (or out-of-range) indices: let numpy's own fancy
            # indexing semantics and errors apply.
            return self.materialize()[index]
        size = self._chunk_rows
        chunk_ids = ordered // size
        cuts = np.flatnonzero(np.diff(chunk_ids)) + 1
        starts = np.concatenate(([0], cuts))
        stops = np.concatenate((cuts, [ordered.size]))
        gathered = np.empty(ordered.size, dtype=self._dtype)
        for lo, hi in zip(starts, stops):
            k = int(chunk_ids[lo])
            gathered[lo:hi] = self._chunks[k][ordered[lo:hi] - k * size]
        if order is None:
            return gathered
        out = np.empty_like(gathered)
        out[order] = gathered
        return out

    def __setitem__(self, key, value):
        raise ValueError("assignment destination is read-only")

    def __getattr__(self, name):
        # Unknown *public* ndarray attributes (.sum, .min, .tolist, ...)
        # delegate to the materialized array.  Dunder/private names raise so
        # protocols (pickle, copy) never silently degrade to an ndarray.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.materialize(), name)


def as_chunked(column, chunk_rows: int | None = None) -> ChunkedColumn:
    """``column`` as a :class:`ChunkedColumn` (zero-copy if already one)."""
    if isinstance(column, ChunkedColumn):
        return column
    return ChunkedColumn.from_array(column, chunk_rows)


def as_array(column) -> np.ndarray:
    """``column`` as a contiguous ndarray (zero-cost for plain ndarrays)."""
    if isinstance(column, ChunkedColumn):
        return column.materialize()
    return column
