"""Result data model: per-node feedback and the overall query feedback.

The :class:`QueryFeedback` object is what the visualization layer consumes.
It records, for every node of the query tree, the normalized distances of
all data items, plus the subset of items chosen for display and their
relevance ordering.  The per-predicate windows use the *same ordering* as
the overall result window so that pixels at the same relative position
refer to the same data item -- the positional linking that lets the user
relate windows to each other.

:class:`FeedbackFrame` is the versioned form one
:meth:`~repro.core.engine.PreparedQuery.execute` call returns: the same
full feedback, stamped with a monotonically increasing ``frame_id`` and --
when the engine's incremental bookkeeping proved a relation to the previous
frame -- a :class:`FeedbackDelta` describing exactly which rows entered or
left the displayed set and which row spans may carry new relevance values.
Consumers that only understand full arrays keep working unchanged (the
frame *is* a :class:`QueryFeedback`); consumers that speak deltas (the
service's v2 streaming protocol) read the delta instead of re-deriving an
O(n) diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.query.expr import NodePath
from repro.storage.table import Table

__all__ = [
    "NodeFeedback",
    "FeedbackStatistics",
    "QueryFeedback",
    "FeedbackDelta",
    "FeedbackFrame",
]


@dataclass
class NodeFeedback:
    """Distances and fulfilment information for one node of the query tree."""

    path: NodePath
    label: str
    weight: float
    is_leaf: bool
    #: Normalized distances (0..255) for *all* data items of the evaluation table.
    normalized_distances: np.ndarray
    #: Signed raw distances, present when the predicate supports direction.
    signed_distances: np.ndarray | None
    #: Boolean mask of items exactly fulfilling this (sub)condition.
    exact_mask: np.ndarray
    #: Raw (pre-normalization) absolute or combined distances.
    raw_distances: np.ndarray

    @property
    def result_count(self) -> int:
        """Number of items exactly fulfilling this node ("# of results" row)."""
        return int(np.sum(self.exact_mask))

    def restrictiveness(self) -> float:
        """Mean normalized distance in [0, 1]: 1 = maximally restrictive (dark window).

        "if a window is getting darker (brighter), the corresponding
        selection predicate is getting more (less) restrictive".
        """
        if len(self.normalized_distances) == 0:
            return 0.0
        return float(np.mean(self.normalized_distances)) / 255.0


@dataclass(frozen=True)
class FeedbackStatistics:
    """The numbers shown on the left of the query modification part (Fig. 4/5)."""

    num_objects: int
    num_displayed: int
    percentage_displayed: float
    num_results: int

    def as_dict(self) -> dict[str, Any]:
        """Plain dictionary, convenient for printing benchmark rows."""
        return {
            "# objects": self.num_objects,
            "# displayed": self.num_displayed,
            "% displayed": round(self.percentage_displayed * 100.0, 1),
            "# of results": self.num_results,
        }


@dataclass
class QueryFeedback:
    """Complete feedback for one query evaluation."""

    table: Table
    query_description: str
    node_feedback: dict[NodePath, NodeFeedback]
    #: Indices (into ``table``) of the displayed data items, in relevance order
    #: (most relevant first); this is the order the spiral arrangement consumes.
    display_order: np.ndarray
    #: Relevance factor per data item of the full table (1 = exact answer).
    relevance: np.ndarray
    statistics: FeedbackStatistics
    #: Capacity (in data items) that was used for reduction/normalization.
    display_capacity: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def overall(self) -> NodeFeedback:
        """Feedback of the root node (the overall result window)."""
        return self.node_feedback[()]

    @property
    def paths(self) -> list[NodePath]:
        """All node paths, root first, in pre-order."""
        return sorted(self.node_feedback, key=lambda p: (len(p), p))

    def top_level_paths(self) -> list[NodePath]:
        """Paths of the top-level query parts (one visualization window each)."""
        return sorted(p for p in self.node_feedback if len(p) == 1)

    # ------------------------------------------------------------------ #
    def ordered_distances(self, path: NodePath = ()) -> np.ndarray:
        """Normalized distances of the displayed items, in display order.

        For the root path the sequence is monotonically non-decreasing (the
        overall window is sorted by relevance); for other paths it is the
        same items in the same positions but with that node's distances --
        exactly how the per-predicate windows keep positional correspondence.
        """
        return self.node_feedback[path].normalized_distances[self.display_order]

    def ordered_signed_distances(self, path: NodePath) -> np.ndarray | None:
        """Signed distances of the displayed items in display order (or None)."""
        signed = self.node_feedback[path].signed_distances
        if signed is None:
            return None
        return signed[self.display_order]

    def ordered_relevance(self) -> np.ndarray:
        """Relevance factors of the displayed items, most relevant first."""
        return self.relevance[self.display_order]

    def ordered_values(self, column_name: str) -> np.ndarray:
        """Attribute values of the displayed items, in display order.

        This backs the slider colour-spectrum readouts ("first of color" /
        "last of color") and the selected-tuple display.
        """
        return self.table.column(column_name)[self.display_order]

    def displayed_mask(self) -> np.ndarray:
        """Boolean mask over the full table: True for displayed items."""
        mask = np.zeros(len(self.table), dtype=bool)
        mask[self.display_order] = True
        return mask

    def item_at_rank(self, rank: int) -> int:
        """Table row index of the item at a given display rank (0 = most relevant)."""
        if not 0 <= rank < len(self.display_order):
            raise IndexError(f"rank {rank} out of range for {len(self.display_order)} displayed items")
        return int(self.display_order[rank])

    def rank_of_item(self, row_index: int) -> int | None:
        """Display rank of a table row, or None if the item is not displayed."""
        positions = np.nonzero(self.display_order == row_index)[0]
        return int(positions[0]) if len(positions) else None

    def selected_tuple(self, rank: int) -> dict[str, Any]:
        """Attribute values of the item at ``rank`` (the "selected tuple" field)."""
        return self.table.row(self.item_at_rank(rank))

    # ------------------------------------------------------------------ #
    def window_summary(self) -> dict[str, dict[str, float]]:
        """Per-window summary: restrictiveness, result count and yellow share.

        The yellow share is the fraction of *displayed* items whose distance
        for that node is exactly 0 (the size of the yellow region in the
        middle of the window).
        """
        summary: dict[str, dict[str, float]] = {}
        for path in self.paths:
            node = self.node_feedback[path]
            ordered = self.ordered_distances(path)
            yellow = float(np.mean(ordered == 0.0)) if len(ordered) else 0.0
            summary[node.label] = {
                "restrictiveness": node.restrictiveness(),
                "results": node.result_count,
                "yellow_share": yellow,
            }
        return summary


# --------------------------------------------------------------------------- #
# Versioned frames and deltas
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FeedbackDelta:
    """How one frame's result relates to the frame it was derived from.

    Produced by :meth:`~repro.core.engine.PreparedQuery.execute` alongside
    each :class:`FeedbackFrame` whenever the previous frame of the same
    prepared query is known.  Every claim in here is *proven*, not
    heuristic: the displayed-set difference is computed exactly (the
    displayed set is bounded by the screen capacity, so the set diff is
    O(displayed log displayed), never O(n)), and ``relevance_spans`` comes
    from the engine's dirty-shard certificates -- rows outside the listed
    spans are guaranteed bit-identical to the base frame.

    ``relevance_spans`` semantics:

    * ``()`` (empty tuple) -- the overall column, hence the relevance of
      every row, is unchanged;
    * ``((start, stop), ...)`` -- relevance may differ only inside the
      listed half-open global row ranges (the dirty shards);
    * ``None`` -- no relation is known (cold run after a reshape, a
      normalization-bounds shift, or monolithic execution without a cache
      identity): treat every row as potentially changed.
    """

    #: ``frame_id`` of the frame this delta is measured against.
    base_frame_id: int
    #: Rows that entered the displayed set, ascending global row index.
    entered: np.ndarray
    #: Rows that left the displayed set, ascending global row index.
    left: np.ndarray
    #: True when ``display_order`` is element-for-element identical to the
    #: base frame's (implies ``entered``/``left`` are empty).
    order_unchanged: bool
    #: Half-open ``(start, stop)`` global row ranges outside which the
    #: relevance column is provably unchanged; see class docstring.
    relevance_spans: tuple[tuple[int, int], ...] | None

    @property
    def display_unchanged(self) -> bool:
        """True when the displayed set and its ordering are both unchanged."""
        return self.order_unchanged

    def changed_row_estimate(self, n: int) -> int:
        """Upper bound on rows whose relevance may differ from the base frame."""
        if self.relevance_spans is None:
            return n
        return sum(stop - start for start, stop in self.relevance_spans)


@dataclass
class FeedbackFrame(QueryFeedback):
    """A :class:`QueryFeedback` with a version and a delta against its base.

    ``frame_id`` increases monotonically per prepared query;
    ``base_frame_id`` names the previous frame (None for the first).  The
    ``delta`` is present when the engine could prove a relation between the
    two frames -- see :class:`FeedbackDelta`.

    The frame *is* the full feedback: the per-node arrays live in the
    engine's caches whether or not anyone reads them, so carrying them
    costs no extra memory, and every pre-existing consumer (the facade,
    :class:`~repro.interact.session.VisDBSession`, tests) keeps reading the
    same bit-identical arrays.  :meth:`materialize` is the explicit seam
    for code that wants a plain :class:`QueryFeedback` contract.
    """

    frame_id: int = 0
    base_frame_id: int | None = None
    delta: FeedbackDelta | None = None

    def materialize(self) -> QueryFeedback:
        """The full-array view of this frame (shared arrays, no copies).

        Today the frame already holds every array, so this returns ``self``;
        transports that ship only deltas call it at the point where a full
        frame is genuinely required (a resync, a new subscriber), keeping
        the O(n) surface in one place.
        """
        return self

    def relevance_updates(self) -> list[tuple[int, int, np.ndarray]]:
        """Per-span relevance values for the delta's dirty rows.

        Returns ``(start, stop, values)`` triples covering exactly the rows
        whose relevance may differ from the base frame (``values`` are
        views into the frame's relevance column).  With no delta, or an
        unknown relation, one triple covering the whole table is returned.
        """
        if self.delta is None or self.delta.relevance_spans is None:
            return [(0, len(self.relevance), self.relevance)]
        return [
            (start, stop, self.relevance[start:stop])
            for start, stop in self.delta.relevance_spans
        ]
