"""Property-based tests (hypothesis) for the core invariants.

The invariants tested here are the ones the whole visualization rests on:
normalization stays in range and preserves order, the AND/OR combination
respects fulfilment semantics, the reduction heuristics never select more
than allowed, the spiral covers windows exactly once, and string distances
behave like distances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.combine import combine_and, combine_or
from repro.core.normalization import NORMALIZED_MAX, minmax_normalize, reduced_normalization
from repro.core.reduction import display_fraction, multipeak_cut, select_by_quantile
from repro.core.relevance import relevance_factors
from repro.distance.strings import character_distance, edit_distance, phonetic_distance
from repro.vis.colormap import VisDBColormap
from repro.vis.spiral import rect_spiral_coords

finite_distances = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=300),
    elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
)

weights = st.floats(min_value=0.01, max_value=1.0)


# -- normalization ------------------------------------------------------------ #
@given(finite_distances)
def test_minmax_normalize_stays_in_range(distances):
    normalized = minmax_normalize(distances)
    assert np.all(normalized >= 0.0)
    assert np.all(normalized <= NORMALIZED_MAX)


@given(finite_distances)
def test_minmax_normalize_preserves_order(distances):
    normalized = minmax_normalize(distances)
    order_before = np.argsort(distances, kind="stable")
    assert np.all(np.diff(normalized[order_before]) >= -1e-9)


@given(finite_distances, weights, st.integers(min_value=1, max_value=500))
def test_reduced_normalization_range_and_zero_preservation(distances, weight, capacity):
    normalized = reduced_normalization(distances, weight, capacity)
    assert np.all((normalized >= 0.0) & (normalized <= NORMALIZED_MAX))
    # Exact answers (distance 0) stay exact unless every distance is equal and nonzero.
    if distances.min() == 0.0 and distances.max() > 0.0:
        assert np.all(normalized[distances == 0.0] == 0.0)


@given(finite_distances, weights, st.integers(min_value=1, max_value=500))
def test_reduced_normalization_is_monotone(distances, weight, capacity):
    normalized = reduced_normalization(distances, weight, capacity)
    order = np.argsort(distances, kind="stable")
    assert np.all(np.diff(normalized[order]) >= -1e-9)


# -- combination ----------------------------------------------------------------- #
# Elements are either exactly 0 (a fulfilled predicate) or clearly positive, so
# that floating-point underflow of the geometric-mean product cannot blur the
# "combined distance is zero" semantics the properties assert on.
child_matrix = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 50), st.integers(1, 5)),
    elements=st.one_of(st.just(0.0), st.floats(min_value=0.5, max_value=255.0, allow_nan=False)),
)


@given(child_matrix)
def test_combine_or_zero_iff_a_full_weight_child_is_zero(matrix):
    weight_vector = np.ones(matrix.shape[1])
    combined = combine_or(matrix, weight_vector)
    any_zero = np.any(matrix == 0.0, axis=1)
    assert np.all((combined == 0.0) == any_zero)


@given(child_matrix)
def test_combine_and_zero_iff_all_children_zero(matrix):
    weight_vector = np.ones(matrix.shape[1])
    combined = combine_and(matrix, weight_vector)
    all_zero = np.all(matrix == 0.0, axis=1)
    assert np.all((combined == 0.0) == all_zero)


@given(child_matrix)
def test_combine_results_are_nonnegative(matrix):
    weight_vector = np.full(matrix.shape[1], 0.5)
    assert np.all(combine_and(matrix, weight_vector) >= 0.0)
    assert np.all(combine_or(matrix, weight_vector) >= 0.0)


# -- relevance -------------------------------------------------------------------- #
@given(arrays(dtype=np.float64, shape=st.integers(1, 200),
              elements=st.floats(min_value=0.0, max_value=255.0, allow_nan=False)))
def test_relevance_factors_in_unit_interval_and_antitone(distances):
    relevance = relevance_factors(distances)
    assert np.all((relevance >= 0.0) & (relevance <= 1.0))
    order = np.argsort(distances, kind="stable")
    assert np.all(np.diff(relevance[order]) <= 1e-9)


# -- reduction ---------------------------------------------------------------------- #
@given(finite_distances, st.floats(min_value=0.0, max_value=1.0))
def test_select_by_quantile_threshold_property(distances, p):
    selected = select_by_quantile(distances, p)
    if p > 0 and len(distances) > 0:
        assert len(selected) >= 1
    if len(selected) > 0 and len(selected) < len(distances):
        not_selected = np.setdiff1d(np.arange(len(distances)), selected)
        assert distances[selected].max() <= distances[not_selected].min() + 1e-9


@given(st.integers(1, 10_000), st.integers(1, 100_000), st.integers(0, 8))
def test_display_fraction_bounds(pixel_budget, n_items, n_predicates):
    fraction = display_fraction(pixel_budget, n_items, n_predicates)
    assert 0.0 <= fraction <= 1.0


@given(
    arrays(dtype=np.float64, shape=st.integers(2, 200),
           elements=st.floats(min_value=0.0, max_value=1e4, allow_nan=False)),
    st.integers(1, 50),
)
@settings(max_examples=50)
def test_multipeak_cut_within_bounds(distances, z):
    distances = np.sort(distances)
    r_min = 1
    r_max = len(distances)
    cut = multipeak_cut(distances, r_min, r_max, z=z)
    assert r_min <= cut <= r_max


# -- spiral --------------------------------------------------------------------------- #
@given(st.integers(1, 40), st.integers(1, 40))
@settings(max_examples=60)
def test_spiral_is_a_bijection(width, height):
    coords = rect_spiral_coords(width, height)
    assert coords.shape == (width * height, 2)
    assert len({(x, y) for x, y in coords}) == width * height
    assert coords[:, 0].max() < width and coords[:, 1].max() < height
    assert coords[:, 0].min() >= 0 and coords[:, 1].min() >= 0


# -- colormap --------------------------------------------------------------------------- #
@given(arrays(dtype=np.float64, shape=st.integers(1, 100),
              elements=st.floats(min_value=0.0, max_value=255.0, allow_nan=False)))
def test_colormap_output_is_valid_rgb(distances):
    colours = VisDBColormap()(distances)
    assert colours.dtype == np.uint8
    assert colours.shape == distances.shape + (3,)


# -- string distances ------------------------------------------------------------------- #
text = st.text(alphabet=st.characters(min_codepoint=65, max_codepoint=122), max_size=12)


@given(text, text)
def test_edit_distance_symmetry_and_identity(a, b):
    assert edit_distance(a, b) == edit_distance(b, a)
    assert edit_distance(a, a) == 0.0
    assert edit_distance(a, b) >= 0.0
    assert edit_distance(a, b) <= max(len(a), len(b))


@given(text, text, text)
@settings(max_examples=60)
def test_edit_distance_triangle_inequality(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c) + 1e-9


@given(text, text)
def test_character_and_phonetic_distances_nonnegative(a, b):
    assert character_distance(a, b) >= 0.0
    assert phonetic_distance(a, b) >= 0.0
    assert character_distance(a, a) == 0.0
    assert phonetic_distance(a, a) == 0.0
