"""Property tests for the sharded merge algebra.

The sharded evaluator's bit-identity contract rests on two merge algebras:
per-shard ``(d_min, d_max)`` partials (:mod:`repro.core.shard`) and
per-shard top-k candidate sets (:mod:`repro.core.reduction`).  These tests
pin the invariants any future backend must preserve:

* merging is associative and order-independent (any shard order, any fold
  shape resolves to the same result);
* all-NaN shards and empty shards are identity elements;
* resolved results equal the monolithic computation bit for bit,
  including ties at the capacity boundary, where the stable-argsort tie
  rule (ascending global row index) must survive merging.
"""

from __future__ import annotations

from functools import reduce

import numpy as np
import pytest

from repro.core.normalization import (
    apply_normalization,
    normalization_keep_count,
    reduced_normalization,
)
from repro.core.reduction import (
    ReductionMethod,
    merge_topk_candidates,
    resolve_topk,
    select_display_set,
    topk_candidates,
)
from repro.core.shard import (
    distance_bounds_partial,
    empty_distance_bounds,
    merge_distance_bounds,
    resolve_distance_bounds,
    shard_bounds,
)


def random_column(rng: np.random.Generator, n: int, *, nan_fraction: float = 0.0,
                  tie_heavy: bool = False) -> np.ndarray:
    """A distance-like column; quantized values force ties when asked."""
    values = rng.uniform(0.0, 100.0, n)
    if tie_heavy:
        values = np.round(values / 10.0) * 10.0
    if nan_fraction > 0.0 and n > 0:
        values[rng.random(n) < nan_fraction] = np.nan
    return values


def random_cuts(rng: np.random.Generator, n: int, pieces: int) -> list[tuple[int, int]]:
    """A random (not necessarily balanced) partition of [0, n) into ranges."""
    cuts = np.sort(rng.integers(0, n + 1, size=max(pieces - 1, 0)))
    edges = [0, *cuts.tolist(), n]
    return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]


# --------------------------------------------------------------------------- #
# shard_bounds
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("n,k", [(0, 1), (0, 5), (1, 1), (10, 3), (10, 10), (7, 32), (100, 7)])
def test_shard_bounds_cover_and_balance(n, k):
    bounds = shard_bounds(n, k)
    assert len(bounds) == k
    assert bounds[0][0] == 0 and bounds[-1][1] == n
    sizes = [stop - start for start, stop in bounds]
    assert all(s >= 0 for s in sizes)
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1
    for (_, stop), (start, _) in zip(bounds, bounds[1:]):
        assert stop == start


def test_shard_bounds_validation():
    with pytest.raises(ValueError):
        shard_bounds(10, 0)
    with pytest.raises(ValueError):
        shard_bounds(-1, 2)


# --------------------------------------------------------------------------- #
# (d_min, d_max) merge algebra
# --------------------------------------------------------------------------- #
def resolved_over(values: np.ndarray, cuts, capacity: int, order=None):
    partials = [distance_bounds_partial(values[a:b], capacity) for a, b in cuts]
    if order is not None:
        partials = [partials[i] for i in order]
    return resolve_distance_bounds(reduce(merge_distance_bounds, partials))


@pytest.mark.parametrize("seed", range(12))
def test_distance_bounds_match_monolithic_normalization(seed):
    """Sharded bounds + elementwise transform == reduced_normalization, bitwise."""
    rng = np.random.default_rng(1000 + seed)
    n = int(rng.integers(1, 400))
    values = random_column(rng, n, nan_fraction=float(rng.choice([0.0, 0.2, 0.9])))
    weight = float(rng.choice([0.05, 0.3, 1.0]))
    capacity = int(rng.integers(1, 2 * n + 2))
    keep = normalization_keep_count(weight, capacity, n)
    cuts = random_cuts(rng, n, int(rng.integers(1, 9)))
    resolved = resolved_over(values, cuts, keep)
    d_min, d_max = resolved if resolved is not None else (None, None)
    sharded = np.concatenate([
        apply_normalization(values[a:b], d_min, d_max) for a, b in cuts
    ])
    np.testing.assert_array_equal(
        sharded, reduced_normalization(values, weight, capacity)
    )


@pytest.mark.parametrize("seed", range(8))
def test_distance_bounds_merge_is_order_independent(seed):
    rng = np.random.default_rng(2000 + seed)
    n = int(rng.integers(1, 300))
    values = random_column(rng, n, nan_fraction=0.15, tie_heavy=bool(seed % 2))
    capacity = int(rng.integers(1, n + 1))
    cuts = random_cuts(rng, n, 6)
    reference = resolved_over(values, cuts, capacity)
    for _ in range(4):
        order = rng.permutation(len(cuts))
        assert resolved_over(values, cuts, capacity, order=order) == reference


def test_distance_bounds_fold_shape_irrelevant():
    rng = np.random.default_rng(3)
    values = random_column(rng, 120, nan_fraction=0.1)
    cuts = random_cuts(rng, 120, 4)
    a, b, c, d = (distance_bounds_partial(values[lo:hi], 10) for lo, hi in cuts)
    left = merge_distance_bounds(merge_distance_bounds(merge_distance_bounds(a, b), c), d)
    right = merge_distance_bounds(a, merge_distance_bounds(b, merge_distance_bounds(c, d)))
    pairs = merge_distance_bounds(merge_distance_bounds(a, b), merge_distance_bounds(c, d))
    assert (resolve_distance_bounds(left) == resolve_distance_bounds(right)
            == resolve_distance_bounds(pairs))


def test_distance_bounds_empty_and_all_nan_shards_are_identity():
    rng = np.random.default_rng(4)
    values = random_column(rng, 50)
    base = distance_bounds_partial(values, 7)
    nan_shard = distance_bounds_partial(np.full(20, np.nan), 7)
    empty_shard = distance_bounds_partial(np.empty(0), 7)
    identity = empty_distance_bounds(7)
    for extra in (nan_shard, empty_shard, identity):
        assert extra.count == 0
        merged = merge_distance_bounds(base, extra)
        assert resolve_distance_bounds(merged) == resolve_distance_bounds(base)
        merged = merge_distance_bounds(extra, base)
        assert resolve_distance_bounds(merged) == resolve_distance_bounds(base)


def test_distance_bounds_all_shards_nan_resolves_to_none():
    parts = [distance_bounds_partial(np.full(5, np.nan), 3) for _ in range(4)]
    assert resolve_distance_bounds(reduce(merge_distance_bounds, parts)) is None
    np.testing.assert_array_equal(
        apply_normalization(np.full(5, np.nan), None, None),
        reduced_normalization(np.full(5, np.nan), 1.0, 3),
    )


def test_distance_bounds_capacity_mismatch_rejected():
    a = distance_bounds_partial(np.arange(5.0), 3)
    b = distance_bounds_partial(np.arange(5.0), 4)
    with pytest.raises(ValueError):
        merge_distance_bounds(a, b)


def test_resolve_keep_must_fit_capacity():
    partial = distance_bounds_partial(np.arange(10.0), 4)
    assert resolve_distance_bounds(partial, keep=2) == (0.0, 1.0)
    with pytest.raises(ValueError):
        resolve_distance_bounds(partial, keep=5)


# --------------------------------------------------------------------------- #
# top-k candidate merge algebra
# --------------------------------------------------------------------------- #
def stable_reference_topk(distances: np.ndarray, target: int) -> np.ndarray:
    """The spec: target smallest by stable argsort (NaN last), sorted indices."""
    masked = np.where(np.isfinite(distances), distances, np.inf)
    if target >= len(distances):
        return np.arange(len(distances), dtype=np.intp)
    return np.sort(np.argsort(masked, kind="stable")[:target])


def merged_topk(distances: np.ndarray, cuts, target: int, order=None):
    partials = [topk_candidates(distances[a:b], target, offset=a) for a, b in cuts]
    if order is not None:
        partials = [partials[i] for i in order]
    return resolve_topk(reduce(merge_topk_candidates, partials))


@pytest.mark.parametrize("seed", range(15))
def test_topk_merge_matches_monolithic_and_stable_argsort(seed):
    rng = np.random.default_rng(4000 + seed)
    n = int(rng.integers(1, 400))
    distances = random_column(rng, n, nan_fraction=float(rng.choice([0.0, 0.25, 1.0])),
                              tie_heavy=bool(seed % 2))
    percentage = float(rng.uniform(0.05, 1.0))
    target = max(1, int(round(percentage * n)))
    cuts = random_cuts(rng, n, int(rng.integers(1, 9)))
    merged = merged_topk(distances, cuts, target)
    monolithic = select_display_set(
        distances, capacity=10_000, n_selection_predicates=1,
        method=ReductionMethod.PERCENTAGE, percentage=percentage,
    )
    np.testing.assert_array_equal(merged, monolithic)
    np.testing.assert_array_equal(merged, stable_reference_topk(distances, target))


@pytest.mark.parametrize("seed", range(8))
def test_topk_merge_is_order_independent(seed):
    rng = np.random.default_rng(5000 + seed)
    n = int(rng.integers(2, 300))
    distances = random_column(rng, n, nan_fraction=0.1, tie_heavy=True)
    target = int(rng.integers(1, n + 1))
    cuts = random_cuts(rng, n, 5)
    reference = merged_topk(distances, cuts, target)
    for _ in range(4):
        order = rng.permutation(len(cuts))
        np.testing.assert_array_equal(
            merged_topk(distances, cuts, target, order=order), reference
        )


def test_topk_fold_shape_irrelevant():
    rng = np.random.default_rng(6)
    distances = random_column(rng, 200, tie_heavy=True)
    cuts = random_cuts(rng, 200, 4)
    a, b, c, d = (topk_candidates(distances[lo:hi], 25, offset=lo) for lo, hi in cuts)
    left = merge_topk_candidates(merge_topk_candidates(merge_topk_candidates(a, b), c), d)
    right = merge_topk_candidates(a, merge_topk_candidates(b, merge_topk_candidates(c, d)))
    pairs = merge_topk_candidates(merge_topk_candidates(a, b), merge_topk_candidates(c, d))
    np.testing.assert_array_equal(resolve_topk(left), resolve_topk(right))
    np.testing.assert_array_equal(resolve_topk(left), resolve_topk(pairs))


def test_topk_ties_at_capacity_boundary_break_by_row_index():
    """All-equal distances: the displayed set must be the first ``target`` rows.

    This is the exact boundary where a naive per-shard truncation loses the
    stable-argsort rule: a later shard's tie rows must never displace an
    earlier row with the same distance.
    """
    n, target = 40, 7
    distances = np.full(n, 3.25)
    cuts = [(0, 10), (10, 25), (25, 40)]
    merged = merged_topk(distances, cuts, target)
    np.testing.assert_array_equal(merged, np.arange(target, dtype=np.intp))
    # Reversed merge order must not change the winners.
    np.testing.assert_array_equal(
        merged_topk(distances, cuts, target, order=[2, 1, 0]), merged
    )


def test_topk_all_nan_column_selects_lowest_indices():
    distances = np.full(30, np.nan)
    cuts = [(0, 13), (13, 30)]
    merged = merged_topk(distances, cuts, 5)
    monolithic = select_display_set(
        distances, capacity=10_000, n_selection_predicates=1,
        method=ReductionMethod.PERCENTAGE, percentage=5 / 30,
    )
    np.testing.assert_array_equal(merged, monolithic)
    np.testing.assert_array_equal(merged, np.arange(5, dtype=np.intp))


def test_topk_empty_shards_are_identity():
    rng = np.random.default_rng(7)
    distances = random_column(rng, 60, tie_heavy=True)
    target = 9
    base = reduce(merge_topk_candidates,
                  [topk_candidates(distances[a:b], target, offset=a)
                   for a, b in [(0, 30), (30, 60)]])
    empty = topk_candidates(np.empty(0), target, offset=60)
    np.testing.assert_array_equal(
        resolve_topk(merge_topk_candidates(base, empty)), resolve_topk(base)
    )
    np.testing.assert_array_equal(
        resolve_topk(merge_topk_candidates(empty, base)), resolve_topk(base)
    )


def test_topk_target_mismatch_rejected():
    a = topk_candidates(np.arange(5.0), 2)
    b = topk_candidates(np.arange(5.0), 3)
    with pytest.raises(ValueError):
        merge_topk_candidates(a, b)
