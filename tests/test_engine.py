"""Tests for the prepared-query engine: equivalence, invalidation, caches."""

import numpy as np
import pytest

from repro import (
    AndNode,
    OrNode,
    PipelineConfig,
    QueryBuilder,
    QueryEngine,
    VisualFeedbackQuery,
    condition,
)
from repro.core.plan import EvaluationCache, PlanEvaluator, compile_plan
from repro.interact.events import (
    SetPercentageDisplayed,
    SetQueryRange,
    SetThreshold,
    SetWeight,
)
from repro.query.builder import between
from repro.query.predicates import AttributePredicate, ComparisonOperator, RangePredicate


def assert_feedback_equal(a, b):
    """Feedback from an incremental re-execution must match a cold run exactly."""
    np.testing.assert_array_equal(a.display_order, b.display_order)
    assert a.statistics == b.statistics
    assert set(a.node_feedback) == set(b.node_feedback)
    for path in a.node_feedback:
        np.testing.assert_array_equal(
            a.node_feedback[path].normalized_distances,
            b.node_feedback[path].normalized_distances,
        )
        np.testing.assert_array_equal(
            a.node_feedback[path].exact_mask, b.node_feedback[path].exact_mask
        )
    np.testing.assert_array_equal(a.relevance, b.relevance)


# -- fingerprints ------------------------------------------------------------- #
def test_predicate_fingerprint_value_based():
    a = RangePredicate("Temperature", 10.0, 20.0)
    b = RangePredicate("Temperature", 10.0, 20.0)
    c = RangePredicate("Temperature", 10.0, 21.0)
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()
    other_type = AttributePredicate("Temperature", ComparisonOperator.GT, 10.0)
    assert a.fingerprint() != other_type.fingerprint()


def test_node_fingerprint_includes_weight_source_does_not():
    leaf_a = condition("a", ">", 5.0)
    leaf_b = condition("a", ">", 5.0, weight=0.5)
    assert leaf_a.source_fingerprint() == leaf_b.source_fingerprint()
    assert leaf_a.fingerprint() != leaf_b.fingerprint()


def test_tree_fingerprint_changes_with_structure():
    tree1 = AndNode([condition("a", ">", 1.0), condition("b", "<", 2.0)])
    tree2 = OrNode([condition("a", ">", 1.0), condition("b", "<", 2.0)])
    tree3 = AndNode([condition("b", "<", 2.0), condition("a", ">", 1.0)])
    fingerprints = {tree1.fingerprint(), tree2.fingerprint(), tree3.fingerprint()}
    assert len(fingerprints) == 3


# -- prepare/execute equivalence ---------------------------------------------- #
def test_prepared_matches_cold_single_table(weather_db, or_query):
    cold = VisualFeedbackQuery(weather_db, or_query).execute()
    prepared = QueryEngine(weather_db).prepare(or_query)
    assert_feedback_equal(prepared.execute(), cold)
    # A second execution with no changes is served from the caches.
    assert_feedback_equal(prepared.execute(), cold)


def test_prepared_matches_cold_after_changes(weather_db, or_query):
    prepared = QueryEngine(weather_db, percentage=0.3).prepare(or_query)
    prepared.execute()
    incremental = prepared.execute(changes=[
        SetQueryRange((2,), 40.0, 60.0),
        SetWeight((0,), 0.5),
        SetThreshold((1,), 500.0),
    ])
    cold = VisualFeedbackQuery(weather_db, prepared.query, percentage=0.3).execute()
    assert_feedback_equal(incremental, cold)


def test_prepared_percentage_change_matches_cold(weather_db, or_query):
    prepared = QueryEngine(weather_db).prepare(or_query)
    prepared.execute()
    incremental = prepared.execute(changes=[SetPercentageDisplayed(0.2)])
    assert incremental.statistics.num_displayed == 400
    cold = VisualFeedbackQuery(weather_db, prepared.query, percentage=0.2).execute()
    assert_feedback_equal(incremental, cold)


def test_prepared_join_query_matches_cold(small_env_db):
    def build():
        return (
            QueryBuilder("join", small_env_db)
            .use_tables("Weather")
            .where(condition("Weather.Temperature", ">", 15.0))
            .use_connection("Air-Pollution with-time-diff Weather", parameter=120)
            .build()
        )

    config = PipelineConfig(percentage=0.25, max_join_pairs=20_000)
    prepared = QueryEngine(small_env_db, config).prepare(build())
    prepared.execute()
    incremental = prepared.execute(changes=[SetQueryRange((), 10.0, 20.0)])
    cold = VisualFeedbackQuery(small_env_db, prepared.query, config).execute()
    assert_feedback_equal(incremental, cold)


# -- cache invalidation ------------------------------------------------------- #
def test_weight_change_reuses_all_leaf_distances(weather_db, or_query):
    prepared = QueryEngine(weather_db).prepare(or_query)
    prepared.execute()
    misses_before = prepared.cache_stats["leaf_misses"]
    prepared.execute(changes=[SetWeight((1,), 0.4)])
    stats = prepared.cache_stats
    # No raw leaf column was recomputed: only normalization/combination ran.
    assert stats["leaf_misses"] == misses_before
    assert stats["leaf_hits"] >= 1


def test_range_change_recomputes_exactly_one_leaf(weather_db, or_query):
    prepared = QueryEngine(weather_db).prepare(or_query)
    prepared.execute()
    stats_before = prepared.cache_stats
    prepared.execute(changes=[SetQueryRange((2,), 40.0, 60.0)])
    stats = prepared.cache_stats
    assert stats["leaf_misses"] == stats_before["leaf_misses"] + 1
    # The two untouched leaves were served from the node cache.
    assert stats["node_hits"] >= stats_before["node_hits"] + 2


def test_percentage_change_recomputes_no_leaf(weather_db, or_query):
    prepared = QueryEngine(weather_db).prepare(or_query)
    prepared.execute()
    raw_misses = prepared.cache_stats["leaf_misses"]
    prepared.execute(changes=[SetPercentageDisplayed(0.5)])
    stats = prepared.cache_stats
    # Raw distances are capacity-independent: all reused.
    assert stats["leaf_misses"] == raw_misses
    assert stats["leaf_hits"] >= 3


def test_unchanged_reexecution_hits_every_node(weather_db, or_query):
    prepared = QueryEngine(weather_db).prepare(or_query)
    prepared.execute()
    before = prepared.cache_stats
    prepared.execute()
    after = prepared.cache_stats
    assert after["leaf_misses"] == before["leaf_misses"]
    assert after["node_misses"] == before["node_misses"]
    # Overall + three leaves resolved from the cache.
    assert after["node_hits"] == before["node_hits"] + 4


def test_mutating_shared_condition_is_detected(weather_db, or_query):
    prepared = QueryEngine(weather_db).prepare(or_query)
    results_before = prepared.execute().statistics.num_results
    # Mutate the condition tree directly (as session events do).
    prepared.query.condition.children[0].predicate = AttributePredicate(
        "Temperature", ComparisonOperator.GT, 30.0
    )
    results_after = prepared.execute().statistics.num_results
    assert results_after < results_before
    cold = VisualFeedbackQuery(weather_db, prepared.query).execute()
    assert results_after == cold.statistics.num_results


def test_apply_change_validation_errors(weather_db, or_query):
    prepared = QueryEngine(weather_db).prepare(or_query)
    with pytest.raises(TypeError):
        prepared.apply_change(SetQueryRange((), 0.0, 1.0))  # root is an OR node
    with pytest.raises(TypeError):
        prepared.apply_change(SetThreshold((), 1.0))
    with pytest.raises(TypeError):
        prepared.apply_change("not an event")


def test_engine_requires_condition_at_execute(weather_db):
    from repro.query.builder import Query

    prepared = QueryEngine(weather_db).prepare(Query("q", ["Weather"]))
    with pytest.raises(ValueError, match="condition"):
        prepared.execute()


# -- prefetch cache wiring ---------------------------------------------------- #
def test_prefetch_serves_slider_drag_sequence(weather_db):
    query = (
        QueryBuilder("drag", weather_db)
        .use_tables("Weather")
        .where(AndNode([
            between("Humidity", 30.0, 80.0),
            condition("Temperature", ">", 10.0),
        ]))
        .build()
    )
    # This test asserts the *monolithic* prefetch counters; under sharding
    # the same drags hit per-shard caches instead (covered by
    # tests/test_differential.py), so the shard count is pinned here.
    engine = QueryEngine(weather_db, shard_count=1)
    prepared = engine.prepare(query)
    prepared.execute()
    prefetch = engine.prefetch_for(prepared.table)
    # The initial execution fetched a widened [30, 80] region.
    assert prefetch.fetches == 1 and prefetch.cache_hits == 0
    # A drag that narrows the range: every step falls inside the widened
    # region already fetched, so every step is a cache hit.
    prepared.execute(changes=[SetQueryRange((0,), 35.0, 75.0)])
    for low in (40.0, 45.0, 50.0):
        prepared.execute(changes=[SetQueryRange((0,), low, 70.0)])
    assert prefetch.fetches == 1
    assert prefetch.cache_hits == 4
    # Widening far beyond the cached region forces a fresh (indexed) fetch.
    prepared.execute(changes=[SetQueryRange((0,), 6.0, 99.0)])
    assert prefetch.fetches == 2
    # The dragged attribute was indexed after the first interactive change.
    assert "Humidity" in prefetch.indexes


def test_prefetch_mask_matches_direct_evaluation(weather_db):
    query = (
        QueryBuilder("drag", weather_db)
        .use_tables("Weather")
        .where(between("Humidity", 30.0, 80.0))
        .build()
    )
    prepared = QueryEngine(weather_db).prepare(query)
    prepared.execute()
    feedback = prepared.execute(changes=[SetQueryRange((), 42.5, 77.5)])
    table = prepared.table
    expected = RangePredicate("Humidity", 42.5, 77.5).exact_mask(table)
    np.testing.assert_array_equal(feedback.node_feedback[()].exact_mask, expected)


# -- engine-level sharing ------------------------------------------------------ #
def test_cross_product_assembled_once(small_env_db):
    engine = QueryEngine(small_env_db, max_join_pairs=5_000)

    def build():
        return (
            QueryBuilder("join", small_env_db)
            .use_tables("Weather")
            .where(condition("Weather.Temperature", ">", 15.0))
            .use_connection("Air-Pollution at-same-time-as Weather")
            .build()
        )

    first = engine.prepare(build())
    second = engine.prepare(build())
    assert first.table is second.table


def test_prepare_overrides_affect_table_assembly(small_env_db):
    engine = QueryEngine(small_env_db)  # default max_join_pairs: 250k
    query = (
        QueryBuilder("join", small_env_db)
        .use_tables("Weather")
        .where(condition("Weather.Temperature", ">", 15.0))
        .use_connection("Air-Pollution at-same-time-as Weather")
        .build()
    )
    prepared = engine.prepare(query, max_join_pairs=4_000)
    assert len(prepared.table) == 4_000
    assert prepared.config.max_join_pairs == 4_000


def test_cached_feedback_arrays_are_read_only(weather_db, or_query):
    prepared = QueryEngine(weather_db).prepare(or_query)
    feedback = prepared.execute()
    # The cache shares these arrays across executions; in-place mutation
    # must raise instead of silently corrupting later results.
    with pytest.raises(ValueError, match="read-only"):
        feedback.node_feedback[()].normalized_distances[0] = -1.0


def test_plan_evaluator_matches_relevance_evaluator(weather_db, or_condition):
    """The plan path reproduces the classic evaluator on a fresh cache."""
    from repro.core.relevance import RelevanceEvaluator

    table = weather_db.table("Weather")
    classic = RelevanceEvaluator(display_capacity=500).evaluate(or_condition, table)
    plan = compile_plan(or_condition)
    planned = PlanEvaluator(table, display_capacity=500, cache=EvaluationCache()).evaluate(plan)
    assert set(classic) == set(planned)
    for path in classic:
        np.testing.assert_allclose(
            planned[path].normalized_distances, classic[path].normalized_distances
        )
        np.testing.assert_array_equal(planned[path].exact_mask, classic[path].exact_mask)


def test_facade_repeated_execute_consistent(weather_db, or_query):
    pipeline = VisualFeedbackQuery(weather_db, or_query, percentage=0.4)
    first = pipeline.execute()
    second = pipeline.execute()
    assert_feedback_equal(first, second)
