"""Unit tests for per-shard dirty-node caching and displayed-set patching.

The differential harness (tests/test_differential.py) locks the *outputs*
down bit-for-bit; these tests lock the *mechanism* down: that interior
slider events really recompute only the dirty shards (counter-verified),
that the short-circuits engage, that invalidation (generation tags, token
regeneration on wholesale query changes) works, and that the service
surfaces the counters.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro import PipelineConfig, QueryEngine, ScreenSpec
from repro.core.normalization import bounds_identical
from repro.core.plan import CacheStats, ShardSliceCache, ShardSliceEntry
from repro.core.reduction import (
    merge_topk_candidates,
    merge_topk_candidates_many,
    resolve_topk,
    topk_candidates,
)
from repro.core.shard import (
    _shard_summary,
    distance_bounds_partial,
    merge_distance_bounds,
    merge_distance_bounds_many,
    resolve_distance_bounds,
)
from repro.interact.events import SetPercentageDisplayed, SetQueryRange, SetWeight
from repro.query.builder import Query, between, condition
from repro.query.expr import AndNode, OrNode
from repro.storage.table import Table


def locality_table(n: int = 20_000, seed: int = 5) -> Table:
    rng = np.random.default_rng(seed)
    t = np.sort(rng.uniform(0.0, 1000.0, n))
    a = t * 0.1 + rng.normal(0.0, 4.0, n)
    b = rng.uniform(0.0, 100.0, n)
    return Table("Local", {"t": t, "a": a, "b": b})


def prepared_query(table, *, shards=8, percentage=0.05, incremental=True):
    config = PipelineConfig(
        screen=ScreenSpec(width=256, height=256),
        percentage=percentage,
        shard_count=shards,
        max_workers=2,
        incremental_shards=incremental,
    )
    engine = QueryEngine(table, config)
    root = AndNode([
        between("t", 50.0, 990.0),
        OrNode([condition("a", ">", 20.0), condition("b", "<", 80.0)]),
    ])
    prepared = engine.prepare(
        Query(name="inc", tables=[table.name], condition=root))
    return engine, prepared


def stats_of(engine, prepared) -> dict[str, int]:
    return engine.evaluation_cache(prepared.table).stats.as_dict()


# --------------------------------------------------------------------------- #
# Dirty-shard counters
# --------------------------------------------------------------------------- #
def test_interior_micro_move_recomputes_only_dirty_shards():
    table = locality_table()
    engine, prepared = prepared_query(table)
    prepared.execute()
    prepared.execute(changes=[SetQueryRange((0,), 50.0, 989.0)])  # warm history
    before = stats_of(engine, prepared)
    feedback = prepared.execute(changes=[SetQueryRange((0,), 50.0, 988.5)])
    after = stats_of(engine, prepared)
    report = feedback.extra["incremental"]
    assert report["shard_count"] == 8
    # The swept band sits at the top of the sorted column: strictly fewer
    # shards than the total are dirty.
    assert report["root_dirty_shards"] is not None
    assert 0 < report["root_dirty_shards"] < report["shard_count"]
    # Counter-verified: the event recomputed no more than the dirty shards
    # per patched node, and reused all the others.
    recomputed = after["shards_recomputed"] - before["shards_recomputed"]
    reused = after["shards_reused"] - before["shards_reused"]
    patched = report["patched_nodes"]
    assert patched >= 2  # the moved leaf and the root AND
    assert recomputed <= patched * report["root_dirty_shards"]
    assert recomputed + reused == patched * report["shard_count"]
    assert after["bounds_shortcircuits"] > before["bounds_shortcircuits"]
    assert after["displayed_patches"] > before["displayed_patches"]


def test_untouched_subtree_serves_from_node_cache():
    table = locality_table(n=8_000)
    engine, prepared = prepared_query(table)
    prepared.execute()
    feedback = prepared.execute(changes=[SetQueryRange((0,), 50.0, 985.0)])
    report = feedback.extra["incremental"]
    # The OR subtree (3 nodes) is untouched by a move of the "t" leaf.
    assert report["cached_nodes"] >= 3
    assert report["nodes"] == 5


def test_weight_move_back_and_forth_reuses_whole_column():
    """A weight change that returns to a previous value hits the node LRU;
    a fresh weight with unchanged raw columns patches with zero dirty."""
    table = locality_table(n=8_000)
    engine, prepared = prepared_query(table)
    prepared.execute()
    before = stats_of(engine, prepared)
    prepared.execute(changes=[SetWeight((0,), 0.7)])
    mid = stats_of(engine, prepared)
    # Raw columns untouched: no leaf recomputation happened.
    assert mid["leaf_misses"] == before["leaf_misses"]
    prepared.execute(changes=[SetWeight((0,), 1.0)])  # back to the original
    after = stats_of(engine, prepared)
    assert after["leaf_misses"] == before["leaf_misses"]


def test_incremental_disabled_runs_full_recomputes():
    table = locality_table(n=8_000)
    engine, prepared = prepared_query(table, incremental=False)
    prepared.execute()
    prepared.execute(changes=[SetQueryRange((0,), 50.0, 985.0)])
    stats = stats_of(engine, prepared)
    assert stats["incremental_events"] == 0
    assert stats["slice_hits"] == 0
    assert stats["displayed_patches"] == 0


def test_percentage_change_falls_back_cleanly():
    """A percentage event changes the capacity (every value key): the next
    event must fall back to full recomputes, then resume patching."""
    table = locality_table(n=8_000)
    engine, prepared = prepared_query(table)
    prepared.execute()
    prepared.execute(changes=[SetQueryRange((0,), 50.0, 985.0)])
    prepared.execute(changes=[SetPercentageDisplayed(0.1)])
    before = stats_of(engine, prepared)
    prepared.execute(changes=[SetQueryRange((0,), 50.0, 984.0)])
    after = stats_of(engine, prepared)
    # Patching resumed after one full round under the new capacity.
    assert after["slice_hits"] > before["slice_hits"]


# --------------------------------------------------------------------------- #
# Invalidation
# --------------------------------------------------------------------------- #
def test_slice_cache_generation_invalidation():
    cache = ShardSliceCache(max_entries=4)
    entry = ShardSliceEntry(
        value_key="v1", columns=None, resolved=(0.0, 1.0), summaries=None,
        target_max=255.0, shard_count=2, generation=cache.generation,
    )
    cache.put("site", entry)
    assert cache.get("site") is not None
    cache.invalidate()
    assert cache.get("site") is None
    # A writer that started before the invalidation cannot re-publish its
    # stale entry (the clear()-concurrency guarantee) ...
    cache.put("site", entry)
    assert cache.get("site") is None
    # ... while a writer that read the new generation publishes normally.
    cache.put("site", ShardSliceEntry(
        value_key="v2", columns=None, resolved=(0.0, 1.0), summaries=None,
        target_max=255.0, shard_count=2, generation=cache.generation,
    ))
    assert cache.get("site") is not None


def test_slice_cache_eviction_is_bounded():
    cache = ShardSliceCache(max_entries=2)
    for k in range(5):
        cache.put(f"site-{k}", ShardSliceEntry(
            value_key=f"v{k}", columns=None, resolved=None, summaries=None,
            target_max=255.0, shard_count=2,
        ))
    assert len(cache) == 2
    assert cache.get("site-4") is not None
    assert cache.get("site-0") is None


def test_wholesale_query_change_regenerates_slice_token():
    table = locality_table(n=4_000)
    engine, prepared = prepared_query(table)
    prepared.execute()
    token = prepared._slice_token
    prepared.execute(changes=[SetQueryRange((0,), 50.0, 985.0)])
    assert prepared._slice_token == token  # parameter moves keep the sites
    prepared.query.condition = AndNode([
        between("t", 100.0, 500.0), condition("b", "<", 60.0),
    ])
    prepared.execute()
    assert prepared._slice_token != token  # new shape -> new namespace


def test_evaluation_cache_clear_drops_slices():
    table = locality_table(n=4_000)
    engine, prepared = prepared_query(table)
    prepared.execute()
    prepared.execute(changes=[SetQueryRange((0,), 50.0, 985.0)])
    cache = engine.evaluation_cache(prepared.table)
    cache.clear()
    before = cache.stats.as_dict()
    prepared.execute(changes=[SetQueryRange((0,), 50.0, 984.0)])
    after = cache.stats.as_dict()
    # Nothing to patch after a wholesale clear: the event fell back to
    # full recomputes (counters survive the clear by design).
    assert after["slice_hits"] == before["slice_hits"]


# --------------------------------------------------------------------------- #
# Merge-algebra additions
# --------------------------------------------------------------------------- #
def test_merge_distance_bounds_many_matches_pairwise():
    rng = np.random.default_rng(11)
    values = rng.uniform(0.0, 50.0, 997)
    values[rng.random(997) < 0.1] = np.nan
    pieces = np.array_split(values, 7)
    partials = [distance_bounds_partial(p, 40) for p in pieces]
    pairwise = partials[0]
    for partial in partials[1:]:
        pairwise = merge_distance_bounds(pairwise, partial)
    many = merge_distance_bounds_many(partials)
    for keep in (1, 7, 40):
        assert resolve_distance_bounds(pairwise, keep) == \
            resolve_distance_bounds(many, keep)


def test_merge_topk_candidates_many_matches_pairwise():
    rng = np.random.default_rng(13)
    values = np.round(rng.uniform(0.0, 20.0, 500))  # force ties
    pieces = np.array_split(values, 5)
    offsets = np.cumsum([0] + [len(p) for p in pieces[:-1]])
    partials = [
        topk_candidates(piece, 60, offset=int(off))
        for piece, off in zip(pieces, offsets)
    ]
    pairwise = partials[0]
    for partial in partials[1:]:
        pairwise = merge_topk_candidates(pairwise, partial)
    many = merge_topk_candidates_many(partials)
    np.testing.assert_array_equal(resolve_topk(pairwise), resolve_topk(many))


def test_bounds_identical_nan_and_zero_semantics():
    assert bounds_identical(None, None)
    assert not bounds_identical(None, (0.0, 1.0))
    assert bounds_identical((0.0, float("nan")), (0.0, float("nan")))
    assert not bounds_identical((0.0, 1.0), (0.0, 2.0))
    assert bounds_identical((-0.0, 1.0), (0.0, 1.0))  # == semantics


def test_shard_summary_counts_and_nan_d_max():
    values = np.array([1.0, 2.0, 2.0, 3.0, np.nan, np.inf])
    nf, lo, hi, lt, le = _shard_summary(values, 2.0)
    assert (nf, lo, hi, lt, le) == (4.0, 1.0, 3.0, 1.0, 3.0)
    # A NaN d_max (all-NaN previous resolve) certifies nothing.
    assert _shard_summary(values, float("nan"))[3:] == (0.0, 0.0)
    assert _shard_summary(np.array([np.nan]), 2.0)[0] == 0.0


def test_cache_stats_dict_has_incremental_counters():
    stats = CacheStats().as_dict()
    for key in ("slice_hits", "slice_misses", "shards_recomputed",
                "shards_reused", "bounds_shortcircuits", "displayed_patches",
                "incremental_events"):
        assert key in stats


# --------------------------------------------------------------------------- #
# Displayed-set / relevance reuse
# --------------------------------------------------------------------------- #
def test_noop_reexecution_reuses_displayed_and_relevance():
    table = locality_table(n=8_000)
    engine, prepared = prepared_query(table)
    prepared.execute()
    prepared.execute(changes=[SetQueryRange((0,), 50.0, 985.0)])
    first = prepared.execute()
    second = prepared.execute()
    # Identical column identity: the displayed set and relevance arrays are
    # the same (frozen) objects, not merely equal.
    assert second.relevance is first.relevance
    np.testing.assert_array_equal(second.display_order, first.display_order)
    assert not second.relevance.flags.writeable


def test_displayed_patch_survives_threshold_shift():
    """When the target-th smallest value moves, the patch certificate must
    fail and the full rebuild must produce the exact new set."""
    table = locality_table(n=8_000)
    engine, prepared = prepared_query(table, percentage=0.02)
    prepared.execute()
    prepared.execute(changes=[SetQueryRange((0,), 50.0, 985.0)])
    # Collapse the range onto a tiny band: almost every distance changes
    # and the displayed threshold moves by a lot.
    collapsed = prepared.execute(changes=[SetQueryRange((0,), 400.0, 410.0)])
    config = prepared.config.with_(shard_count=1, max_workers=1)
    cold = QueryEngine(table, config).prepare(
        Query(name="cold", tables=[table.name],
              condition=copy.deepcopy(prepared.query.condition))).execute()
    np.testing.assert_array_equal(collapsed.display_order, cold.display_order)
