"""Unit tests for the distance-function library."""

import numpy as np
import pytest

from repro.distance import (
    DistanceMatrix,
    absolute_difference,
    character_distance,
    cyclic_difference,
    default_registry,
    edit_distance,
    euclidean_2d,
    euclidean_combination,
    haversine_km,
    lagged_time_difference,
    lexicographic_distance,
    lp_combination,
    mahalanobis_combination,
    manhattan_2d,
    ordinal_distance,
    phonetic_distance,
    relative_difference,
    signed_difference,
    soundex,
    substring_distance,
    time_difference,
    time_of_day_difference,
)
from repro.distance.base import DistanceRegistry, as_array_distance
from repro.query.schema import Attribute, DataType


# -- numeric -------------------------------------------------------------- #
def test_signed_and_absolute_difference():
    np.testing.assert_allclose(signed_difference([1.0, 5.0], 3.0), [-2.0, 2.0])
    np.testing.assert_allclose(absolute_difference([1.0, 5.0], 3.0), [2.0, 2.0])


def test_relative_difference():
    np.testing.assert_allclose(relative_difference([90.0, 110.0], 100.0), [0.1, 0.1])
    np.testing.assert_allclose(relative_difference([2.0], 0.0), [2.0])  # fallback


def test_cyclic_difference_wraps():
    np.testing.assert_allclose(cyclic_difference([350.0], 10.0), [20.0])
    np.testing.assert_allclose(cyclic_difference([180.0], 0.0), [180.0])
    with pytest.raises(ValueError):
        cyclic_difference([0.0], 0.0, period=0.0)


# -- strings --------------------------------------------------------------- #
def test_string_distances_zero_for_equal():
    for function in (lexicographic_distance, character_distance, substring_distance,
                     edit_distance, phonetic_distance):
        assert function("Munich", "Munich") == 0.0


def test_lexicographic_distance_prefix_sensitivity():
    assert lexicographic_distance("Munich", "Munchen") < lexicographic_distance("Munich", "Berlin")


def test_character_distance_counts_mismatches_and_length():
    assert character_distance("abc", "abd") == 1.0
    assert character_distance("abc", "abcdef") == 3.0


def test_substring_distance_range():
    assert substring_distance("abcdef", "cde") < substring_distance("abcdef", "xyz")
    assert 0.0 <= substring_distance("abc", "xyz") <= 1.0
    assert substring_distance("", "") == 0.0


def test_edit_distance_known_values():
    assert edit_distance("kitten", "sitting") == 3.0
    assert edit_distance("", "abc") == 3.0
    assert edit_distance("abc", "") == 3.0


def test_soundex_codes():
    assert soundex("Robert") == "R163"
    assert soundex("Rupert") == "R163"
    assert soundex("") == "0000"
    assert phonetic_distance("Robert", "Rupert") == 0.0
    assert phonetic_distance("Robert", "Miller") > 0.0


# -- matrices --------------------------------------------------------------- #
def test_distance_matrix_symmetry_and_default():
    matrix = DistanceMatrix({("rain", "drizzle"): 1.0, ("rain", "sun"): 4.0})
    assert matrix("drizzle", "rain") == 1.0
    assert matrix("sun", "sun") == 0.0
    assert matrix("fog", "sun") == 4.0  # default = largest declared distance
    np.testing.assert_allclose(matrix.pairwise(["rain", "fog"], "sun"), [4.0, 4.0])
    assert {"rain", "drizzle", "sun"} <= matrix.known_values


def test_distance_matrix_negative_rejected():
    with pytest.raises(ValueError):
        DistanceMatrix({("a", "b"): -1.0})


def test_distance_matrix_from_ordering():
    matrix = DistanceMatrix.from_ordering(["low", "medium", "high"])
    assert matrix("low", "high") == 2.0
    assert matrix("low", "medium") == 1.0
    assert matrix("low", "unknown") == 3.0


def test_ordinal_distance_function():
    distance = ordinal_distance(["cold", "mild", "warm", "hot"])
    assert distance("cold", "hot") == 3.0
    assert distance("mild", "mild") == 0.0
    assert distance("mild", "unknown") == 4.0


# -- temporal / spatial ------------------------------------------------------ #
def test_time_difference_and_lag():
    np.testing.assert_allclose(time_difference([120.0], 0.0), [120.0])
    np.testing.assert_allclose(lagged_time_difference([120.0], 0.0, lag=120.0), [0.0])
    np.testing.assert_allclose(lagged_time_difference([60.0], 0.0, lag=120.0), [60.0])


def test_time_of_day_difference_wraps_midnight():
    late = 23.5 * 60
    early = 0.5 * 60
    assert time_of_day_difference(late, early) == pytest.approx(60.0)


def test_euclidean_and_manhattan_2d():
    assert euclidean_2d((3.0, 4.0), (0.0, 0.0)) == pytest.approx(5.0)
    assert manhattan_2d((3.0, 4.0), (0.0, 0.0)) == pytest.approx(7.0)
    batch = euclidean_2d(np.array([[3.0, 4.0], [0.0, 0.0]]), (0.0, 0.0))
    np.testing.assert_allclose(batch, [5.0, 0.0])


def test_haversine_munich_berlin():
    munich = (48.137, 11.575)
    berlin = (52.520, 13.405)
    distance = haversine_km(munich, berlin)
    assert 450.0 < distance < 550.0
    assert haversine_km(munich, munich) == pytest.approx(0.0, abs=1e-9)


# -- combinators -------------------------------------------------------------- #
def test_euclidean_combination():
    matrix = np.array([[3.0, 4.0], [0.0, 0.0]])
    np.testing.assert_allclose(euclidean_combination(matrix), [5.0, 0.0])
    np.testing.assert_allclose(euclidean_combination(matrix, weights=[1.0, 0.0]), [3.0, 0.0])


def test_lp_combination():
    matrix = np.array([[3.0, 4.0]])
    np.testing.assert_allclose(lp_combination(matrix, p=1.0), [7.0])
    np.testing.assert_allclose(lp_combination(matrix, p=2.0), [5.0])
    with pytest.raises(ValueError):
        lp_combination(matrix, p=0.0)


def test_mahalanobis_combination_whitens_scales():
    rng = np.random.default_rng(0)
    small = rng.normal(0.0, 1.0, 500)
    large = rng.normal(0.0, 100.0, 500)
    matrix = np.column_stack([small, large])
    distances = mahalanobis_combination(matrix)
    # With whitening, both attributes contribute comparably: correlation of the
    # result with |small| should be similar to that with |large|.
    corr_small = np.corrcoef(distances, np.abs(small))[0, 1]
    corr_large = np.corrcoef(distances, np.abs(large))[0, 1]
    assert abs(corr_small - corr_large) < 0.3


def test_combinator_validation():
    with pytest.raises(ValueError):
        euclidean_combination(np.zeros(3))
    with pytest.raises(ValueError):
        euclidean_combination(np.zeros((3, 2)), weights=[1.0])
    with pytest.raises(ValueError):
        euclidean_combination(np.zeros((3, 2)), weights=[-1.0, 1.0])
    with pytest.raises(ValueError):
        mahalanobis_combination(np.zeros((3, 2)), covariance=np.eye(3))


# -- registry ------------------------------------------------------------------ #
def test_registry_resolution_order():
    registry = default_registry()
    numeric = Attribute("Temperature", DataType.NUMERIC)
    string = Attribute("City", DataType.STRING)
    assert registry.resolve(numeric) is absolute_difference
    assert registry.resolve(string) is edit_distance
    registry.register_attribute("Temperature", relative_difference)
    assert registry.resolve(numeric) is relative_difference
    assert registry.resolve("Temperature") is relative_difference
    assert registry.resolve("Unknown") is absolute_difference


def test_registry_datatype_registration_and_copy():
    registry = DistanceRegistry()
    registry.register_datatype(DataType.ORDINAL, character_distance)
    attribute = Attribute("Grade", DataType.ORDINAL)
    assert registry.resolve(attribute) is character_distance
    clone = registry.copy()
    clone.register_datatype(DataType.ORDINAL, edit_distance)
    assert registry.resolve(attribute) is character_distance  # original untouched


def test_registry_default_for_datetime_and_location():
    registry = DistanceRegistry()
    assert registry.resolve(Attribute("ts", DataType.DATETIME)) is time_difference
    assert registry.resolve(Attribute("pos", DataType.LOCATION)) is absolute_difference


def test_as_array_distance_lifts_scalar_functions():
    vectorised = as_array_distance(edit_distance)
    np.testing.assert_allclose(vectorised(np.array(["abc", "abd"], dtype=object), "abc"), [0.0, 1.0])
