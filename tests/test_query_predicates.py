"""Unit tests for selection predicates and their distance semantics."""

import numpy as np
import pytest

from repro.query.predicates import (
    AttributePredicate,
    ComparisonOperator,
    RangePredicate,
    SetMembershipPredicate,
    StringMatchPredicate,
    predicate_for_values,
)
from repro.storage.table import Table


@pytest.fixture()
def table() -> Table:
    return Table(
        "T",
        {
            "t": [10.0, 15.0, 20.0, 25.0, np.nan],
            "h": [80.0, 60.0, 50.0, 30.0, 55.0],
            "city": ["Munich", "Muenchen", "Berlin", "Hamburg", "Munich"],
        },
    )


# -- comparison operators ----------------------------------------------- #
@pytest.mark.parametrize(
    "operator, expected",
    [
        (ComparisonOperator.GT, [False, False, True, True, False]),
        (ComparisonOperator.GE, [False, True, True, True, False]),
        (ComparisonOperator.LT, [True, False, False, False, False]),
        (ComparisonOperator.LE, [True, True, False, False, False]),
        (ComparisonOperator.EQ, [False, True, False, False, False]),
        (ComparisonOperator.NE, [True, False, True, True, True]),
    ],
)
def test_comparison_exact_masks(table, operator, expected):
    predicate = AttributePredicate("t", operator, 15.0)
    np.testing.assert_array_equal(predicate.exact_mask(table), expected)


def test_operator_inversion_roundtrip():
    for operator in ComparisonOperator:
        assert operator.inverted().inverted() is operator


def test_gt_signed_distances(table):
    predicate = AttributePredicate("t", ComparisonOperator.GT, 15.0)
    signed = predicate.signed_distances(table)
    # Fulfilling items have distance 0; failing items have negative distance
    # (they lie below the threshold).
    assert signed[2] == 0.0 and signed[3] == 0.0
    assert signed[0] == pytest.approx(-5.0)
    assert signed[1] == pytest.approx(0.0) or signed[1] == pytest.approx(0.0)
    assert np.isnan(signed[4])


def test_lt_signed_distances(table):
    predicate = AttributePredicate("h", ComparisonOperator.LT, 60.0)
    signed = predicate.signed_distances(table)
    assert signed[0] == pytest.approx(20.0)  # 80 is 20 above the limit
    assert signed[2] == 0.0


def test_eq_signed_distance_sign(table):
    predicate = AttributePredicate("t", ComparisonOperator.EQ, 15.0)
    signed = predicate.signed_distances(table)
    assert signed[0] == pytest.approx(-5.0)
    assert signed[2] == pytest.approx(5.0)
    assert signed[1] == 0.0


def test_ne_failing_items_have_nan_distance(table):
    predicate = AttributePredicate("t", ComparisonOperator.NE, 15.0)
    signed = predicate.signed_distances(table)
    assert np.isnan(signed[1])  # exactly equal: no gradation possible
    assert signed[0] == 0.0
    assert not predicate.supports_direction


def test_absolute_distances_are_nonnegative(table):
    predicate = AttributePredicate("t", ComparisonOperator.GT, 18.0)
    distances = predicate.distances(table)
    finite = distances[np.isfinite(distances)]
    assert np.all(finite >= 0.0)


def test_describe_and_inverted(table):
    predicate = AttributePredicate("t", ComparisonOperator.GT, 15.0)
    assert predicate.describe() == "t > 15"
    inverted = predicate.inverted()
    assert inverted.operator is ComparisonOperator.LE
    # Complementarity holds for rows with defined values (NaN fulfils neither).
    finite = ~np.isnan(np.asarray(table.column("t"), dtype=float))
    np.testing.assert_array_equal(
        inverted.exact_mask(table)[finite], ~predicate.exact_mask(table)[finite]
    )


# -- range predicate ----------------------------------------------------- #
def test_range_mask_and_distances(table):
    predicate = RangePredicate("h", 40.0, 60.0)
    np.testing.assert_array_equal(predicate.exact_mask(table), [False, True, True, False, True])
    signed = predicate.signed_distances(table)
    assert signed[0] == pytest.approx(20.0)   # above the range -> positive
    assert signed[3] == pytest.approx(-10.0)  # below the range -> negative
    assert signed[1] == 0.0


def test_range_invalid_bounds():
    with pytest.raises(ValueError):
        RangePredicate("h", 10.0, 5.0)


def test_range_with_range_and_around():
    predicate = RangePredicate("h", 40.0, 60.0).with_range(45.0, 55.0)
    assert (predicate.low, predicate.high) == (45.0, 55.0)
    centred = RangePredicate.around("h", 50.0, 5.0)
    assert (centred.low, centred.high) == (45.0, 55.0)
    with pytest.raises(ValueError):
        RangePredicate.around("h", 50.0, -1.0)


# -- set membership ------------------------------------------------------ #
def test_set_membership_numeric(table):
    predicate = SetMembershipPredicate("t", (10.0, 25.0))
    np.testing.assert_array_equal(predicate.exact_mask(table), [True, False, False, True, False])
    signed = predicate.signed_distances(table)
    assert signed[1] == pytest.approx(5.0)   # 15 is 5 above the nearest member 10
    assert signed[2] == pytest.approx(-5.0)  # 20 is 5 below the nearest member 25
    assert np.isnan(signed[4])


def test_set_membership_strings_without_matrix(table):
    predicate = SetMembershipPredicate("city", ("Munich",))
    mask = predicate.exact_mask(table)
    assert mask[0] and mask[4] and not mask[2]
    signed = predicate.signed_distances(table)
    assert signed[0] == 0.0
    assert np.isnan(signed[2])


def test_set_membership_with_distance_matrix(table):
    matrix = {("Muenchen", "Munich"): 1.0, ("Berlin", "Munich"): 5.0}
    predicate = SetMembershipPredicate("city", ("Munich",), distance_matrix=matrix)
    signed = predicate.signed_distances(table)
    assert signed[1] == pytest.approx(1.0)
    assert signed[2] == pytest.approx(5.0)
    assert np.isnan(signed[3])  # Hamburg not in the matrix


def test_set_membership_empty_rejected():
    with pytest.raises(ValueError):
        SetMembershipPredicate("t", ())


def test_set_membership_describe_truncates():
    predicate = SetMembershipPredicate("t", tuple(float(i) for i in range(10)))
    assert "..." in predicate.describe()


# -- string match --------------------------------------------------------- #
def test_string_match_exact_and_distance(table):
    predicate = StringMatchPredicate("city", "Munich")
    mask = predicate.exact_mask(table)
    assert mask[0] and not mask[1]
    distances = predicate.signed_distances(table)
    assert distances[0] == 0.0
    assert distances[1] > 0.0           # Muenchen is close but not equal
    assert distances[1] < distances[3]  # ... and closer than Hamburg


def test_string_match_custom_distance(table):
    predicate = StringMatchPredicate("city", "Munich", distance_function=lambda a, b: 42.0 if a != b else 0.0)
    distances = predicate.signed_distances(table)
    assert distances[1] == 42.0


def test_predicate_factory():
    assert isinstance(predicate_for_values("a", [3.0]), AttributePredicate)
    assert isinstance(predicate_for_values("a", ["x"]), StringMatchPredicate)
    assert isinstance(predicate_for_values("a", [1.0, 2.0]), SetMembershipPredicate)


def test_base_predicate_inverted_raises(table):
    predicate = StringMatchPredicate("city", "Munich")
    with pytest.raises(ValueError):
        predicate.inverted()
