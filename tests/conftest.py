"""Shared fixtures: small deterministic tables, databases and queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, OrNode, QueryBuilder, Table, condition
from repro.datasets import environmental_database


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def weather_table(rng) -> Table:
    """A small single-table weather sample with known structure."""
    n = 2000
    temperature = rng.normal(15.0, 8.0, n)
    solar = np.clip(rng.normal(400.0, 250.0, n), 0.0, None)
    humidity = np.clip(95.0 - 1.5 * (temperature - 5.0) + rng.normal(0.0, 8.0, n), 5.0, 100.0)
    ozone = np.clip(10.0 + 0.05 * solar + rng.normal(0.0, 5.0, n), 0.0, None)
    return Table(
        "Weather",
        {
            "Temperature": temperature,
            "Solar-Radiation": solar,
            "Humidity": humidity,
            "Ozone": ozone,
            "Station": rng.integers(0, 4, n).astype(float),
        },
    )


@pytest.fixture()
def weather_db(weather_table) -> Database:
    return Database("env", [weather_table])


@pytest.fixture()
def or_condition():
    """The Fig. 3 OR part: T > 15 OR Solar > 600 OR Humidity < 60."""
    return OrNode(
        [
            condition("Temperature", ">", 15.0),
            condition("Solar-Radiation", ">", 600.0),
            condition("Humidity", "<", 60.0),
        ]
    )


@pytest.fixture()
def or_query(weather_db, or_condition):
    return (
        QueryBuilder("fig3-or", weather_db)
        .use_tables("Weather")
        .add_result("Temperature")
        .add_result("Solar-Radiation")
        .add_result("Humidity")
        .where(or_condition)
        .build()
    )


@pytest.fixture(scope="session")
def small_env_db() -> Database:
    """A small but complete environmental database (two joined tables)."""
    return environmental_database(hours=200, stations=2, seed=7)
